//! The online telemetry plane: streaming per-lane metric accumulation.
//!
//! [`OnlineLane`] is a [`TraceSink`] that folds every observation into
//! windowed aggregates *as it is recorded*, instead of buffering the record
//! for post-hoc analysis the way [`FlightRecorder`] does. Memory is O(1)
//! per (series, window) — growable per-bin vectors, a bounded
//! in-flight-query map, and fixed-footprint latency histograms — so a lane
//! can stream telemetry for an arbitrarily long run without retaining the
//! trace.
//!
//! **Invariant 13 (ARCHITECTURE.md): the online registry IS the oracle
//! registry.** [`MetricRegistry::from_trace`] feeds the merged trace
//! through these same per-lane accumulators, so by construction the
//! registry an instrumented run streams live is byte-for-byte the registry
//! a retained trace reproduces after the fact — at any thread count,
//! because each lane only ever folds its own records (in its own push
//! order) and [`merge_online`] combines the per-lane partials with
//! order-independent arithmetic:
//!
//! - counter/gauge bins sum exactly-representable integers in `f64`
//!   (magnitudes ≪ 2⁵³), so addition order cannot change a single bit;
//! - latency tails merge all-integer [`WindowedTail`] histograms;
//! - first-seen SLA attribution keeps a per-lane `(time, key)` minimum and
//!   resolves cross-lane ties by `(time, key, lane)` — exactly the global
//!   merged-trace order `from_trace` used to walk.
//!
//! Within one lane, the engine's push order and the merged trace's
//! `(time, key, lane, seq)` order differ only in the ordering of
//! same-instant records, and every per-lane fold above is invariant under
//! same-instant reordering (bin sums are commutative; a gauge bin keeps
//! only the net level; the SLA candidate is a stamp minimum).
//!
//! [`MetricRegistry::from_trace`]: crate::registry::MetricRegistry::from_trace

use crate::event::TraceEvent;
use crate::recorder::{FlightRecorder, TraceSink};
use crate::registry::{MetricRegistry, MetricSeries};
use des_engine::SimTime;
use server_metrics::WindowedTail;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// What a run should observe: a retained trace, a live metric plane, both,
/// or (the default) nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsRequest {
    /// Attach per-lane [`FlightRecorder`]s and merge a
    /// [`QueryTrace`](crate::QueryTrace) at the end of the run.
    pub trace: bool,
    /// Grid width of the online metric plane in nanoseconds; `0` disables
    /// it.
    pub online_window_ns: u64,
}

impl ObsRequest {
    /// Observe nothing (the zero-cost disabled path).
    pub const OFF: ObsRequest = ObsRequest {
        trace: false,
        online_window_ns: 0,
    };

    /// Retain the full trace only (the pre-existing traced mode).
    #[must_use]
    pub fn traced() -> Self {
        ObsRequest {
            trace: true,
            online_window_ns: 0,
        }
    }

    /// Stream online metrics on a `window_ns` grid, no trace retention.
    #[must_use]
    pub fn online(window_ns: u64) -> Self {
        ObsRequest {
            trace: false,
            online_window_ns: window_ns,
        }
    }

    /// Both: retain the trace *and* stream online metrics from one run —
    /// the configuration the invariant-13 identity checks drive.
    #[must_use]
    pub fn instrumented(window_ns: u64) -> Self {
        ObsRequest {
            trace: true,
            online_window_ns: window_ns,
        }
    }

    /// Whether this request observes anything at all.
    #[must_use]
    pub fn is_off(&self) -> bool {
        !self.trace && self.online_window_ns == 0
    }
}

/// A composite [`TraceSink`]: an optional retained-trace recorder plus an
/// optional online accumulator, fed from the same hook sites. Engines hold
/// `Option<ObsSink>`, so the fully disabled path is still one discriminant
/// test (invariant 12's zero-cost requirement).
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    /// Retained-trace half, when the run keeps the full trace.
    pub trace: Option<FlightRecorder>,
    /// Streaming half, when the run wants live metrics.
    pub online: Option<OnlineLane>,
}

impl ObsSink {
    /// Builds the sink a lane needs for `request` (`None` parts for the
    /// disabled halves). `capacity_gpcs` is the lane's total GPC budget —
    /// a hint that lets the online half skip peak-concurrency tracking.
    #[must_use]
    pub fn for_request(request: ObsRequest, lane: u32, capacity_gpcs: u32) -> ObsSink {
        ObsSink {
            trace: request.trace.then(|| FlightRecorder::new(lane)),
            online: (request.online_window_ns > 0).then(|| {
                OnlineLane::with_capacity_hint(lane, request.online_window_ns, capacity_gpcs)
            }),
        }
    }

    /// A sink that only retains the trace.
    #[must_use]
    pub fn trace_only(recorder: FlightRecorder) -> ObsSink {
        ObsSink {
            trace: Some(recorder),
            online: None,
        }
    }

    /// Whether both halves are disabled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_none() && self.online.is_none()
    }
}

impl TraceSink for ObsSink {
    #[inline]
    fn record(&mut self, at: SimTime, key: u64, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(at, key, event);
        }
        if let Some(online) = &mut self.online {
            online.record(at, key, event);
        }
    }
}

/// One lane's streaming metric accumulator.
///
/// Feed it records through [`TraceSink::record`] in non-decreasing stamp
/// order (what every engine lane and every merged trace guarantees), then
/// hand all lanes to [`merge_online`]. State per lane: one `f64` per
/// touched (series, bin), per-model `WindowedTail`s, and a dense
/// in-flight-query → model map that shrinks as queries complete.
#[derive(Debug, Clone)]
pub struct OnlineLane {
    lane: u32,
    window_ns: u64,
    /// Latest stamp seen (any event kind — it defines the shared grid).
    horizon_ns: u64,
    /// Cached current bin: stamps are non-decreasing, so the division in
    /// `bin()` only runs on bin transitions.
    cur_bin: usize,
    cur_bin_end: u64,
    /// Running outstanding-query level and its per-bin close samples
    /// (`NaN` = no lifecycle event in that bin; the merge carries the last
    /// sample forward).
    out_level: i64,
    out: Vec<f64>,
    out_touched: bool,
    /// Per-bin busy GPC·ns.
    busy: Vec<f64>,
    busy_touched: bool,
    /// Min-heap of `(end_ns, gpcs)` for in-flight service spans — the
    /// streaming equivalent of the oracle's peak-concurrency edge sweep.
    /// Unused (empty) when `capacity_hint` is known.
    active: BinaryHeap<Reverse<(u64, u32)>>,
    gpc_level: i64,
    gpc_peak: i64,
    capacity_hint: u32,
    /// Per-bin admitted / shed counts and loan deltas (gateway lane).
    routed: Vec<f64>,
    shed: Vec<f64>,
    loaned: Vec<f64>,
    /// model → windowed latency histograms (merged histogram-wise later),
    /// indexed by group id — model ids are small and dense, so a direct
    /// vector keeps the per-completion hot path to one bounds check.
    tails: Vec<Option<WindowedTail>>,
    /// model → `(at_ns, key, sla_ns)` of the earliest-stamped SLA-carrying
    /// arrival this lane saw, indexed by group id.
    slas: Vec<Option<(u64, u64, u64)>>,
    /// In-flight query → model, indexed by `query - groups_base`
    /// (`usize::MAX` = consumed/unknown). Completions punch holes and the
    /// base advances past the consumed prefix, so the deque tracks the
    /// outstanding window, not the whole run.
    groups: VecDeque<usize>,
    groups_base: u64,
}

impl OnlineLane {
    /// Creates an accumulator for `lane` on a `window_ns` grid.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn new(lane: u32, window_ns: u64) -> Self {
        Self::with_capacity_hint(lane, window_ns, 0)
    }

    /// [`new`](Self::new), with the lane's total GPC capacity known up
    /// front: the busy-fraction denominator the registry merge would
    /// otherwise have to derive by tracking peak concurrency. A nonzero
    /// hint lets the hot path skip the concurrency heap entirely; `0`
    /// means "unknown, track it".
    #[must_use]
    pub fn with_capacity_hint(lane: u32, window_ns: u64, capacity_gpcs: u32) -> Self {
        assert!(window_ns > 0, "window must be positive");
        OnlineLane {
            lane,
            window_ns,
            horizon_ns: 0,
            cur_bin: 0,
            cur_bin_end: window_ns,
            out_level: 0,
            out: Vec::new(),
            out_touched: false,
            busy: Vec::new(),
            busy_touched: false,
            active: BinaryHeap::new(),
            gpc_level: 0,
            gpc_peak: 0,
            capacity_hint: capacity_gpcs,
            routed: Vec::new(),
            shed: Vec::new(),
            loaned: Vec::new(),
            tails: Vec::new(),
            slas: Vec::new(),
            groups: VecDeque::new(),
            groups_base: 0,
        }
    }

    /// The lane id this accumulator stamps its series with.
    #[must_use]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// The grid width the accumulator bins on.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    #[inline]
    fn bin(&mut self, at_ns: u64) -> usize {
        debug_assert!(
            at_ns >= self.cur_bin as u64 * self.window_ns,
            "stamps must be non-decreasing per lane"
        );
        if at_ns < self.cur_bin_end {
            self.cur_bin
        } else {
            let b = (at_ns / self.window_ns) as usize;
            self.cur_bin = b;
            self.cur_bin_end = (b as u64 + 1).saturating_mul(self.window_ns);
            b
        }
    }

    #[inline]
    fn sample_out(&mut self, bin: usize) {
        if bin >= self.out.len() {
            self.out.resize(bin + 1, f64::NAN);
        }
        self.out[bin] = self.out_level as f64;
        self.out_touched = true;
    }

    fn note_sla(&mut self, group: usize, at_ns: u64, key: u64, sla_ns: u64) {
        if group >= self.slas.len() {
            self.slas.resize(group + 1, None);
        }
        let slot = &mut self.slas[group];
        let keep =
            matches!(*slot, Some((prev_at, prev_key, _)) if (prev_at, prev_key) <= (at_ns, key));
        if !keep {
            *slot = Some((at_ns, key, sla_ns));
        }
    }

    fn set_group(&mut self, query: u64, group: usize) {
        if query < self.groups_base {
            return; // malformed re-arrival of a consumed id
        }
        let idx = (query - self.groups_base) as usize;
        if idx >= self.groups.len() {
            self.groups.resize(idx + 1, usize::MAX);
        }
        self.groups[idx] = group;
    }

    fn take_group(&mut self, query: u64) -> Option<usize> {
        if query < self.groups_base {
            return None;
        }
        let idx = (query - self.groups_base) as usize;
        let group = *self.groups.get(idx)?;
        if group == usize::MAX {
            return None;
        }
        self.groups[idx] = usize::MAX;
        while self.groups.front() == Some(&usize::MAX) {
            self.groups.pop_front();
            self.groups_base += 1;
        }
        Some(group)
    }

    fn service(&mut self, at_ns: u64, gpcs: u32, actual_ns: u64) {
        self.busy_touched = true;
        let end = at_ns + actual_ns;
        if self.capacity_hint == 0 && actual_ns > 0 {
            // Streaming peak concurrency ≡ the oracle's edge sweep: ends at
            // or before `at_ns` retire first (the sweep sorts negative
            // deltas before positive at equal stamps), then this span
            // raises the level.
            while let Some(&Reverse((e, g))) = self.active.peek() {
                if e > at_ns {
                    break;
                }
                self.active.pop();
                self.gpc_level -= i64::from(g);
            }
            self.gpc_level += i64::from(gpcs);
            self.gpc_peak = self.gpc_peak.max(self.gpc_level);
            self.active.push(Reverse((end, gpcs)));
        }
        // Spread the execution's GPC·ns across the bins it covers. No grid
        // clamp here: bins beyond the final horizon are truncated at merge,
        // which reproduces the oracle's clamp bytes exactly (a clamped
        // overflow segment contributed `+0.0` to the last bin — a no-op).
        // Fast path: the whole span lands in the (cached) current bin.
        let first = self.bin(at_ns);
        if end <= self.cur_bin_end {
            if first >= self.busy.len() {
                self.busy.resize(first + 1, 0.0);
            }
            self.busy[first] += actual_ns as f64 * f64::from(gpcs);
            return;
        }
        let mut s = at_ns;
        while s < end {
            let b = (s / self.window_ns) as usize;
            let bin_end = (b as u64 + 1).saturating_mul(self.window_ns);
            let seg = end.min(bin_end) - s;
            if b >= self.busy.len() {
                self.busy.resize(b + 1, 0.0);
            }
            self.busy[b] += seg as f64 * f64::from(gpcs);
            s = bin_end;
        }
    }
}

#[inline]
fn bump(values: &mut Vec<f64>, bin: usize, delta: f64) {
    if bin >= values.len() {
        values.resize(bin + 1, 0.0);
    }
    values[bin] += delta;
}

impl TraceSink for OnlineLane {
    /// Folds one record into the lane's aggregates. Kept out-of-line so the
    /// composite [`ObsSink`] dispatch stays small: trace-only and disabled
    /// sinks never pay this body in their instruction stream.
    #[inline(never)]
    fn record(&mut self, at: SimTime, key: u64, event: TraceEvent) {
        let at_ns = at.as_nanos();
        // Stamps are non-decreasing per lane (debug-asserted in `bin`), so
        // the latest stamp IS the horizon — no compare needed.
        self.horizon_ns = at_ns;
        match event {
            TraceEvent::Arrival {
                query,
                group,
                sla_ns,
                ..
            } => {
                let bin = self.bin(at_ns);
                self.out_level += 1;
                self.sample_out(bin);
                if sla_ns > 0 {
                    self.note_sla(group, at_ns, key, sla_ns);
                }
                self.set_group(query, group);
            }
            TraceEvent::Complete {
                query, latency_ns, ..
            } => {
                let bin = self.bin(at_ns);
                self.out_level -= 1;
                self.sample_out(bin);
                if let Some(group) = self.take_group(query) {
                    if group >= self.tails.len() {
                        self.tails.resize_with(group + 1, || None);
                    }
                    let window_ns = self.window_ns;
                    self.tails[group]
                        .get_or_insert_with(|| WindowedTail::new(window_ns))
                        .record_at(bin, latency_ns);
                }
            }
            TraceEvent::ServiceStart {
                gpcs, actual_ns, ..
            } => self.service(at_ns, gpcs, actual_ns),
            TraceEvent::RouteDecision { .. } => {
                let bin = self.bin(at_ns);
                bump(&mut self.routed, bin, 1.0);
            }
            TraceEvent::Shed { .. } => {
                let bin = self.bin(at_ns);
                bump(&mut self.shed, bin, 1.0);
            }
            TraceEvent::Loan { gpus_delta, .. } => {
                let bin = self.bin(at_ns);
                bump(&mut self.loaned, bin, gpus_delta as f64);
            }
            _ => {}
        }
    }
}

/// Merges per-lane online accumulators into one [`MetricRegistry`] —
/// the deterministic coordinator step of the online plane, and the shared
/// back half of [`MetricRegistry::from_trace`].
///
/// `lane_gpcs[s]` is lane `s`'s busy-fraction denominator; zero/missing
/// entries fall back to the lane's capacity hint, then to its tracked peak
/// concurrency (min 1), matching the post-hoc oracle.
///
/// The result is independent of the order lanes are handed in: per-lane
/// series only depend on their own lane, and cross-lane sums combine
/// exactly-representable integers.
///
/// [`MetricRegistry::from_trace`]: crate::registry::MetricRegistry::from_trace
#[must_use]
pub fn merge_online(
    window_ns: u64,
    lanes: impl IntoIterator<Item = OnlineLane>,
    lane_gpcs: &[u32],
) -> MetricRegistry {
    assert!(window_ns > 0, "window must be positive");
    let mut lanes: Vec<OnlineLane> = lanes.into_iter().collect();
    lanes.sort_by_key(OnlineLane::lane);
    let horizon = lanes.iter().map(|l| l.horizon_ns).max().unwrap_or(0);
    let windows = (horizon / window_ns + 1) as usize;

    let mut series: Vec<MetricSeries> = Vec::new();
    let mut routed = vec![0.0f64; windows];
    let mut shed = vec![0.0f64; windows];
    let mut loan_deltas = vec![0.0f64; windows];
    let mut tails: BTreeMap<usize, WindowedTail> = BTreeMap::new();
    // model → (at, key, lane, sla): cross-lane first-seen resolution.
    let mut slas: BTreeMap<usize, (u64, u64, u32, u64)> = BTreeMap::new();

    for lane in &mut lanes {
        debug_assert_eq!(lane.window_ns, window_ns, "lanes must share the grid");
        if lane.out_touched {
            let mut values = std::mem::take(&mut lane.out);
            values.resize(windows, f64::NAN);
            let mut last = 0.0;
            for v in &mut values {
                if v.is_nan() {
                    *v = last;
                } else {
                    last = *v;
                }
            }
            series.push(MetricSeries {
                name: format!("shard{}/outstanding", lane.lane),
                values,
            });
        }
        if lane.busy_touched {
            let mut busy = std::mem::take(&mut lane.busy);
            busy.truncate(windows);
            busy.resize(windows, 0.0);
            let capacity = lane_gpcs
                .get(lane.lane as usize)
                .copied()
                .filter(|&c| c > 0)
                .unwrap_or_else(|| {
                    if lane.capacity_hint > 0 {
                        lane.capacity_hint
                    } else {
                        (lane.gpc_peak.max(0) as u32).max(1)
                    }
                });
            let denom = window_ns as f64 * f64::from(capacity);
            series.push(MetricSeries {
                name: format!("shard{}/busy_gpc_fraction", lane.lane),
                values: busy.iter().map(|&b| b / denom).collect(),
            });
        }
        for (b, &v) in lane.routed.iter().enumerate() {
            routed[b] += v;
        }
        for (b, &v) in lane.shed.iter().enumerate() {
            shed[b] += v;
        }
        for (b, &v) in lane.loaned.iter().enumerate() {
            loan_deltas[b] += v;
        }
        for (model, tail) in lane
            .tails
            .iter()
            .enumerate()
            .filter_map(|(m, t)| t.as_ref().map(|t| (m, t)))
        {
            tails
                .entry(model)
                .or_insert_with(|| WindowedTail::new(window_ns))
                .merge(tail);
        }
        for (model, &(at, key, sla)) in lane
            .slas
            .iter()
            .enumerate()
            .filter_map(|(m, s)| s.as_ref().map(|s| (m, s)))
        {
            match slas.entry(model) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((at, key, lane.lane, sla));
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let (pa, pk, pl, _) = *o.get();
                    if (at, key, lane.lane) < (pa, pk, pl) {
                        o.insert((at, key, lane.lane, sla));
                    }
                }
            }
        }
    }

    // Pool loans: integrate the per-bin deltas into a level.
    let mut level = 0.0;
    let loaned: Vec<f64> = loan_deltas
        .iter()
        .map(|&d| {
            level += d;
            level
        })
        .collect();
    if loaned.iter().any(|&v| v != 0.0) {
        series.push(MetricSeries {
            name: "pool/loaned_gpus".to_string(),
            values: loaned,
        });
    }

    // Shed rate per bin over offered load.
    if routed.iter().chain(&shed).any(|&v| v > 0.0) {
        let values = routed
            .iter()
            .zip(&shed)
            .map(|(&r, &s)| if r + s > 0.0 { s / (r + s) } else { 0.0 })
            .collect();
        series.push(MetricSeries {
            name: "fleet/shed_rate".to_string(),
            values,
        });
    }

    // Per-model SLA violation rate off the merged WindowedTail bins.
    for (&model, tail) in &tails {
        let Some(&(_, _, _, sla)) = slas.get(&model) else {
            continue;
        };
        let values = (0..windows)
            .map(|idx| match tail.histogram(idx) {
                Some(h) if !h.is_empty() => h.violation_rate(sla),
                _ => 0.0,
            })
            .collect();
        series.push(MetricSeries {
            name: format!("model{model}/sla_violation_rate"),
            values,
        });
    }

    series.sort_by(|a, b| a.name.cmp(&b.name));
    MetricRegistry::from_parts(window_ns, windows, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn obs_sink_feeds_both_halves() {
        let mut sink = ObsSink::for_request(ObsRequest::instrumented(1_000), 3, 0);
        sink.record(t(10), 0, TraceEvent::Requeue { query: 0 });
        assert_eq!(sink.trace.as_ref().unwrap().len(), 1);
        assert_eq!(sink.online.as_ref().unwrap().horizon_ns, 10);
        assert!(ObsSink::for_request(ObsRequest::OFF, 0, 0).is_empty());
    }

    #[test]
    fn groups_deque_reclaims_completed_prefix() {
        let mut lane = OnlineLane::new(0, 1_000);
        for q in 0..100u64 {
            lane.set_group(q, (q % 2) as usize);
        }
        for q in 0..99u64 {
            assert_eq!(lane.take_group(q), Some((q % 2) as usize));
        }
        assert_eq!(lane.groups_base, 99, "consumed prefix reclaimed");
        assert!(lane.groups.len() <= 1);
        assert_eq!(lane.take_group(5), None, "completions consume");
    }

    #[test]
    fn peak_tracker_matches_edge_sweep() {
        // Overlapping, touching, and nested spans; compare against the
        // oracle sweep semantics by hand: peak is 7+3 = 10.
        let mut lane = OnlineLane::new(0, 1_000_000);
        let spans = [
            (0u64, 100u64, 7u32),
            (50, 150, 3),
            (100, 200, 7),
            (200, 300, 5),
        ];
        for (s, e, g) in spans {
            lane.service(s, g, e - s);
        }
        assert_eq!(lane.gpc_peak, 10);
    }

    #[test]
    fn merge_is_lane_order_independent() {
        let mk = |lane: u32, base: u64| {
            let mut l = OnlineLane::new(lane, 1_000);
            l.record(
                t(base),
                0,
                TraceEvent::Arrival {
                    query: 0,
                    group: 0,
                    batch: 1,
                    dispatched_ns: base,
                    sla_ns: 500,
                },
            );
            l.record(
                t(base + 700),
                0,
                TraceEvent::Complete {
                    query: 0,
                    worker: 0,
                    latency_ns: 700,
                },
            );
            l
        };
        let fwd = merge_online(1_000, [mk(0, 100), mk(1, 2_100)], &[]);
        let rev = merge_online(1_000, [mk(1, 2_100), mk(0, 100)], &[]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.windows(), 3);
        assert!(fwd.get("model0/sla_violation_rate").is_some());
    }
}
