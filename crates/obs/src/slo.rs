//! Deterministic SLO burn-rate alerting on the DES clock.
//!
//! An [`SloSpec`] declares an objective for one query class ("99 % of
//! premium queries meet their SLA") plus a multiwindow burn-rate alerting
//! policy: the alert fires only when **both** a short and a long trailing
//! window burn the error budget faster than the threshold — the short
//! window makes the alert reset quickly, the long window keeps a brief
//! blip from paging. The engine evaluates specs against the
//! `model{N}/sla_violation_rate` series of a [`MetricRegistry`] bin by
//! bin, in simulation order, so the alert log is a pure function of the
//! run: no wall clock, and bit-identical at any thread count (the registry
//! itself is invariant 13).
//!
//! Fired alerts can be stamped back onto a trace as annotation records
//! ([`alert_records`] + [`QueryTrace::annotated`]) for rendering in
//! `trace_report` and the Chrome export; the annotation lane carries no
//! lifecycle or capacity events, so the annotated trace reproduces the
//! exact same registry.
//!
//! [`QueryTrace::annotated`]: crate::recorder::QueryTrace::annotated

use crate::event::TraceEvent;
use crate::recorder::{FlightRecorder, TraceSink, ANNOTATION_KEY};
use crate::registry::MetricRegistry;
use des_engine::SimTime;

/// The lane alert annotations are stamped on — past any real shard or
/// gateway lane, so alert records sort after engine records at the same
/// instant and never collide with a lane's own series.
pub const ALERT_LANE: u32 = u32::MAX;

/// One declarative service-level objective with burn-rate alert policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Human-readable name, rendered in reports and trace rows.
    pub name: String,
    /// The query class (model index) the objective covers.
    pub group: usize,
    /// Fraction of queries that must meet their SLA, e.g. `0.9` = "at most
    /// 10 % of completions may violate".
    pub objective: f64,
    /// Short trailing window, in registry bins (fast fire *and* fast
    /// resolve).
    pub short_bins: usize,
    /// Long trailing window, in registry bins (keeps blips from paging).
    pub long_bins: usize,
    /// Fire when both windows burn the budget at ≥ this multiple of the
    /// all-budget-in-period rate (1.0 = budget exactly exhausted if the
    /// window rate persisted).
    pub burn_threshold: f64,
}

impl SloSpec {
    /// A spec for `group` with the given objective, defaulting to a
    /// 2-bin/8-bin multiwindow at burn threshold 1.0.
    #[must_use]
    pub fn new(name: impl Into<String>, group: usize, objective: f64) -> Self {
        SloSpec {
            name: name.into(),
            group,
            objective,
            short_bins: 2,
            long_bins: 8,
            burn_threshold: 1.0,
        }
    }

    /// Overrides the short/long trailing windows (bins, min 1 each).
    #[must_use]
    pub fn with_windows(mut self, short_bins: usize, long_bins: usize) -> Self {
        self.short_bins = short_bins.max(1);
        self.long_bins = long_bins.max(1);
        self
    }

    /// Overrides the burn-rate threshold.
    #[must_use]
    pub fn with_burn_threshold(mut self, burn: f64) -> Self {
        self.burn_threshold = burn;
        self
    }

    /// The error budget: the violation rate the objective tolerates.
    #[must_use]
    pub fn budget(&self) -> f64 {
        1.0 - self.objective
    }

    /// The registry series this spec is evaluated against.
    #[must_use]
    pub fn series_name(&self) -> String {
        format!("model{}/sla_violation_rate", self.group)
    }
}

/// One fired alert (and its resolution, if the run lived to see it).
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Index into the spec slice the evaluation ran over.
    pub slo: usize,
    /// The spec's query class, denormalized for rendering.
    pub group: usize,
    /// Bin whose close fired the alert.
    pub fired_bin: usize,
    /// Bin whose close resolved it (`None` = still firing at end of run).
    pub resolved_bin: Option<usize>,
    /// Worst (highest-violation-rate) bin inside the long window that
    /// fired the alert — the cause window attribution digs into.
    pub worst_bin: usize,
    /// Short-window burn multiple at fire time.
    pub burn_short: f64,
    /// Long-window burn multiple at fire time.
    pub burn_long: f64,
}

/// Mean of the trailing `bins` values ending at `i` (clamped at the
/// series start), divided by `budget` — the burn-rate multiple.
fn burn_rate(values: &[f64], i: usize, bins: usize, budget: f64) -> f64 {
    let lo = (i + 1).saturating_sub(bins);
    let window = &values[lo..=i];
    let mean = window.iter().sum::<f64>() / window.len() as f64;
    if budget > 0.0 {
        mean / budget
    } else if mean > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Evaluates `specs` against `registry`, walking the grid bin by bin in
/// simulation order, and returns the alert log in deterministic
/// `(bin, spec)` fire order. Specs whose series is absent (class never
/// completed a query, or carries no SLA) simply never fire.
#[must_use]
pub fn evaluate_slos(registry: &MetricRegistry, specs: &[SloSpec]) -> Vec<Alert> {
    let mut alerts: Vec<Alert> = Vec::new();
    // Per-spec index into `alerts` while firing.
    let mut active: Vec<Option<usize>> = vec![None; specs.len()];
    for bin in 0..registry.windows() {
        for (s, spec) in specs.iter().enumerate() {
            let Some(series) = registry.get(&spec.series_name()) else {
                continue;
            };
            let values = &series.values;
            let budget = spec.budget();
            let short = burn_rate(values, bin, spec.short_bins, budget);
            match active[s] {
                None => {
                    let long = burn_rate(values, bin, spec.long_bins, budget);
                    if short >= spec.burn_threshold && long >= spec.burn_threshold {
                        let lo = (bin + 1).saturating_sub(spec.long_bins);
                        // Earliest max-violation bin in the long window.
                        let worst_bin = (lo..=bin)
                            .max_by(|&a, &b| values[a].total_cmp(&values[b]).then(b.cmp(&a)))
                            .unwrap_or(bin);
                        active[s] = Some(alerts.len());
                        alerts.push(Alert {
                            slo: s,
                            group: spec.group,
                            fired_bin: bin,
                            resolved_bin: None,
                            worst_bin,
                            burn_short: short,
                            burn_long: long,
                        });
                    }
                }
                Some(idx) => {
                    if short < spec.burn_threshold {
                        alerts[idx].resolved_bin = Some(bin);
                        active[s] = None;
                    }
                }
            }
        }
    }
    alerts
}

/// Renders an alert log as annotation records on [`ALERT_LANE`]: one
/// `fired` record at the firing bin's start, one `resolved` record at the
/// resolving bin's start. Merge them into a trace with
/// [`QueryTrace::annotated`](crate::recorder::QueryTrace::annotated).
#[must_use]
pub fn alert_records(alerts: &[Alert], window_ns: u64) -> FlightRecorder {
    let mut stamped: Vec<(u64, TraceEvent)> = Vec::with_capacity(alerts.len() * 2);
    for a in alerts {
        let burn_milli = if a.burn_short.is_finite() {
            (a.burn_short * 1_000.0) as u64
        } else {
            u64::MAX
        };
        stamped.push((
            a.fired_bin as u64 * window_ns,
            TraceEvent::Alert {
                slo: a.slo,
                group: a.group,
                fired: true,
                burn_milli,
            },
        ));
        if let Some(r) = a.resolved_bin {
            stamped.push((
                r as u64 * window_ns,
                TraceEvent::Alert {
                    slo: a.slo,
                    group: a.group,
                    fired: false,
                    burn_milli: 0,
                },
            ));
        }
    }
    // A recorder's records must be stamped in non-decreasing order; the
    // stable sort keeps fire-order among same-bin transitions.
    stamped.sort_by_key(|&(at, _)| at);
    let mut rec = FlightRecorder::new(ALERT_LANE);
    for (at, event) in stamped {
        rec.record(SimTime::from_nanos(at), ANNOTATION_KEY, event);
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricSeries;

    fn registry_with(values: Vec<f64>) -> MetricRegistry {
        let windows = values.len();
        MetricRegistry::from_parts(
            1_000,
            windows,
            vec![MetricSeries {
                name: "model0/sla_violation_rate".to_string(),
                values,
            }],
        )
    }

    #[test]
    fn multiwindow_fires_and_resolves() {
        // Budget 0.1; a 4-bin violation burst trips both windows, then the
        // short window clears and resolves the alert.
        let reg = registry_with(vec![0.0, 0.0, 0.5, 0.5, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0]);
        let specs = [SloSpec::new("p99-avail", 0, 0.9).with_windows(2, 4)];
        let alerts = evaluate_slos(&reg, &specs);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        let a = &alerts[0];
        assert_eq!(a.slo, 0);
        // Short window at bin 2 (bins 1..=2) burns at mean 0.25 / 0.1 =
        // 2.5x; long window (bins 0..=2) at (0.5/3) / 0.1 ≈ 1.67x — both
        // over threshold 1.0, so the alert fires as soon as bin 2 closes.
        assert_eq!(a.fired_bin, 2);
        assert!((a.burn_short - 2.5).abs() < 1e-9);
        assert!((a.burn_long - 0.5 / 3.0 / 0.1).abs() < 1e-9);
        assert_eq!(a.worst_bin, 2, "earliest max-violation bin");
        // Short window clears at bins 6..=7 (mean 0 < threshold).
        assert_eq!(a.resolved_bin, Some(7));
    }

    #[test]
    fn short_blip_does_not_page() {
        // One hot bin: the short window trips but the long window absorbs
        // it — the multiwindow policy's whole point.
        let reg = registry_with(vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.3, 0.0, 0.0]);
        let specs = [SloSpec::new("p99-avail", 0, 0.9).with_windows(1, 8)];
        assert!(evaluate_slos(&reg, &specs).is_empty());
    }

    #[test]
    fn unresolved_alert_reports_none() {
        let reg = registry_with(vec![0.0, 0.5, 0.5, 0.5]);
        let specs = [SloSpec::new("p99-avail", 0, 0.9).with_windows(2, 2)];
        let alerts = evaluate_slos(&reg, &specs);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].resolved_bin, None, "still firing at end of run");
    }

    #[test]
    fn missing_series_never_fires() {
        let reg = registry_with(vec![1.0; 8]);
        let specs = [SloSpec::new("other-class", 7, 0.5)];
        assert!(evaluate_slos(&reg, &specs).is_empty());
    }

    #[test]
    fn alert_records_stamp_the_alert_lane_in_order() {
        let alerts = vec![
            Alert {
                slo: 0,
                group: 0,
                fired_bin: 2,
                resolved_bin: Some(5),
                worst_bin: 2,
                burn_short: 3.25,
                burn_long: 1.5,
            },
            Alert {
                slo: 1,
                group: 1,
                fired_bin: 4,
                resolved_bin: None,
                worst_bin: 4,
                burn_short: f64::INFINITY,
                burn_long: f64::INFINITY,
            },
        ];
        let rec = alert_records(&alerts, 1_000);
        assert_eq!(rec.lane(), ALERT_LANE);
        let records = rec.into_records();
        let stamps: Vec<u64> = records.iter().map(|r| r.at.as_nanos()).collect();
        assert_eq!(stamps, vec![2_000, 4_000, 5_000], "sorted by bin start");
        assert!(matches!(
            records[0].event,
            TraceEvent::Alert {
                slo: 0,
                fired: true,
                burn_milli: 3_250,
                ..
            }
        ));
        assert!(matches!(
            records[1].event,
            TraceEvent::Alert {
                slo: 1,
                fired: true,
                burn_milli: u64::MAX,
                ..
            }
        ));
        assert!(matches!(
            records[2].event,
            TraceEvent::Alert {
                slo: 0,
                fired: false,
                ..
            }
        ));
    }
}
