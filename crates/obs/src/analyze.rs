//! Trace analysis: exact latency breakdowns and lifecycle conservation.
//!
//! The breakdown is exact **by construction**: for every completed query the
//! components are defined as differences of the query's own stamps, so
//!
//! ```text
//! frontend + plain_queue + reconfig_wait + service_clean
//!          + degrade_inflation + noise_delta  ==  latency
//! ```
//!
//! holds in integer nanoseconds with no residual. `reconfig_wait` is the part
//! of the wait interval overlapping reconfig-step downtime (intervals are
//! unioned first, so overlap never exceeds the wait), `degrade_inflation` is
//! the degrade-scaled minus clean service time of the final execution, and
//! `noise_delta` (signed) is whatever service noise added or removed.

use crate::event::TraceEvent;
use crate::recorder::QueryTrace;
use std::collections::HashMap;

/// Aggregate exact breakdown for one query class (model/group index).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassBreakdown {
    /// Model/group index this row aggregates.
    pub group: usize,
    /// Completed queries in the class.
    pub completed: u64,
    /// Σ end-to-end latency (arrival → complete).
    pub total_latency_ns: u128,
    /// Σ frontend serialization wait (arrival → dispatched).
    pub frontend_ns: u128,
    /// Σ wait not overlapping reconfig downtime (includes aborted partial
    /// executions of killed-and-requeued queries).
    pub queue_ns: u128,
    /// Σ wait overlapping reconfig-step downtime windows on the query's lane.
    pub reconfig_wait_ns: u128,
    /// Σ clean (profile-table) service time of the completing execution.
    pub service_clean_ns: u128,
    /// Σ degrade-induced inflation (degrade-scaled base − clean).
    pub degrade_inflation_ns: u128,
    /// Σ signed service-noise delta (actual − degrade-scaled base).
    pub noise_delta_ns: i128,
}

impl ClassBreakdown {
    /// Sum of all components; equals `total_latency_ns` exactly.
    #[must_use]
    pub fn components_sum(&self) -> i128 {
        self.frontend_ns as i128
            + self.queue_ns as i128
            + self.reconfig_wait_ns as i128
            + self.service_clean_ns as i128
            + self.degrade_inflation_ns as i128
            + self.noise_delta_ns
    }
}

/// Whole-trace analysis: per-class breakdowns plus admission totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// One row per query class seen, ascending by group index.
    pub classes: Vec<ClassBreakdown>,
    /// Gateway-level offered load (route decisions + sheds); zero when the
    /// trace has no gateway lane.
    pub offered: u64,
    /// Queries the router admitted.
    pub routed: u64,
    /// Queries the admission controller turned away.
    pub shed: u64,
    /// Core-level arrivals across all lanes.
    pub arrivals: u64,
    /// Completed queries across all lanes.
    pub completed: u64,
}

#[derive(Default, Clone, Copy)]
struct QueryState {
    group: usize,
    arrival_ns: u64,
    dispatched_ns: u64,
    last_start_ns: u64,
    clean_ns: u64,
    base_ns: u64,
    actual_ns: u64,
    started: bool,
    arrived: bool,
}

/// Unions possibly-overlapping `[start, end)` intervals in place.
pub(crate) fn union_intervals(intervals: &mut Vec<(u64, u64)>) {
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    *intervals = merged;
}

/// Length of `[s, e)` ∩ the unioned `intervals`.
pub(crate) fn overlap_ns(intervals: &[(u64, u64)], s: u64, e: u64) -> u64 {
    let mut total = 0;
    for &(is, ie) in intervals {
        if ie <= s {
            continue;
        }
        if is >= e {
            break;
        }
        total += ie.min(e) - is.max(s);
    }
    total
}

/// Computes the exact per-class latency breakdown and admission totals.
#[must_use]
pub fn analyze(trace: &QueryTrace) -> TraceAnalysis {
    // Reconfig downtime windows per lane, unioned so overlap accounting
    // never double-counts when steps of different groups coincide.
    let mut downtime: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for r in trace.records() {
        if let TraceEvent::ReconfigStep { downtime_ns, .. } = r.event {
            downtime
                .entry(r.lane)
                .or_default()
                .push((r.at.as_nanos(), r.at.as_nanos() + downtime_ns));
        }
    }
    for intervals in downtime.values_mut() {
        union_intervals(intervals);
    }

    let mut states: HashMap<(u32, u64), QueryState> = HashMap::new();
    let mut classes: HashMap<usize, ClassBreakdown> = HashMap::new();
    let mut out = TraceAnalysis::default();
    let empty: Vec<(u64, u64)> = Vec::new();

    for r in trace.records() {
        match r.event {
            TraceEvent::RouteDecision { .. } => {
                out.offered += 1;
                out.routed += 1;
            }
            TraceEvent::Shed { .. } => {
                out.offered += 1;
                out.shed += 1;
            }
            TraceEvent::Arrival {
                query,
                group,
                dispatched_ns,
                ..
            } => {
                out.arrivals += 1;
                let st = states.entry((r.lane, query)).or_default();
                st.group = group;
                st.arrival_ns = r.at.as_nanos();
                st.dispatched_ns = dispatched_ns;
                st.arrived = true;
            }
            TraceEvent::ServiceStart {
                query,
                clean_ns,
                base_ns,
                actual_ns,
                ..
            } => {
                let st = states.entry((r.lane, query)).or_default();
                st.last_start_ns = r.at.as_nanos();
                st.clean_ns = clean_ns;
                st.base_ns = base_ns;
                st.actual_ns = actual_ns;
                st.started = true;
            }
            TraceEvent::Complete {
                query, latency_ns, ..
            } => {
                out.completed += 1;
                let Some(st) = states.get(&(r.lane, query)) else {
                    continue;
                };
                if !(st.arrived && st.started) {
                    continue;
                }
                let complete_ns = r.at.as_nanos();
                let row = classes.entry(st.group).or_insert(ClassBreakdown {
                    group: st.group,
                    ..ClassBreakdown::default()
                });
                let frontend = st.dispatched_ns - st.arrival_ns;
                let wait = st.last_start_ns - st.dispatched_ns;
                let lanes = downtime.get(&r.lane).unwrap_or(&empty);
                let reconfig = overlap_ns(lanes, st.dispatched_ns, st.last_start_ns);
                let service = complete_ns - st.last_start_ns;
                let inflation = st.base_ns - st.clean_ns;
                let noise = service as i128 - st.base_ns as i128;
                row.completed += 1;
                row.total_latency_ns += u128::from(latency_ns);
                row.frontend_ns += u128::from(frontend);
                row.queue_ns += u128::from(wait - reconfig);
                row.reconfig_wait_ns += u128::from(reconfig);
                row.service_clean_ns += u128::from(st.clean_ns);
                row.degrade_inflation_ns += u128::from(inflation);
                row.noise_delta_ns += noise;
            }
            _ => {}
        }
    }

    let mut rows: Vec<ClassBreakdown> = classes.into_values().collect();
    rows.sort_by_key(|c| c.group);
    out.classes = rows;
    out
}

/// Totals returned by [`check_conservation`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservationStats {
    /// Gateway-level offered load (routed + shed); zero without a gateway.
    pub offered: u64,
    /// Route decisions observed.
    pub routed: u64,
    /// Sheds observed (terminal).
    pub shed: u64,
    /// Core arrivals across lanes.
    pub arrivals: u64,
    /// Completes across lanes (terminal).
    pub completed: u64,
}

/// Checks flight-recorder conservation: every core arrival has exactly one
/// `Complete`, and when gateway events are present, `offered = routed + shed`
/// with every routed query arriving at exactly one core.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_conservation(trace: &QueryTrace) -> Result<ConservationStats, String> {
    let mut stats = ConservationStats::default();
    // (lane, query) -> (arrivals, completes)
    let mut per_query: HashMap<(u32, u64), (u64, u64)> = HashMap::new();
    for r in trace.records() {
        match r.event {
            TraceEvent::RouteDecision { .. } => {
                stats.offered += 1;
                stats.routed += 1;
            }
            TraceEvent::Shed { .. } => {
                stats.offered += 1;
                stats.shed += 1;
            }
            TraceEvent::Arrival { query, .. } => {
                stats.arrivals += 1;
                per_query.entry((r.lane, query)).or_default().0 += 1;
            }
            TraceEvent::Complete { query, .. } => {
                stats.completed += 1;
                per_query.entry((r.lane, query)).or_default().1 += 1;
            }
            _ => {}
        }
    }
    for (&(lane, query), &(arrivals, completes)) in &per_query {
        if arrivals != 1 {
            return Err(format!(
                "lane {lane} query {query}: {arrivals} arrivals (want exactly 1)"
            ));
        }
        if completes != 1 {
            return Err(format!(
                "lane {lane} query {query}: {completes} terminal completes (want exactly 1)"
            ));
        }
    }
    if stats.completed != stats.arrivals {
        return Err(format!(
            "{} arrivals but {} completes",
            stats.arrivals, stats.completed
        ));
    }
    if stats.routed > 0 && stats.routed != stats.arrivals {
        return Err(format!(
            "{} routed but {} core arrivals",
            stats.routed, stats.arrivals
        ));
    }
    if stats.offered != stats.routed + stats.shed {
        return Err(format!(
            "offered {} != routed {} + shed {}",
            stats.offered, stats.routed, stats.shed
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceSink, ANNOTATION_KEY};
    use des_engine::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// One query: arrive 0, dispatched 10, reconfig [20, 60), start 100,
    /// clean 300, base 330, actual 325 (noise −5), complete 425.
    fn one_query_recorder() -> FlightRecorder {
        let mut r = FlightRecorder::new(0);
        r.record(
            t(0),
            0,
            TraceEvent::Arrival {
                query: 0,
                group: 2,
                batch: 4,
                dispatched_ns: 10,
                sla_ns: 0,
            },
        );
        r.record(
            t(20),
            ANNOTATION_KEY,
            TraceEvent::ReconfigStep {
                step: 0,
                downtime_ns: 40,
            },
        );
        r.record(
            t(100),
            0,
            TraceEvent::ServiceStart {
                query: 0,
                worker: 3,
                gpcs: 7,
                clean_ns: 300,
                base_ns: 330,
                actual_ns: 325,
            },
        );
        r.record(
            t(425),
            0,
            TraceEvent::Complete {
                query: 0,
                worker: 3,
                latency_ns: 425,
            },
        );
        r
    }

    #[test]
    fn breakdown_components_sum_exactly() {
        let trace = QueryTrace::merge([one_query_recorder()]);
        let analysis = analyze(&trace);
        assert_eq!(analysis.classes.len(), 1);
        let c = analysis.classes[0];
        assert_eq!(c.group, 2);
        assert_eq!(c.frontend_ns, 10);
        assert_eq!(c.reconfig_wait_ns, 40);
        assert_eq!(c.queue_ns, 50); // wait 90 − reconfig 40
        assert_eq!(c.service_clean_ns, 300);
        assert_eq!(c.degrade_inflation_ns, 30);
        assert_eq!(c.noise_delta_ns, -5);
        assert_eq!(c.components_sum(), c.total_latency_ns as i128);
        assert_eq!(c.total_latency_ns, 425);
    }

    #[test]
    fn conservation_accepts_balanced_trace() {
        let trace = QueryTrace::merge([one_query_recorder()]);
        let stats = check_conservation(&trace).expect("balanced");
        assert_eq!((stats.arrivals, stats.completed), (1, 1));
    }

    #[test]
    fn conservation_rejects_dropped_query() {
        let mut r = one_query_recorder();
        r.record(
            t(500),
            1,
            TraceEvent::Arrival {
                query: 1,
                group: 0,
                batch: 1,
                dispatched_ns: 510,
                sla_ns: 0,
            },
        );
        let trace = QueryTrace::merge([r]);
        assert!(check_conservation(&trace).is_err());
    }

    #[test]
    fn interval_union_handles_overlap() {
        let mut v = vec![(10, 30), (20, 40), (50, 60)];
        union_intervals(&mut v);
        assert_eq!(v, vec![(10, 40), (50, 60)]);
        assert_eq!(overlap_ns(&v, 0, 100), 40);
        assert_eq!(overlap_ns(&v, 35, 55), 10);
    }
}
