//! Causal tail attribution: *why* was this window's p99 what it was?
//!
//! For a grid window and query class, [`attribute_window`] finds the
//! window's p99 completion (nearest-rank over the completions that landed
//! in the window, tie-broken by `(latency, lane, query)` so the pick is
//! deterministic) and splits its latency **excess** — everything above
//! frontend overhead plus clean service time — into ranked causes:
//!
//! - `reconfig:loan_handover` — queue time spent inside reconfig downtime
//!   whose latest trigger on that shard was a pool loan;
//! - `reconfig:fault_recovery` — downtime triggered by a fault action;
//! - `reconfig:drift` — downtime with no recorded trigger (planned
//!   re-sharding);
//! - `fault_outage_wait` — queue time inside a fail→repair window not
//!   already covered by reconfig downtime;
//! - `degrade_wait` — queue time inside a degrade window not covered above;
//! - `queue_growth` — the remaining queue time: ordinary load;
//! - `degrade_inflation` — service-time inflation from running degraded;
//! - `service_noise` — signed service-time noise around the degraded base.
//!
//! The wait-side causes are **incremental-union overlaps**: each cause is
//! the overlap of the wait span with the union of its interval set and all
//! sets before it, minus the previous cause's running total. Differences of
//! a telescoping sum add back to the full wait exactly, and the service
//! side is the analyzer's integer identity (`service = clean + inflation +
//! noise`), so [`WindowAttribution::causes_sum`] equals
//! [`WindowAttribution::excess_ns`] with **zero residual** — enforced by
//! `bench_obs` on a live fault scenario.

use crate::analyze::{overlap_ns, union_intervals};
use crate::event::{FaultKind, TraceEvent};
use crate::recorder::QueryTrace;
use crate::slo::Alert;
use std::collections::HashMap;

/// One ranked cause share of a window's p99 excess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseRow {
    /// Stable cause label (see module docs).
    pub cause: &'static str,
    /// Signed share in integer nanoseconds (`service_noise` can be
    /// negative; everything else is non-negative).
    pub share_ns: i128,
}

/// The full attribution of one window's p99 completion.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAttribution {
    /// Query class attributed.
    pub group: usize,
    /// Grid bin attributed.
    pub bin: usize,
    /// Completions of `group` that landed in the bin.
    pub completions: usize,
    /// Lane of the p99 completion.
    pub p99_lane: u32,
    /// Per-lane query id of the p99 completion.
    pub p99_query: u64,
    /// Its end-to-end latency.
    pub p99_latency_ns: u64,
    /// Serialized frontend overhead (not part of the excess).
    pub frontend_ns: u64,
    /// Clean (undegraded profile-table) service time (not part of the
    /// excess).
    pub service_clean_ns: u64,
    /// `latency − frontend − clean`: the nanoseconds the causes explain.
    pub excess_ns: i128,
    /// Causes ranked by descending share (ties broken by label).
    pub causes: Vec<CauseRow>,
}

impl WindowAttribution {
    /// Sum of all cause shares — always exactly [`excess_ns`].
    ///
    /// [`excess_ns`]: WindowAttribution::excess_ns
    #[must_use]
    pub fn causes_sum(&self) -> i128 {
        self.causes.iter().map(|c| c.share_ns).sum()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct QueryState {
    group: usize,
    arrival_ns: u64,
    dispatched_ns: u64,
    last_start_ns: u64,
    clean_ns: u64,
    base_ns: u64,
    arrived: bool,
    started: bool,
}

#[derive(Debug, Clone, Copy)]
struct Completion {
    latency_ns: u64,
    lane: u32,
    query: u64,
    complete_ns: u64,
    state: QueryState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    Loan,
    Fault,
}

/// Everything attribution needs, extracted from the trace in one pass.
struct TailContext {
    /// Per shard lane: reconfig downtime split by trigger, then fault and
    /// degrade exposure windows — all unioned.
    reconfig_loan: HashMap<u32, Vec<(u64, u64)>>,
    reconfig_fault: HashMap<u32, Vec<(u64, u64)>>,
    reconfig_drift: HashMap<u32, Vec<(u64, u64)>>,
    fault_windows: HashMap<u32, Vec<(u64, u64)>>,
    degrade_windows: HashMap<u32, Vec<(u64, u64)>>,
    /// All completions with full per-query state, in trace order.
    completions: Vec<Completion>,
}

fn build_context(trace: &QueryTrace) -> TailContext {
    let horizon = trace.horizon().as_nanos();
    let mut ctx = TailContext {
        reconfig_loan: HashMap::new(),
        reconfig_fault: HashMap::new(),
        reconfig_drift: HashMap::new(),
        fault_windows: HashMap::new(),
        degrade_windows: HashMap::new(),
        completions: Vec::new(),
    };
    // Latest loan/fault annotation per shard, in global trace order — the
    // classifier for reconfig downtime that follows it.
    let mut last_trigger: HashMap<usize, Trigger> = HashMap::new();
    // Open fail→repair windows keyed by (shard, gpu, shard_level) and open
    // degrade windows keyed by (shard, gpu).
    let mut open_fail: HashMap<(usize, usize, bool), u64> = HashMap::new();
    let mut open_degrade: HashMap<(usize, usize), u64> = HashMap::new();
    let mut states: HashMap<(u32, u64), QueryState> = HashMap::new();

    for r in trace.records() {
        let at = r.at.as_nanos();
        match r.event {
            TraceEvent::Arrival {
                query,
                group,
                dispatched_ns,
                ..
            } => {
                let st = states.entry((r.lane, query)).or_default();
                st.group = group;
                st.arrival_ns = at;
                st.dispatched_ns = dispatched_ns;
                st.arrived = true;
            }
            TraceEvent::ServiceStart {
                query,
                clean_ns,
                base_ns,
                ..
            } => {
                let st = states.entry((r.lane, query)).or_default();
                st.last_start_ns = at;
                st.clean_ns = clean_ns;
                st.base_ns = base_ns;
                st.started = true;
            }
            TraceEvent::Complete {
                query, latency_ns, ..
            } => {
                if let Some(&state) = states.get(&(r.lane, query)) {
                    if state.arrived && state.started {
                        ctx.completions.push(Completion {
                            latency_ns,
                            lane: r.lane,
                            query,
                            complete_ns: at,
                            state,
                        });
                    }
                }
            }
            TraceEvent::Loan { shard, .. } => {
                last_trigger.insert(shard, Trigger::Loan);
            }
            TraceEvent::Fault {
                kind, shard, gpu, ..
            } => {
                last_trigger.insert(shard, Trigger::Fault);
                match kind {
                    FaultKind::GpuFail => {
                        open_fail.entry((shard, gpu, false)).or_insert(at);
                    }
                    FaultKind::ShardFail => {
                        open_fail.entry((shard, 0, true)).or_insert(at);
                    }
                    FaultKind::GpuRepair => {
                        if let Some(s) = open_fail.remove(&(shard, gpu, false)) {
                            ctx.fault_windows
                                .entry(shard as u32)
                                .or_default()
                                .push((s, at));
                        }
                    }
                    FaultKind::ShardRepair => {
                        if let Some(s) = open_fail.remove(&(shard, 0, true)) {
                            ctx.fault_windows
                                .entry(shard as u32)
                                .or_default()
                                .push((s, at));
                        }
                    }
                    FaultKind::GpuDegrade => {
                        open_degrade.entry((shard, gpu)).or_insert(at);
                    }
                    FaultKind::GpuRestore => {
                        if let Some(s) = open_degrade.remove(&(shard, gpu)) {
                            ctx.degrade_windows
                                .entry(shard as u32)
                                .or_default()
                                .push((s, at));
                        }
                    }
                }
            }
            TraceEvent::ReconfigStep { downtime_ns, .. } => {
                let set = match last_trigger.get(&(r.lane as usize)) {
                    Some(Trigger::Loan) => &mut ctx.reconfig_loan,
                    Some(Trigger::Fault) => &mut ctx.reconfig_fault,
                    None => &mut ctx.reconfig_drift,
                };
                set.entry(r.lane).or_default().push((at, at + downtime_ns));
            }
            _ => {}
        }
    }
    // Fail/degrade windows still open at end of run extend to the horizon.
    for ((shard, _, _), s) in open_fail {
        ctx.fault_windows
            .entry(shard as u32)
            .or_default()
            .push((s, horizon.max(s)));
    }
    for ((shard, _), s) in open_degrade {
        ctx.degrade_windows
            .entry(shard as u32)
            .or_default()
            .push((s, horizon.max(s)));
    }
    for set in [
        &mut ctx.reconfig_loan,
        &mut ctx.reconfig_fault,
        &mut ctx.reconfig_drift,
        &mut ctx.fault_windows,
        &mut ctx.degrade_windows,
    ] {
        for intervals in set.values_mut() {
            union_intervals(intervals);
        }
    }
    ctx
}

/// Nearest-rank p99 index for `n` sorted samples: `ceil(0.99 n) − 1`.
fn p99_index(n: usize) -> usize {
    (99 * n).div_ceil(100) - 1
}

fn attribute_completion(ctx: &TailContext, c: &Completion, bin: usize) -> WindowAttribution {
    let st = &c.state;
    let lane = c.lane;
    let empty: Vec<(u64, u64)> = Vec::new();
    let get = |set: &HashMap<u32, Vec<(u64, u64)>>| -> Vec<(u64, u64)> {
        set.get(&lane).unwrap_or(&empty).clone()
    };
    let (d, s) = (st.dispatched_ns, st.last_start_ns);
    let wait = s - d;

    // Telescoping unions: each cause = overlap(union so far) − previous
    // running total, so the six wait-side causes sum to `wait` exactly.
    let mut acc = get(&ctx.reconfig_loan);
    let o_loan = overlap_ns(&acc, d, s);
    acc.extend(get(&ctx.reconfig_fault));
    union_intervals(&mut acc);
    let o_lf = overlap_ns(&acc, d, s);
    acc.extend(get(&ctx.reconfig_drift));
    union_intervals(&mut acc);
    let o_reconfig = overlap_ns(&acc, d, s);
    acc.extend(get(&ctx.fault_windows));
    union_intervals(&mut acc);
    let o_fault = overlap_ns(&acc, d, s);
    acc.extend(get(&ctx.degrade_windows));
    union_intervals(&mut acc);
    let o_all = overlap_ns(&acc, d, s);

    let service = c.complete_ns - st.last_start_ns;
    let inflation = st.base_ns - st.clean_ns;
    let noise = i128::from(service) - i128::from(st.base_ns);

    let mut causes = vec![
        CauseRow {
            cause: "reconfig:loan_handover",
            share_ns: i128::from(o_loan),
        },
        CauseRow {
            cause: "reconfig:fault_recovery",
            share_ns: i128::from(o_lf - o_loan),
        },
        CauseRow {
            cause: "reconfig:drift",
            share_ns: i128::from(o_reconfig - o_lf),
        },
        CauseRow {
            cause: "fault_outage_wait",
            share_ns: i128::from(o_fault - o_reconfig),
        },
        CauseRow {
            cause: "degrade_wait",
            share_ns: i128::from(o_all - o_fault),
        },
        CauseRow {
            cause: "queue_growth",
            share_ns: i128::from(wait - o_all),
        },
        CauseRow {
            cause: "degrade_inflation",
            share_ns: i128::from(inflation),
        },
        CauseRow {
            cause: "service_noise",
            share_ns: noise,
        },
    ];
    causes.sort_by(|a, b| b.share_ns.cmp(&a.share_ns).then(a.cause.cmp(b.cause)));

    let frontend = st.dispatched_ns - st.arrival_ns;
    WindowAttribution {
        group: st.group,
        bin,
        completions: 0, // caller fills in
        p99_lane: lane,
        p99_query: c.query,
        p99_latency_ns: c.latency_ns,
        frontend_ns: frontend,
        service_clean_ns: st.clean_ns,
        excess_ns: i128::from(c.latency_ns) - i128::from(frontend) - i128::from(st.clean_ns),
        causes,
    }
}

/// Completions of `group` whose terminal event landed in `bin`, sorted by
/// `(latency, lane, query)` so the p99 pick is deterministic.
fn window_completions(
    ctx: &TailContext,
    window_ns: u64,
    bin: usize,
    group: usize,
) -> Vec<Completion> {
    let lo = bin as u64 * window_ns;
    let hi = lo + window_ns;
    let mut rows: Vec<Completion> = ctx
        .completions
        .iter()
        .filter(|c| c.state.group == group && c.complete_ns >= lo && c.complete_ns < hi)
        .copied()
        .collect();
    rows.sort_by_key(|c| (c.latency_ns, c.lane, c.query));
    rows
}

/// Attributes the p99 completion of `group` in grid window `bin`. Returns
/// `None` when the window saw no completions of that class.
#[must_use]
pub fn attribute_window(
    trace: &QueryTrace,
    window_ns: u64,
    bin: usize,
    group: usize,
) -> Option<WindowAttribution> {
    assert!(window_ns > 0, "window must be positive");
    let ctx = build_context(trace);
    attribute_window_in(&ctx, window_ns, bin, group)
}

fn attribute_window_in(
    ctx: &TailContext,
    window_ns: u64,
    bin: usize,
    group: usize,
) -> Option<WindowAttribution> {
    let rows = window_completions(ctx, window_ns, bin, group);
    if rows.is_empty() {
        return None;
    }
    let pick = &rows[p99_index(rows.len())];
    let mut out = attribute_completion(ctx, pick, bin);
    out.completions = rows.len();
    Some(out)
}

/// The grid bin where `group`'s windowed p99 latency peaks (earliest bin on
/// ties), or `None` if the class never completed a query.
#[must_use]
pub fn worst_window(trace: &QueryTrace, window_ns: u64, group: usize) -> Option<usize> {
    assert!(window_ns > 0, "window must be positive");
    let ctx = build_context(trace);
    let bins = ctx
        .completions
        .iter()
        .filter(|c| c.state.group == group)
        .map(|c| (c.complete_ns / window_ns) as usize)
        .max()?
        + 1;
    let mut best: Option<(u64, usize)> = None;
    for bin in 0..bins {
        let rows = window_completions(&ctx, window_ns, bin, group);
        if rows.is_empty() {
            continue;
        }
        let p99 = rows[p99_index(rows.len())].latency_ns;
        match best {
            Some((b, _)) if p99 <= b => {}
            _ => best = Some((p99, bin)),
        }
    }
    best.map(|(_, bin)| bin)
}

/// Attributes each fired alert's worst violation window (the
/// [`Alert::worst_bin`] its burn computation identified), skipping alerts
/// whose worst window saw no completions of the class.
#[must_use]
pub fn attribute_alerts(
    trace: &QueryTrace,
    window_ns: u64,
    alerts: &[Alert],
) -> Vec<WindowAttribution> {
    assert!(window_ns > 0, "window must be positive");
    let ctx = build_context(trace);
    alerts
        .iter()
        .filter_map(|a| attribute_window_in(&ctx, window_ns, a.worst_bin, a.group))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceSink, ANNOTATION_KEY};
    use des_engine::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Records one full lifecycle: arrive at `at` (dispatched same
    /// instant), start at `start`, complete at `start + actual`.
    #[allow(clippy::too_many_arguments)]
    fn query(
        r: &mut FlightRecorder,
        q: u64,
        group: usize,
        at: u64,
        start: u64,
        clean: u64,
        base: u64,
        actual: u64,
    ) {
        r.record(
            t(at),
            q,
            TraceEvent::Arrival {
                query: q,
                group,
                batch: 1,
                dispatched_ns: at,
                sla_ns: 0,
            },
        );
        r.record(
            t(start),
            q,
            TraceEvent::ServiceStart {
                query: q,
                worker: 0,
                gpcs: 7,
                clean_ns: clean,
                base_ns: base,
                actual_ns: actual,
            },
        );
        r.record(
            t(start + actual),
            q,
            TraceEvent::Complete {
                query: q,
                worker: 0,
                latency_ns: start + actual - at,
            },
        );
    }

    #[test]
    fn loan_triggered_reconfig_wait_is_attributed_with_zero_residual() {
        let mut r = FlightRecorder::new(0);
        // Loan arrives, then the reconfig it triggered takes the lane down
        // for 400 ns; the query waits out the downtime plus 100 ns of
        // ordinary queueing, then runs degraded (base 300 over clean 200)
        // with +50 noise.
        r.record(
            t(50),
            ANNOTATION_KEY,
            TraceEvent::Loan {
                shard: 0,
                gpus_delta: 2,
                pool_free_after: 1,
            },
        );
        r.record(
            t(100),
            ANNOTATION_KEY,
            TraceEvent::ReconfigStep {
                step: 0,
                downtime_ns: 400,
            },
        );
        query(&mut r, 0, 1, 100, 600, 200, 300, 350);
        let trace = crate::recorder::QueryTrace::merge([r]);
        let a = attribute_window(&trace, 1_000, 0, 1).expect("one completion");
        assert_eq!(a.completions, 1);
        assert_eq!((a.p99_lane, a.p99_query), (0, 0));
        assert_eq!(a.p99_latency_ns, 850);
        // excess = 850 − 0 frontend − 200 clean = 650.
        assert_eq!(a.excess_ns, 650);
        assert_eq!(a.causes_sum(), a.excess_ns, "zero residual");
        let share = |name: &str| {
            a.causes
                .iter()
                .find(|c| c.cause == name)
                .expect(name)
                .share_ns
        };
        assert_eq!(share("reconfig:loan_handover"), 400);
        assert_eq!(share("queue_growth"), 100);
        assert_eq!(share("degrade_inflation"), 100);
        assert_eq!(share("service_noise"), 50);
        assert_eq!(share("reconfig:fault_recovery"), 0);
        // Ranked descending.
        assert_eq!(a.causes[0].cause, "reconfig:loan_handover");
    }

    #[test]
    fn fault_windows_and_fault_triggered_reconfigs_split_apart() {
        let mut r = FlightRecorder::new(0);
        // Shard fails at 100, repaired at 300; the repair triggers a
        // reconfig with 200 ns downtime at 300. Query dispatched at 100
        // waits until 600: 100..300 is outage, 300..500 fault-triggered
        // reconfig, 500..600 plain queueing.
        r.record(
            t(100),
            ANNOTATION_KEY,
            TraceEvent::Fault {
                kind: FaultKind::ShardFail,
                shard: 0,
                gpu: 0,
                factor_milli: 0,
            },
        );
        r.record(
            t(300),
            ANNOTATION_KEY,
            TraceEvent::Fault {
                kind: FaultKind::ShardRepair,
                shard: 0,
                gpu: 0,
                factor_milli: 0,
            },
        );
        r.record(
            t(300),
            ANNOTATION_KEY,
            TraceEvent::ReconfigStep {
                step: 0,
                downtime_ns: 200,
            },
        );
        query(&mut r, 0, 0, 100, 600, 150, 150, 150);
        let trace = crate::recorder::QueryTrace::merge([r]);
        let a = attribute_window(&trace, 1_000, 0, 0).expect("completion");
        let share = |name: &str| a.causes.iter().find(|c| c.cause == name).unwrap().share_ns;
        assert_eq!(share("reconfig:fault_recovery"), 200);
        assert_eq!(share("fault_outage_wait"), 200);
        assert_eq!(share("queue_growth"), 100);
        assert_eq!(share("reconfig:loan_handover"), 0);
        assert_eq!(a.causes_sum(), a.excess_ns);
    }

    #[test]
    fn p99_pick_is_nearest_rank_and_deterministic() {
        let mut r = FlightRecorder::new(0);
        // Three completions in bin 0 with latencies 100 < 200 < 300:
        // nearest-rank p99 of n=3 is the max.
        for (q, start) in [(0u64, 100u64), (1, 200), (2, 300)] {
            query(&mut r, q, 0, 0, start, 50, 50, 50);
        }
        let trace = crate::recorder::QueryTrace::merge([r]);
        let a = attribute_window(&trace, 1_000, 0, 0).expect("completions");
        assert_eq!(a.completions, 3);
        assert_eq!(a.p99_query, 2, "nearest-rank p99 of 3 samples is the max");
        assert_eq!(a.p99_latency_ns, 350);
        assert_eq!(p99_index(100), 98);
        assert_eq!(p99_index(1), 0);
    }

    #[test]
    fn worst_window_finds_the_tail_spike() {
        let mut r = FlightRecorder::new(0);
        query(&mut r, 0, 0, 0, 100, 50, 50, 50); // bin 0, latency 150
        query(&mut r, 1, 0, 1_000, 1_900, 50, 50, 50); // bin 1, latency 950
        query(&mut r, 2, 0, 2_100, 2_200, 50, 50, 50); // bin 2, latency 150
        let trace = crate::recorder::QueryTrace::merge([r]);
        assert_eq!(worst_window(&trace, 1_000, 0), Some(1));
        assert_eq!(worst_window(&trace, 1_000, 9), None, "unknown class");
    }

    #[test]
    fn attribute_alerts_digs_into_each_worst_bin() {
        let mut r = FlightRecorder::new(0);
        query(&mut r, 0, 0, 0, 100, 50, 50, 50);
        query(&mut r, 1, 0, 1_000, 1_500, 50, 50, 50);
        let trace = crate::recorder::QueryTrace::merge([r]);
        let alerts = vec![Alert {
            slo: 0,
            group: 0,
            fired_bin: 1,
            resolved_bin: None,
            worst_bin: 1,
            burn_short: 2.0,
            burn_long: 1.5,
        }];
        let rows = attribute_alerts(&trace, 1_000, &alerts);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bin, 1);
        assert_eq!(rows[0].p99_query, 1);
        assert_eq!(rows[0].causes_sum(), rows[0].excess_ns);
    }
}
