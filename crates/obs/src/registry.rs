//! The metric registry: fixed-grid DES-clock time series derived from a
//! merged trace.
//!
//! The registry is a **pure function** of a [`QueryTrace`] — it is built
//! after the run from the recorded events, so it cannot perturb the engine
//! (invariant 12 holds trivially) and it is exactly as deterministic as the
//! trace. Every series shares one tumbling grid of `window_ns` bins, the
//! same shape as [`server_metrics::WindowedTail`] windows, which the
//! per-model SLA-violation series reuses directly.

use crate::event::TraceEvent;
use crate::recorder::QueryTrace;
use server_metrics::WindowedTail;
use std::collections::{BTreeMap, HashMap};

/// One named time series on the shared grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Series name, e.g. `shard0/outstanding` or `model1/sla_violation_rate`.
    pub name: String,
    /// One value per grid bin.
    pub values: Vec<f64>,
}

/// A bundle of fixed-grid series sampled from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRegistry {
    window_ns: u64,
    windows: usize,
    series: Vec<MetricSeries>,
}

impl MetricRegistry {
    /// Builds the registry from a merged trace.
    ///
    /// `lane_gpcs[s]` is shard `s`'s total GPC capacity, the denominator of
    /// its `busy_gpc_fraction` series; lanes beyond the slice (or a zero
    /// entry) fall back to the peak concurrent busy GPCs observed on that
    /// lane, so the series stays in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn from_trace(trace: &QueryTrace, window_ns: u64, lane_gpcs: &[u32]) -> Self {
        assert!(window_ns > 0, "window must be positive");
        let horizon = trace.horizon().as_nanos();
        let windows = (horizon / window_ns + 1) as usize;
        let mut b = Builder {
            window_ns,
            windows,
            outstanding: BTreeMap::new(),
            busy: BTreeMap::new(),
            spans: BTreeMap::new(),
            loaned: vec![0.0; windows],
            routed: vec![0.0; windows],
            shed: vec![0.0; windows],
            tails: BTreeMap::new(),
            slas: BTreeMap::new(),
            groups: HashMap::new(),
        };
        for r in trace.records() {
            b.absorb(r.lane, r.at.as_nanos(), r.event);
        }
        b.finish(lane_gpcs)
    }

    /// The grid's bin width in nanoseconds.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of grid bins every series has.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// All series, sorted by name.
    #[must_use]
    pub fn series(&self) -> &[MetricSeries] {
        &self.series
    }

    /// Looks a series up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricSeries> {
        self.series.iter().find(|s| s.name == name)
    }
}

struct Builder {
    window_ns: u64,
    windows: usize,
    /// lane -> (running outstanding, per-bin sample at bin close).
    outstanding: BTreeMap<u32, (i64, Vec<f64>)>,
    /// lane -> per-bin busy GPC·ns.
    busy: BTreeMap<u32, Vec<f64>>,
    /// lane -> `(start, end, gpcs)` service spans (fallback capacity input).
    spans: BTreeMap<u32, Vec<(u64, u64, u32)>>,
    loaned: Vec<f64>,
    routed: Vec<f64>,
    shed: Vec<f64>,
    /// model -> windowed latency histograms (reused metrics machinery).
    tails: BTreeMap<usize, WindowedTail>,
    /// model -> SLA from the first arrival that carried one.
    slas: BTreeMap<usize, u64>,
    /// (lane, query) -> model, so a complete can attribute its latency.
    groups: HashMap<(u32, u64), usize>,
}

impl Builder {
    fn bin(&self, at_ns: u64) -> usize {
        ((at_ns / self.window_ns) as usize).min(self.windows - 1)
    }

    fn absorb(&mut self, lane: u32, at_ns: u64, event: TraceEvent) {
        let bin = self.bin(at_ns);
        match event {
            TraceEvent::Arrival {
                query,
                group,
                sla_ns: sla,
                ..
            } => {
                let entry = self
                    .outstanding
                    .entry(lane)
                    .or_insert_with(|| (0, vec![f64::NAN; self.windows]));
                entry.0 += 1;
                entry.1[bin] = entry.0 as f64;
                if sla > 0 {
                    self.slas.entry(group).or_insert(sla);
                }
                self.groups.insert((lane, query), group);
            }
            TraceEvent::Complete {
                query, latency_ns, ..
            } => {
                let entry = self
                    .outstanding
                    .entry(lane)
                    .or_insert_with(|| (0, vec![f64::NAN; self.windows]));
                entry.0 -= 1;
                entry.1[bin] = entry.0 as f64;
                if let Some(&group) = self.groups.get(&(lane, query)) {
                    self.tails
                        .entry(group)
                        .or_insert_with(|| WindowedTail::new(self.window_ns))
                        .record(at_ns, latency_ns);
                }
            }
            TraceEvent::ServiceStart {
                gpcs, actual_ns, ..
            } => {
                let (window_ns, windows) = (self.window_ns, self.windows);
                let busy = self.busy.entry(lane).or_insert_with(|| vec![0.0; windows]);
                // Spread the execution's GPC·ns across the bins it covers.
                let (mut s, e) = (at_ns, at_ns + actual_ns);
                while s < e {
                    let b = ((s / window_ns) as usize).min(windows - 1);
                    let bin_end = ((b as u64) + 1) * window_ns;
                    let seg = e.min(bin_end).max(s) - s;
                    busy[b] += seg as f64 * f64::from(gpcs);
                    if bin_end <= s {
                        break;
                    }
                    s = bin_end;
                }
                self.spans.entry(lane).or_default().push((at_ns, e, gpcs));
            }
            TraceEvent::RouteDecision { .. } => self.routed[bin] += 1.0,
            TraceEvent::Shed { .. } => self.shed[bin] += 1.0,
            TraceEvent::Loan { gpus_delta, .. } => {
                // Step series: record the delta; finish() integrates.
                self.loaned[bin] += gpus_delta as f64;
            }
            _ => {}
        }
    }

    fn finish(mut self, lane_gpcs: &[u32]) -> MetricRegistry {
        let mut series = Vec::new();

        // Carry outstanding snapshots forward through quiet bins (bins with
        // no lifecycle events start as NaN sentinels).
        for (&lane, (_, samples)) in &mut self.outstanding {
            let mut last = 0.0;
            for v in samples.iter_mut() {
                if v.is_nan() {
                    *v = last;
                } else {
                    last = *v;
                }
            }
            series.push(MetricSeries {
                name: format!("shard{lane}/outstanding"),
                values: samples.clone(),
            });
        }

        // Busy GPC fraction: busy GPC·ns / (window · capacity).
        for (&lane, busy) in &self.busy {
            let capacity = lane_gpcs
                .get(lane as usize)
                .copied()
                .filter(|&c| c > 0)
                .unwrap_or_else(|| peak_concurrent_gpcs(&self.spans[&lane]).max(1));
            let denom = self.window_ns as f64 * f64::from(capacity);
            series.push(MetricSeries {
                name: format!("shard{lane}/busy_gpc_fraction"),
                values: busy.iter().map(|&b| b / denom).collect(),
            });
        }

        // Pool loans: integrate deltas into a level.
        let mut level = 0.0;
        let loaned: Vec<f64> = self
            .loaned
            .iter()
            .map(|&d| {
                level += d;
                level
            })
            .collect();
        if loaned.iter().any(|&v| v != 0.0) {
            series.push(MetricSeries {
                name: "pool/loaned_gpus".to_string(),
                values: loaned,
            });
        }

        // Shed rate per bin over offered load.
        if self.routed.iter().chain(&self.shed).any(|&v| v > 0.0) {
            let values = self
                .routed
                .iter()
                .zip(&self.shed)
                .map(|(&r, &s)| if r + s > 0.0 { s / (r + s) } else { 0.0 })
                .collect();
            series.push(MetricSeries {
                name: "fleet/shed_rate".to_string(),
                values,
            });
        }

        // Per-model SLA violation rate, from the reused WindowedTail bins.
        for (&model, tail) in &self.tails {
            let Some(&sla) = self.slas.get(&model) else {
                continue;
            };
            let values = (0..self.windows)
                .map(|idx| match tail.histogram(idx) {
                    Some(h) if !h.is_empty() => h.violation_rate(sla),
                    _ => 0.0,
                })
                .collect();
            series.push(MetricSeries {
                name: format!("model{model}/sla_violation_rate"),
                values,
            });
        }

        series.sort_by(|a, b| a.name.cmp(&b.name));
        MetricRegistry {
            window_ns: self.window_ns,
            windows: self.windows,
            series,
        }
    }
}

/// Peak number of concurrently busy GPCs among `(start, end, gpcs)` spans.
fn peak_concurrent_gpcs(spans: &[(u64, u64, u32)]) -> u32 {
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(spans.len() * 2);
    for &(s, e, g) in spans {
        edges.push((s, i64::from(g)));
        edges.push((e, -i64::from(g)));
    }
    edges.sort_unstable();
    let (mut level, mut peak) = (0i64, 0i64);
    for (_, d) in edges {
        level += d;
        peak = peak.max(level);
    }
    peak.max(0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceSink, ANNOTATION_KEY};
    use des_engine::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn arrive(r: &mut FlightRecorder, at: u64, q: u64, group: usize, sla: u64) {
        r.record(
            t(at),
            q,
            TraceEvent::Arrival {
                query: q,
                group,
                batch: 1,
                dispatched_ns: at,
                sla_ns: sla,
            },
        );
    }

    fn complete(r: &mut FlightRecorder, at: u64, q: u64, latency: u64) {
        r.record(
            t(at),
            q,
            TraceEvent::Complete {
                query: q,
                worker: 0,
                latency_ns: latency,
            },
        );
    }

    #[test]
    fn outstanding_gauge_carries_through_quiet_bins() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 100, 0, 0, 0);
        arrive(&mut r, 200, 1, 0, 0);
        complete(&mut r, 3_500, 0, 3_400);
        complete(&mut r, 3_600, 1, 3_400);
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let s = reg.get("shard0/outstanding").expect("series");
        assert_eq!(s.values, vec![2.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn busy_fraction_uses_capacity_and_splits_bins() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 0, 0, 0, 0);
        // 7 GPCs busy for 1500 ns spanning bins 0 and 1 of a 1000 ns grid.
        r.record(
            t(0),
            0,
            TraceEvent::ServiceStart {
                query: 0,
                worker: 0,
                gpcs: 7,
                clean_ns: 1_500,
                base_ns: 1_500,
                actual_ns: 1_500,
            },
        );
        complete(&mut r, 1_500, 0, 1_500);
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[14]);
        let s = reg.get("shard0/busy_gpc_fraction").expect("series");
        assert!((s.values[0] - 0.5).abs() < 1e-9, "{:?}", s.values);
        assert!((s.values[1] - 0.25).abs() < 1e-9, "{:?}", s.values);
    }

    #[test]
    fn sla_violation_rate_per_model() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 0, 0, 1, 1_000); // SLA 1 µs
        arrive(&mut r, 10, 1, 1, 1_000);
        complete(&mut r, 500, 0, 500); // within SLA
        complete(&mut r, 900, 1, 5_000); // violation, same bin
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let s = reg.get("model1/sla_violation_rate").expect("series");
        assert!((s.values[0] - 0.5).abs() < 1e-9, "{:?}", s.values);
    }

    #[test]
    fn loans_integrate_and_sheds_rate() {
        let mut r = FlightRecorder::new(2);
        r.record(
            t(100),
            ANNOTATION_KEY,
            TraceEvent::Loan {
                shard: 0,
                gpus_delta: 2,
                pool_free_after: 3,
            },
        );
        r.record(
            t(2_500),
            ANNOTATION_KEY,
            TraceEvent::Loan {
                shard: 0,
                gpus_delta: -2,
                pool_free_after: 5,
            },
        );
        r.record(
            t(200),
            0,
            TraceEvent::RouteDecision {
                model: 0,
                shard: 0,
                pinned: false,
            },
        );
        r.record(t(300), 0, TraceEvent::Shed { model: 1, shard: 0 });
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let loans = reg.get("pool/loaned_gpus").expect("loans");
        assert_eq!(loans.values, vec![2.0, 2.0, 0.0]);
        let shed = reg.get("fleet/shed_rate").expect("shed");
        assert!((shed.values[0] - 0.5).abs() < 1e-9);
    }
}
