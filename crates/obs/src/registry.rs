//! The metric registry: fixed-grid DES-clock time series.
//!
//! A registry comes from one of two producers that share one code path:
//!
//! - **post-hoc**: [`MetricRegistry::from_trace`] replays a merged
//!   [`QueryTrace`] through per-lane [`OnlineLane`] accumulators — a pure
//!   function of the trace, exactly as deterministic as the trace itself;
//! - **online**: an instrumented run streams the same events into the same
//!   accumulators live, no trace retention.
//!
//! Invariant 13 (ARCHITECTURE.md) says the two are byte-for-byte identical
//! on the same run at any thread count; `from_trace` is the oracle the
//! property suite and `bench_obs` compare the online plane against. Every
//! series shares one tumbling grid of `window_ns` bins, the same shape as
//! [`server_metrics::WindowedTail`] windows, which the per-model
//! SLA-violation series reuses directly.
//!
//! [`OnlineLane`]: crate::online::OnlineLane

use crate::online::OnlineLane;
use crate::recorder::{QueryTrace, TraceSink};
use std::collections::BTreeMap;

/// One named time series on the shared grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Series name, e.g. `shard0/outstanding` or `model1/sla_violation_rate`.
    pub name: String,
    /// One value per grid bin.
    pub values: Vec<f64>,
}

/// A bundle of fixed-grid series sampled from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRegistry {
    window_ns: u64,
    windows: usize,
    series: Vec<MetricSeries>,
}

impl MetricRegistry {
    /// Builds the registry from a merged trace.
    ///
    /// `lane_gpcs[s]` is shard `s`'s total GPC capacity, the denominator of
    /// its `busy_gpc_fraction` series; lanes beyond the slice (or a zero
    /// entry) fall back to the peak concurrent busy GPCs observed on that
    /// lane, so the series stays in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn from_trace(trace: &QueryTrace, window_ns: u64, lane_gpcs: &[u32]) -> Self {
        assert!(window_ns > 0, "window must be positive");
        // Replay through the SAME per-lane accumulators an instrumented run
        // streams into (invariant 13 by construction): the merged global
        // order visits each lane's records as a time-sorted subsequence,
        // which is all OnlineLane requires.
        let mut lanes: BTreeMap<u32, OnlineLane> = BTreeMap::new();
        for r in trace.records() {
            lanes
                .entry(r.lane)
                .or_insert_with(|| OnlineLane::new(r.lane, window_ns))
                .record(r.at, r.key, r.event);
        }
        crate::online::merge_online(window_ns, lanes.into_values(), lane_gpcs)
    }

    /// Assembles a registry from already-built series (the back half of
    /// [`merge_online`](crate::online::merge_online)).
    pub(crate) fn from_parts(window_ns: u64, windows: usize, series: Vec<MetricSeries>) -> Self {
        MetricRegistry {
            window_ns,
            windows,
            series,
        }
    }

    /// The grid's bin width in nanoseconds.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of grid bins every series has.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// All series, sorted by name.
    #[must_use]
    pub fn series(&self) -> &[MetricSeries] {
        &self.series
    }

    /// Looks a series up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricSeries> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::recorder::{FlightRecorder, ANNOTATION_KEY};
    use des_engine::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn arrive(r: &mut FlightRecorder, at: u64, q: u64, group: usize, sla: u64) {
        r.record(
            t(at),
            q,
            TraceEvent::Arrival {
                query: q,
                group,
                batch: 1,
                dispatched_ns: at,
                sla_ns: sla,
            },
        );
    }

    fn complete(r: &mut FlightRecorder, at: u64, q: u64, latency: u64) {
        r.record(
            t(at),
            q,
            TraceEvent::Complete {
                query: q,
                worker: 0,
                latency_ns: latency,
            },
        );
    }

    #[test]
    fn outstanding_gauge_carries_through_quiet_bins() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 100, 0, 0, 0);
        arrive(&mut r, 200, 1, 0, 0);
        complete(&mut r, 3_500, 0, 3_400);
        complete(&mut r, 3_600, 1, 3_400);
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let s = reg.get("shard0/outstanding").expect("series");
        assert_eq!(s.values, vec![2.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn busy_fraction_uses_capacity_and_splits_bins() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 0, 0, 0, 0);
        // 7 GPCs busy for 1500 ns spanning bins 0 and 1 of a 1000 ns grid.
        r.record(
            t(0),
            0,
            TraceEvent::ServiceStart {
                query: 0,
                worker: 0,
                gpcs: 7,
                clean_ns: 1_500,
                base_ns: 1_500,
                actual_ns: 1_500,
            },
        );
        complete(&mut r, 1_500, 0, 1_500);
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[14]);
        let s = reg.get("shard0/busy_gpc_fraction").expect("series");
        assert!((s.values[0] - 0.5).abs() < 1e-9, "{:?}", s.values);
        assert!((s.values[1] - 0.25).abs() < 1e-9, "{:?}", s.values);
    }

    #[test]
    fn sla_violation_rate_per_model() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 0, 0, 1, 1_000); // SLA 1 µs
        arrive(&mut r, 10, 1, 1, 1_000);
        complete(&mut r, 500, 0, 500); // within SLA
        complete(&mut r, 900, 1, 5_000); // violation, same bin
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let s = reg.get("model1/sla_violation_rate").expect("series");
        assert!((s.values[0] - 0.5).abs() < 1e-9, "{:?}", s.values);
    }

    #[test]
    fn loans_integrate_and_sheds_rate() {
        let mut r = FlightRecorder::new(2);
        r.record(
            t(100),
            ANNOTATION_KEY,
            TraceEvent::Loan {
                shard: 0,
                gpus_delta: 2,
                pool_free_after: 3,
            },
        );
        r.record(
            t(2_500),
            ANNOTATION_KEY,
            TraceEvent::Loan {
                shard: 0,
                gpus_delta: -2,
                pool_free_after: 5,
            },
        );
        r.record(
            t(200),
            0,
            TraceEvent::RouteDecision {
                model: 0,
                shard: 0,
                pinned: false,
            },
        );
        r.record(t(300), 0, TraceEvent::Shed { model: 1, shard: 0 });
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let loans = reg.get("pool/loaned_gpus").expect("loans");
        assert_eq!(loans.values, vec![2.0, 2.0, 0.0]);
        let shed = reg.get("fleet/shed_rate").expect("shed");
        assert!((shed.values[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_well_formed_registry() {
        let reg = MetricRegistry::from_trace(
            &QueryTrace::merge(Vec::<FlightRecorder>::new()),
            1_000,
            &[],
        );
        assert_eq!(reg.windows(), 1, "the grid always has at least one bin");
        assert_eq!(reg.window_ns(), 1_000);
        assert!(reg.series().is_empty(), "no events, no series");
        assert!(reg.get("shard0/outstanding").is_none());
    }

    #[test]
    fn zero_lane_gpcs_falls_back_without_div_by_zero() {
        let mut r = FlightRecorder::new(0);
        arrive(&mut r, 0, 0, 0, 0);
        r.record(
            t(0),
            0,
            TraceEvent::ServiceStart {
                query: 0,
                worker: 0,
                gpcs: 7,
                clean_ns: 500,
                base_ns: 500,
                actual_ns: 500,
            },
        );
        complete(&mut r, 500, 0, 500);
        let trace = QueryTrace::merge([r]);
        // Empty slice and an explicit zero entry both fall back to the
        // observed peak concurrency (7 GPCs), never a zero denominator.
        for lane_gpcs in [&[] as &[u32], &[0u32]] {
            let reg = MetricRegistry::from_trace(&trace, 1_000, lane_gpcs);
            let busy = reg.get("shard0/busy_gpc_fraction").expect("series");
            assert!(
                busy.values.iter().all(|v| v.is_finite()),
                "{:?}",
                busy.values
            );
            assert!((busy.values[0] - 0.5).abs() < 1e-9, "{:?}", busy.values);
        }
    }

    #[test]
    fn zero_length_service_span_still_creates_the_series() {
        let mut r = FlightRecorder::new(0);
        r.record(
            t(100),
            0,
            TraceEvent::ServiceStart {
                query: 0,
                worker: 0,
                gpcs: 7,
                clean_ns: 0,
                base_ns: 0,
                actual_ns: 0,
            },
        );
        let reg = MetricRegistry::from_trace(&QueryTrace::merge([r]), 1_000, &[]);
        let busy = reg.get("shard0/busy_gpc_fraction").expect("series");
        assert_eq!(busy.values, vec![0.0], "zero-length span, zero busy");
    }
}
