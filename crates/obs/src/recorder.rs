//! The flight recorder: per-lane `(time, key)`-stamped buffers that merge
//! deterministically.
//!
//! Each engine lane (a shard's dispatch core, or the cluster gateway) owns a
//! private [`FlightRecorder`]. Recording is a bounds-checked `Vec` push — no
//! locks, no clocks, no I/O — so a lane's buffer is exactly as deterministic
//! as the lane itself, which invariant 11 already guarantees is thread-count
//! invariant. At window close the buffers merge by `(time, key, lane, seq)`
//! into one [`QueryTrace`], so the merged order is a pure function of the
//! simulation too.
//!
//! **Invariant 12 (zero observer effect):** recording must never touch engine
//! state — no RNG draws, no report fields, no event keys. Hooks are
//! `if let Some(sink) = trace { ... }` on otherwise-unchanged paths, and the
//! property suite pins byte-identical reports with tracing on vs off.

use crate::event::TraceEvent;
use des_engine::SimTime;
use std::cell::{OnceCell, RefCell};

/// Same-instant ordering key for annotation events (reconfigs, loans,
/// faults, degrades): they sort after every query-keyed lifecycle event at
/// the same stamp, mirroring the engine's own command-before-event layering.
pub const ANNOTATION_KEY: u64 = u64::MAX;

/// One stamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation instant the event was observed.
    pub at: SimTime,
    /// Same-instant tiebreak key — the query id for lifecycle events,
    /// [`ANNOTATION_KEY`] for annotations.
    pub key: u64,
    /// Which recorder buffer this came from (shard index; the cluster
    /// gateway records as `shards.len()`).
    pub lane: u32,
    /// Per-lane monotone sequence number — the final within-lane tiebreak.
    pub seq: u64,
    /// The observation itself.
    pub event: TraceEvent,
}

/// Anything the engine can hand observations to.
pub trait TraceSink {
    /// Record `event` observed at `(at, key)`.
    fn record(&mut self, at: SimTime, key: u64, event: TraceEvent);
}

/// Records per arena chunk: large enough to amortize the chunk-list
/// bookkeeping, small enough that a quiet lane wastes little.
const CHUNK: usize = 1024;

/// A per-lane append-only trace buffer.
///
/// Storage is a chunked arena (like the server's `Gantt`): appending never
/// moves earlier records, so a hot lane recording tens of thousands of
/// events never pays the doubling-growth memcpy of a flat `Vec` — the push
/// is the recorder's entire hot-path cost.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    lane: u32,
    seq: u64,
    /// The chunk being appended to — kept separate from `full` so the push
    /// is a direct `Vec::push`, not a `last_mut()` double indirection.
    current: Vec<TraceRecord>,
    /// Filled chunks, each exactly `CHUNK` records.
    full: Vec<Vec<TraceRecord>>,
}

impl FlightRecorder {
    /// Creates an empty recorder for `lane`.
    #[must_use]
    pub fn new(lane: u32) -> Self {
        FlightRecorder {
            lane,
            seq: 0,
            current: Vec::new(),
            full: Vec::new(),
        }
    }

    /// The lane this recorder stamps onto its records.
    #[must_use]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Number of records buffered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seq as usize
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }

    /// Consumes the recorder, yielding its buffer in append order.
    #[must_use]
    pub fn into_records(self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.len());
        for chunk in self.full {
            out.extend(chunk);
        }
        out.extend(self.current);
        out
    }

    /// Rolls a filled `current` chunk into `full` — out of line so the
    /// inlined push stays small.
    #[cold]
    fn grow(&mut self) {
        let filled = std::mem::replace(&mut self.current, Vec::with_capacity(CHUNK));
        if !filled.is_empty() {
            self.full.push(filled);
        }
    }
}

impl TraceSink for FlightRecorder {
    // Inlined into the engines' hook sites (cross-crate): the push IS the
    // traced hot path, and a call frame per record roughly doubles it.
    #[inline]
    fn record(&mut self, at: SimTime, key: u64, event: TraceEvent) {
        if self.current.len() == self.current.capacity() {
            self.grow();
        }
        self.current.push(TraceRecord {
            at,
            key,
            lane: self.lane,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }
}

/// A deterministically merged trace: every lane's records in one global
/// `(time, key, lane, seq)` order.
///
/// The global order is realized **lazily**: [`merge`] only takes ownership
/// of the lane buffers, and the flatten-and-sort runs on the first
/// [`records`] call. The sort's outcome is a pure function of the stamps
/// either way; deferring it keeps the traced run's wall-clock cost to the
/// per-record push alone, so the overhead number `bench_obs` reports
/// measures the recorder, not the post-run analysis.
///
/// [`merge`]: QueryTrace::merge
/// [`records`]: QueryTrace::records
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    parts: RefCell<Vec<FlightRecorder>>,
    sorted: OnceCell<Vec<TraceRecord>>,
}

impl QueryTrace {
    /// Merges per-lane buffers into the global order (lazily — see the
    /// type-level docs).
    ///
    /// Because each buffer is already time-sorted (lanes observe their own
    /// events in stamp order) a k-way merge would do, but a sort keeps the
    /// invariant local: the output order depends only on the stamps, never
    /// on the order buffers were handed in.
    #[must_use]
    pub fn merge(parts: impl IntoIterator<Item = FlightRecorder>) -> Self {
        QueryTrace {
            parts: RefCell::new(parts.into_iter().collect()),
            sorted: OnceCell::new(),
        }
    }

    /// The merged records in global order (realizes the sort on first use).
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        self.sorted.get_or_init(|| {
            let parts = self.parts.take();
            let total: usize = parts.iter().map(FlightRecorder::len).sum();
            let mut records: Vec<TraceRecord> = Vec::with_capacity(total);
            for part in parts {
                for chunk in part.full {
                    records.extend(chunk);
                }
                records.extend(part.current);
            }
            // The input is a handful of time-sorted runs, which the stable
            // sort detects and merges instead of sorting from scratch.
            records.sort_by_key(|r| (r.at, r.key, r.lane, r.seq));
            records
        })
    }

    /// Total number of records (does not realize the sort).
    #[must_use]
    pub fn len(&self) -> usize {
        match self.sorted.get() {
            Some(records) => records.len(),
            None => self.parts.borrow().iter().map(FlightRecorder::len).sum(),
        }
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Latest stamp in the trace, or zero when empty.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.records()
            .iter()
            .map(|r| r.at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// A copy of this trace with `extra` records (e.g. SLO alert
    /// annotations from [`crate::slo::alert_records`]) merged into the
    /// global `(time, key, lane, seq)` order. The original is untouched.
    #[must_use]
    pub fn annotated(&self, extra: impl IntoIterator<Item = TraceRecord>) -> QueryTrace {
        let mut records: Vec<TraceRecord> = self.records().to_vec();
        records.extend(extra);
        records.sort_by_key(|r| (r.at, r.key, r.lane, r.seq));
        let sorted = OnceCell::new();
        let _ = sorted.set(records);
        QueryTrace {
            parts: RefCell::new(Vec::new()),
            sorted,
        }
    }
}

impl PartialEq for QueryTrace {
    fn eq(&self, other: &Self) -> bool {
        self.records() == other.records()
    }
}

impl Eq for QueryTrace {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(q: u64) -> TraceEvent {
        TraceEvent::Requeue { query: q }
    }

    #[test]
    fn merge_orders_by_time_key_lane_seq() {
        let t = SimTime::from_nanos;
        let mut a = FlightRecorder::new(1);
        a.record(t(10), 5, ev(5));
        a.record(t(20), 1, ev(1));
        let mut b = FlightRecorder::new(0);
        b.record(t(10), 5, ev(50));
        b.record(t(10), ANNOTATION_KEY, ev(99));

        // Hand the buffers in "wrong" order on purpose.
        let merged = QueryTrace::merge([a, b]);
        let lanes: Vec<u32> = merged.records().iter().map(|r| r.lane).collect();
        let keys: Vec<u64> = merged.records().iter().map(|r| r.key).collect();
        // (10,5,lane0) < (10,5,lane1) < (10,MAX) < (20,1)
        assert_eq!(lanes, vec![0, 1, 0, 1]);
        assert_eq!(keys, vec![5, 5, ANNOTATION_KEY, 1]);
    }

    #[test]
    fn merge_is_input_order_invariant() {
        let t = SimTime::from_nanos;
        let mk = |lane: u32| {
            let mut r = FlightRecorder::new(lane);
            for i in 0..4 {
                r.record(t(i * 7 % 13), i, ev(i));
            }
            r
        };
        let fwd = QueryTrace::merge([mk(0), mk(1), mk(2)]);
        let rev = QueryTrace::merge([mk(2), mk(1), mk(0)]);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn annotated_merges_extra_records_in_global_order() {
        let t = SimTime::from_nanos;
        let mut r = FlightRecorder::new(0);
        r.record(t(10), 1, ev(1));
        r.record(t(30), 2, ev(2));
        let trace = QueryTrace::merge([r]);
        let mut extra = FlightRecorder::new(7);
        extra.record(t(20), ANNOTATION_KEY, ev(99));
        let annotated = trace.annotated(extra.into_records());
        assert_eq!(annotated.len(), 3);
        let keys: Vec<u64> = annotated.records().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, ANNOTATION_KEY, 2]);
        assert_eq!(trace.len(), 2, "original untouched");
    }

    #[test]
    fn seq_breaks_ties_within_a_lane() {
        let t = SimTime::from_nanos(42);
        let mut r = FlightRecorder::new(3);
        r.record(t, 7, ev(70));
        r.record(t, 7, ev(71));
        let merged = QueryTrace::merge([r]);
        assert_eq!(merged.records()[0].event, ev(70));
        assert_eq!(merged.records()[1].event, ev(71));
        assert_eq!(merged.horizon(), t);
    }
}
