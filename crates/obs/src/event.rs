//! The trace-event vocabulary: everything the flight recorder can say.
//!
//! Events split into two families:
//!
//! - **Lifecycle events** follow a single query from arrival to its one
//!   terminal event (complete or shed). Query ids are per-lane (each shard's
//!   dispatch core numbers its own queries), so a lifecycle event is uniquely
//!   addressed by `(lane, query)`.
//! - **Annotation events** mark engine-level state changes — re-plan steps,
//!   pool loans, faults, degrades — that explain *why* the lifecycle events
//!   around them look the way they do.
//!
//! All payloads are plain integers stamped in simulation time, so a trace is
//! `Copy`-cheap, deterministic, and independent of wall-clock or thread
//! scheduling.

/// What kind of fault an annotation records (mirrors the cluster fault
/// machinery without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A single GPU went dark.
    GpuFail,
    /// A failed GPU came back.
    GpuRepair,
    /// A GPU entered a slow (degraded) window.
    GpuDegrade,
    /// A degraded GPU returned to full speed.
    GpuRestore,
    /// A whole shard went dark.
    ShardFail,
    /// A failed shard came back.
    ShardRepair,
}

/// One observation from the engine, stamped externally by
/// [`TraceRecord`](crate::TraceRecord) with `(time, key, lane, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query entered a dispatch core. `dispatched_ns` is when the frontend
    /// hands it to the scheduler (arrival + serialized frontend overhead);
    /// `sla_ns == 0` means the group has no SLA.
    Arrival {
        query: u64,
        group: usize,
        batch: usize,
        dispatched_ns: u64,
        sla_ns: u64,
    },
    /// The cluster router picked a shard for an admitted query.
    RouteDecision {
        model: usize,
        shard: usize,
        pinned: bool,
    },
    /// The admission controller turned a query away — a terminal event.
    Shed { model: usize, shard: usize },
    /// No worker was free; the query joined its group's queue.
    Enqueue { query: u64, group: usize },
    /// The query's group is dark (mid-reconfig); parked in the stash.
    Stash { query: u64, group: usize },
    /// Service began on a worker. `clean_ns` is the profile-table latency,
    /// `base_ns` the degrade-scaled base, `actual_ns` the scheduled physical
    /// duration (base plus service noise) — so degrade inflation and noise
    /// are both recoverable exactly.
    ServiceStart {
        query: u64,
        worker: usize,
        gpcs: u32,
        clean_ns: u64,
        base_ns: u64,
        actual_ns: u64,
    },
    /// An in-flight execution was killed (worker died); the query will
    /// requeue and start again.
    ServiceAbort { query: u64, worker: usize },
    /// A killed or orphaned query re-entered routing.
    Requeue { query: u64 },
    /// The query finished — a terminal event.
    Complete {
        query: u64,
        worker: usize,
        latency_ns: u64,
    },
    /// One step of a reconfiguration began; the step's workers are offline
    /// for `downtime_ns`.
    ReconfigStep { step: usize, downtime_ns: u64 },
    /// A reconfiguration finished (or was abandoned mid-flight).
    ReconfigDone { steps: usize, aborted: bool },
    /// Pool GPUs moved: positive `gpus_delta` lends to `shard`, negative
    /// reclaims from it.
    Loan {
        shard: usize,
        gpus_delta: i64,
        pool_free_after: usize,
    },
    /// A fault-plan action fired. `gpu` is the in-shard index (0 for
    /// shard-level faults); `factor_milli` carries the degrade factor in
    /// thousandths (1000 = full speed) for degrade events, 0 otherwise.
    Fault {
        kind: FaultKind,
        shard: usize,
        gpu: usize,
        factor_milli: u32,
    },
    /// A worker's service-time multiplier changed.
    Degrade { worker: usize, factor_milli: u32 },
    /// An SLO burn-rate alert changed state (see [`crate::slo`]): `slo`
    /// indexes the spec list the alert log was evaluated against, `fired`
    /// distinguishes fire from resolve, and `burn_milli` is the short-window
    /// burn rate in thousandths at the transition. Alerts are **post-run
    /// annotations** stamped on [`crate::slo::ALERT_LANE`] — engines never
    /// record them, so annotating a trace cannot change its registry.
    Alert {
        slo: usize,
        group: usize,
        fired: bool,
        burn_milli: u64,
    },
}

impl TraceEvent {
    /// The query id a lifecycle event refers to, if any.
    #[must_use]
    pub fn query(&self) -> Option<u64> {
        match *self {
            TraceEvent::Arrival { query, .. }
            | TraceEvent::Enqueue { query, .. }
            | TraceEvent::Stash { query, .. }
            | TraceEvent::ServiceStart { query, .. }
            | TraceEvent::ServiceAbort { query, .. }
            | TraceEvent::Requeue { query }
            | TraceEvent::Complete { query, .. } => Some(query),
            _ => None,
        }
    }

    /// Whether this event ends a query's lifecycle (complete) or admission
    /// path (shed).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, TraceEvent::Complete { .. } | TraceEvent::Shed { .. })
    }

    /// A short stable name for exporters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::RouteDecision { .. } => "route",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Stash { .. } => "stash",
            TraceEvent::ServiceStart { .. } => "service_start",
            TraceEvent::ServiceAbort { .. } => "service_abort",
            TraceEvent::Requeue { .. } => "requeue",
            TraceEvent::Complete { .. } => "complete",
            TraceEvent::ReconfigStep { .. } => "reconfig_step",
            TraceEvent::ReconfigDone { .. } => "reconfig_done",
            TraceEvent::Loan { .. } => "loan",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Degrade { .. } => "degrade",
            TraceEvent::Alert { .. } => "alert",
        }
    }
}
