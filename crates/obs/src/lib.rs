//! Deterministic observability for the PARIS/ELSA engine stack.
//!
//! Everything here is clocked on **simulation time**, never wall time, so a
//! trace is a pure function of the run: same seed, same trace, at any thread
//! count. The crate provides
//!
//! - a query **flight recorder** ([`TraceSink`], [`FlightRecorder`]): span
//!   events for the full query lifecycle (arrival → route/shed →
//!   queue wait → service start/abort/requeue → complete) plus annotations
//!   for re-plans, loans, faults, and degrades, buffered per shard lane and
//!   merged deterministically by `(time, key, lane, seq)` into a
//!   [`QueryTrace`];
//! - an **online telemetry plane** ([`ObsSink`], [`OnlineLane`],
//!   [`merge_online`]): the same hook stream folded into windowed aggregates
//!   *live* on the DES clock, O(1) memory per (series, window) with no trace
//!   retention;
//! - a **metric registry** ([`MetricRegistry`]): fixed-grid counters,
//!   gauges, and rates (per-shard outstanding, busy GPC fraction, pool GPUs
//!   loaned, shed rate, per-model SLA-violation rate). Two producers, one
//!   code path: [`MetricRegistry::from_trace`] replays a retained trace
//!   through the same [`OnlineLane`] fold the live plane uses, making it the
//!   oracle for **invariant 13** — online registry ≡ `from_trace` registry,
//!   byte for byte, on the same run at any thread count;
//! - an **SLO engine** ([`SloSpec`], [`evaluate_slos`]): declarative
//!   per-class objectives with multiwindow burn-rate alerting, producing a
//!   deterministic [`Alert`] log that can be stamped back onto the trace as
//!   annotations ([`alert_records`], [`QueryTrace::annotated`]);
//! - **causal tail attribution** ([`attribute_window`], [`attribute_alerts`],
//!   [`worst_window`]): splits a window's p99 latency excess into ranked
//!   causes (reconfig downtime from loans vs faults, fault/degrade exposure,
//!   queue growth, degrade inflation, noise) with zero residual, reusing the
//!   analyzer's exact integer accounting;
//! - **exporters** (Chrome `trace_event` JSON via [`ChromeTraceWriter`],
//!   JSONL via [`jsonl`], registry dumps via [`metrics_jsonl`] /
//!   [`metrics_csv`]) and an **analyzer** ([`analyze()`],
//!   [`check_conservation`]) whose latency breakdown sums to the measured
//!   end-to-end latency exactly, in integer nanoseconds.
//!
//! **Invariant 12 — zero observer effect.** Attaching a recorder (or the
//! online plane) must leave every report byte-identical to the untraced run:
//! hooks never touch RNG streams, event keys, or report state, and the
//! disabled path is a single `Option` test (no allocation, no branch into
//! recording code). The property suite and `bench_obs` enforce this.

pub mod analyze;
pub mod attribute;
pub mod event;
pub mod export;
pub mod online;
pub mod recorder;
pub mod registry;
pub mod slo;

pub use analyze::{analyze, check_conservation, ClassBreakdown, ConservationStats, TraceAnalysis};
pub use attribute::{
    attribute_alerts, attribute_window, worst_window, CauseRow, WindowAttribution,
};
pub use event::{FaultKind, TraceEvent};
pub use export::{
    chrome_trace_json, escape_json, jsonl, jsonl_line, metrics_csv, metrics_jsonl,
    write_alert_rows, write_query_trace, ChromeTraceWriter,
};
pub use online::{merge_online, ObsRequest, ObsSink, OnlineLane};
pub use recorder::{FlightRecorder, QueryTrace, TraceRecord, TraceSink, ANNOTATION_KEY};
pub use registry::{MetricRegistry, MetricSeries};
pub use slo::{alert_records, evaluate_slos, Alert, SloSpec, ALERT_LANE};
