//! Deterministic observability for the PARIS/ELSA engine stack.
//!
//! Everything here is clocked on **simulation time**, never wall time, so a
//! trace is a pure function of the run: same seed, same trace, at any thread
//! count. The crate provides
//!
//! - a query **flight recorder** ([`TraceSink`], [`FlightRecorder`]): span
//!   events for the full query lifecycle (arrival → route/shed →
//!   queue wait → service start/abort/requeue → complete) plus annotations
//!   for re-plans, loans, faults, and degrades, buffered per shard lane and
//!   merged deterministically by `(time, key, lane, seq)` into a
//!   [`QueryTrace`];
//! - a **metric registry** ([`MetricRegistry`]): fixed-grid counters,
//!   gauges, and rates (per-shard outstanding, busy GPC fraction, pool GPUs
//!   loaned, shed rate, per-model SLA-violation rate) computed *after* the
//!   run from the trace;
//! - **exporters** (Chrome `trace_event` JSON via [`ChromeTraceWriter`],
//!   JSONL via [`jsonl`]) and an **analyzer** ([`analyze`],
//!   [`check_conservation`]) whose latency breakdown sums to the measured
//!   end-to-end latency exactly, in integer nanoseconds.
//!
//! **Invariant 12 — zero observer effect.** Attaching a recorder must leave
//! every report byte-identical to the untraced run: hooks never touch RNG
//! streams, event keys, or report state, and the disabled path is a single
//! `Option` test (no allocation, no branch into recording code). The
//! property suite and `bench_obs` enforce this.

pub mod analyze;
pub mod event;
pub mod export;
pub mod recorder;
pub mod registry;

pub use analyze::{analyze, check_conservation, ClassBreakdown, ConservationStats, TraceAnalysis};
pub use event::{FaultKind, TraceEvent};
pub use export::{
    chrome_trace_json, escape_json, jsonl, jsonl_line, write_query_trace, ChromeTraceWriter,
};
pub use recorder::{FlightRecorder, QueryTrace, TraceRecord, TraceSink, ANNOTATION_KEY};
pub use registry::{MetricRegistry, MetricSeries};
