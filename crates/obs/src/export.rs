//! Trace exporters: Chrome `trace_event` JSON and JSONL.
//!
//! Both are hand-rolled writers (the workspace has no serde JSON writer, by
//! design) producing deterministic byte streams from a deterministic trace.
//! The Chrome format is the subset `chrome://tracing` / Perfetto load:
//! `{"traceEvents": [...]}` with `ph:"X"` complete slices and `ph:"i"`
//! instants, timestamps in **floating-point microseconds**.

use crate::event::TraceEvent;
use crate::recorder::{QueryTrace, TraceRecord};
use crate::registry::MetricRegistry;
use crate::slo::{Alert, SloSpec};
use std::fmt::Write as _;

/// Row id (`tid`) the reconfig-step slices render on, clear of worker rows.
pub const RECONFIG_TID: u32 = 900_000;
/// Row id fault instants render on.
pub const FAULT_TID: u32 = 900_001;
/// Row id admission events (sheds) render on.
pub const ADMISSION_TID: u32 = 900_002;
/// Row id SLO alert slices and instants render on.
pub const TELEMETRY_TID: u32 = 900_003;

/// Escapes `s` into a JSON string body (no surrounding quotes).
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental Chrome `trace_event` JSON builder. Event sources (the
/// query trace, a `Gantt`, …) append slices and instants; [`finish`]
/// closes the envelope.
///
/// [`finish`]: ChromeTraceWriter::finish
#[derive(Debug, Default)]
pub struct ChromeTraceWriter {
    buf: String,
    count: usize,
}

impl ChromeTraceWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceWriter {
            buf: String::from("{\"traceEvents\":[\n"),
            count: 0,
        }
    }

    /// Number of events appended so far.
    #[must_use]
    pub fn events(&self) -> usize {
        self.count
    }

    fn sep(&mut self) {
        if self.count > 0 {
            self.buf.push_str(",\n");
        }
        self.count += 1;
    }

    /// Appends a `ph:"X"` complete slice (`ts`/`dur` in microseconds).
    pub fn complete_slice(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
    ) {
        self.sep();
        let _ = write!(
            self.buf,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\"pid\":{pid},\"tid\":{tid}}}",
            escape_json(name),
            escape_json(cat),
        );
    }

    /// Appends a `ph:"i"` instant event (thread scope).
    pub fn instant(&mut self, name: &str, cat: &str, pid: u32, tid: u32, ts_us: f64) {
        self.sep();
        let _ = write!(
            self.buf,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{tid}}}",
            escape_json(name),
            escape_json(cat),
        );
    }

    /// Closes the envelope and returns the JSON document.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n]}\n");
        self.buf
    }
}

/// Appends a merged trace's events to `w`: service executions as slices on
/// `(pid = lane, tid = worker)` rows, reconfig steps as slices on a
/// dedicated row, and sheds/faults/loans/degrades as instants.
pub fn write_query_trace(w: &mut ChromeTraceWriter, trace: &QueryTrace) {
    for r in trace.records() {
        let ts = r.at.as_micros_f64();
        match r.event {
            TraceEvent::ServiceStart {
                query,
                worker,
                actual_ns,
                ..
            } => {
                w.complete_slice(
                    &format!("q{query}"),
                    "query",
                    r.lane,
                    worker as u32,
                    ts,
                    actual_ns as f64 / 1_000.0,
                );
            }
            TraceEvent::ReconfigStep { step, downtime_ns } => {
                w.complete_slice(
                    &format!("reconfig step {step}"),
                    "reconfig",
                    r.lane,
                    RECONFIG_TID,
                    ts,
                    downtime_ns as f64 / 1_000.0,
                );
            }
            TraceEvent::Shed { model, shard } => {
                w.instant(
                    &format!("shed model{model}"),
                    "admission",
                    shard as u32,
                    ADMISSION_TID,
                    ts,
                );
            }
            TraceEvent::Fault {
                kind, shard, gpu, ..
            } => {
                w.instant(
                    &format!("{kind:?} gpu{gpu}"),
                    "fault",
                    shard as u32,
                    FAULT_TID,
                    ts,
                );
            }
            TraceEvent::Loan {
                shard, gpus_delta, ..
            } => {
                w.instant(
                    &format!("loan {gpus_delta:+}"),
                    "loan",
                    shard as u32,
                    FAULT_TID,
                    ts,
                );
            }
            TraceEvent::Degrade {
                worker,
                factor_milli,
            } => {
                w.instant(
                    &format!("degrade ×{:.2}", f64::from(factor_milli) / 1_000.0),
                    "fault",
                    r.lane,
                    worker as u32,
                    ts,
                );
            }
            TraceEvent::Alert {
                slo, group, fired, ..
            } => {
                let verb = if fired { "fire" } else { "resolve" };
                w.instant(
                    &format!("slo{slo} {verb}"),
                    "slo",
                    group as u32,
                    TELEMETRY_TID,
                    ts,
                );
            }
            _ => {}
        }
    }
}

/// Appends one slice per fired alert to `w`: the slice runs from the firing
/// bin's start to the resolving bin's start (or `horizon_ns` while still
/// firing), on `(pid = query class, tid = TELEMETRY_TID)` rows so alert
/// windows line up visually with the class's query slices.
pub fn write_alert_rows(
    w: &mut ChromeTraceWriter,
    alerts: &[Alert],
    specs: &[SloSpec],
    window_ns: u64,
    horizon_ns: u64,
) {
    for a in alerts {
        let start_ns = a.fired_bin as u64 * window_ns;
        let end_ns = match a.resolved_bin {
            Some(bin) => bin as u64 * window_ns,
            None => horizon_ns.max(start_ns),
        };
        let name = match specs.get(a.slo) {
            Some(spec) => format!("ALERT {} burn {:.1}×", spec.name, a.burn_short),
            None => format!("ALERT slo{} burn {:.1}×", a.slo, a.burn_short),
        };
        w.complete_slice(
            &name,
            "slo",
            a.group as u32,
            TELEMETRY_TID,
            start_ns as f64 / 1_000.0,
            (end_ns - start_ns) as f64 / 1_000.0,
        );
    }
}

/// Renders a full standalone Chrome trace document from a merged trace.
#[must_use]
pub fn chrome_trace_json(trace: &QueryTrace) -> String {
    let mut w = ChromeTraceWriter::new();
    write_query_trace(&mut w, trace);
    w.finish()
}

fn jsonl_fields(out: &mut String, event: &TraceEvent) {
    match *event {
        TraceEvent::Arrival {
            query,
            group,
            batch,
            dispatched_ns,
            sla_ns,
        } => {
            let _ = write!(
                out,
                "\"query\":{query},\"group\":{group},\"batch\":{batch},\"dispatched_ns\":{dispatched_ns},\"sla_ns\":{sla_ns}"
            );
        }
        TraceEvent::RouteDecision {
            model,
            shard,
            pinned,
        } => {
            let _ = write!(
                out,
                "\"model\":{model},\"shard\":{shard},\"pinned\":{pinned}"
            );
        }
        TraceEvent::Shed { model, shard } => {
            let _ = write!(out, "\"model\":{model},\"shard\":{shard}");
        }
        TraceEvent::Enqueue { query, group } | TraceEvent::Stash { query, group } => {
            let _ = write!(out, "\"query\":{query},\"group\":{group}");
        }
        TraceEvent::ServiceStart {
            query,
            worker,
            gpcs,
            clean_ns,
            base_ns,
            actual_ns,
        } => {
            let _ = write!(
                out,
                "\"query\":{query},\"worker\":{worker},\"gpcs\":{gpcs},\"clean_ns\":{clean_ns},\"base_ns\":{base_ns},\"actual_ns\":{actual_ns}"
            );
        }
        TraceEvent::ServiceAbort { query, worker } => {
            let _ = write!(out, "\"query\":{query},\"worker\":{worker}");
        }
        TraceEvent::Requeue { query } => {
            let _ = write!(out, "\"query\":{query}");
        }
        TraceEvent::Complete {
            query,
            worker,
            latency_ns,
        } => {
            let _ = write!(
                out,
                "\"query\":{query},\"worker\":{worker},\"latency_ns\":{latency_ns}"
            );
        }
        TraceEvent::ReconfigStep { step, downtime_ns } => {
            let _ = write!(out, "\"step\":{step},\"downtime_ns\":{downtime_ns}");
        }
        TraceEvent::ReconfigDone { steps, aborted } => {
            let _ = write!(out, "\"steps\":{steps},\"aborted\":{aborted}");
        }
        TraceEvent::Loan {
            shard,
            gpus_delta,
            pool_free_after,
        } => {
            let _ = write!(
                out,
                "\"shard\":{shard},\"gpus_delta\":{gpus_delta},\"pool_free_after\":{pool_free_after}"
            );
        }
        TraceEvent::Fault {
            kind,
            shard,
            gpu,
            factor_milli,
        } => {
            let _ = write!(
                out,
                "\"fault\":\"{kind:?}\",\"shard\":{shard},\"gpu\":{gpu},\"factor_milli\":{factor_milli}"
            );
        }
        TraceEvent::Degrade {
            worker,
            factor_milli,
        } => {
            let _ = write!(out, "\"worker\":{worker},\"factor_milli\":{factor_milli}");
        }
        TraceEvent::Alert {
            slo,
            group,
            fired,
            burn_milli,
        } => {
            let _ = write!(
                out,
                "\"slo\":{slo},\"group\":{group},\"fired\":{fired},\"burn_milli\":{burn_milli}"
            );
        }
    }
}

/// Renders one trace record as a single JSON line.
#[must_use]
pub fn jsonl_line(r: &TraceRecord) -> String {
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"at_ns\":{},\"key\":{},\"lane\":{},\"seq\":{},\"kind\":\"{}\",",
        r.at.as_nanos(),
        r.key,
        r.lane,
        r.seq,
        r.event.kind(),
    );
    jsonl_fields(&mut out, &r.event);
    out.push('}');
    out
}

/// Renders the whole trace as JSONL (one record per line, global order).
#[must_use]
pub fn jsonl(trace: &QueryTrace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        out.push_str(&jsonl_line(r));
        out.push('\n');
    }
    out
}

/// Dumps a registry as JSONL: one line per series, values in bin order.
/// Floats render via Rust's shortest-round-trip `Display`, so the dump is
/// deterministic and parses back to the exact same values.
#[must_use]
pub fn metrics_jsonl(registry: &MetricRegistry) -> String {
    let mut out = String::new();
    for s in registry.series() {
        let _ = write!(
            out,
            "{{\"series\":\"{}\",\"window_ns\":{},\"values\":[",
            escape_json(&s.name),
            registry.window_ns(),
        );
        for (i, v) in s.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Dumps a registry as long-format CSV: one `series,bin,t_ns,value` row per
/// (series, bin), with a header line.
#[must_use]
pub fn metrics_csv(registry: &MetricRegistry) -> String {
    let mut out = String::from("series,bin,t_ns,value\n");
    for s in registry.series() {
        for (bin, v) in s.values.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{bin},{},{v}",
                s.name,
                bin as u64 * registry.window_ns()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, TraceSink};
    use des_engine::SimTime;

    #[test]
    fn chrome_envelope_is_well_formed() {
        let mut w = ChromeTraceWriter::new();
        w.complete_slice("q\"1\"", "query", 0, 3, 1.5, 2.25);
        w.instant("shed", "admission", 1, ADMISSION_TID, 4.0);
        let doc = w.finish();
        assert!(doc.starts_with("{\"traceEvents\":[\n"));
        assert!(doc.trim_end().ends_with("]}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("q\\\"1\\\""), "names are escaped: {doc}");
        // Exactly one separator between the two events.
        assert_eq!(doc.matches("},\n{").count(), 1);
    }

    #[test]
    fn jsonl_round_trips_field_names() {
        let mut r = FlightRecorder::new(1);
        r.record(
            SimTime::from_nanos(42),
            7,
            TraceEvent::Complete {
                query: 7,
                worker: 2,
                latency_ns: 99,
            },
        );
        let trace = QueryTrace::merge([r]);
        let line = jsonl(&trace);
        assert_eq!(
            line,
            "{\"at_ns\":42,\"key\":7,\"lane\":1,\"seq\":0,\"kind\":\"complete\",\"query\":7,\"worker\":2,\"latency_ns\":99}\n"
        );
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn alert_event_renders_in_jsonl_and_chrome() {
        let mut r = FlightRecorder::new(crate::slo::ALERT_LANE);
        r.record(
            SimTime::from_nanos(2_000),
            crate::recorder::ANNOTATION_KEY,
            TraceEvent::Alert {
                slo: 0,
                group: 1,
                fired: true,
                burn_milli: 2_500,
            },
        );
        let trace = QueryTrace::merge([r]);
        let line = jsonl(&trace);
        assert!(
            line.contains(
                "\"kind\":\"alert\",\"slo\":0,\"group\":1,\"fired\":true,\"burn_milli\":2500"
            ),
            "{line}"
        );
        let doc = chrome_trace_json(&trace);
        assert!(doc.contains("slo0 fire"), "{doc}");
        assert!(doc.contains(&format!("\"tid\":{TELEMETRY_TID}")), "{doc}");
    }

    #[test]
    fn alert_rows_span_fire_to_resolve_or_horizon() {
        let alerts = vec![
            Alert {
                slo: 0,
                group: 0,
                fired_bin: 2,
                resolved_bin: Some(5),
                worst_bin: 3,
                burn_short: 2.5,
                burn_long: 1.2,
            },
            Alert {
                slo: 0,
                group: 0,
                fired_bin: 8,
                resolved_bin: None,
                worst_bin: 8,
                burn_short: 4.0,
                burn_long: 2.0,
            },
        ];
        let specs = [crate::slo::SloSpec::new("premium-avail", 0, 0.9)];
        let mut w = ChromeTraceWriter::new();
        write_alert_rows(&mut w, &alerts, &specs, 1_000, 10_000);
        assert_eq!(w.events(), 2);
        let doc = w.finish();
        // Bin width 1 µs: fired at bin 2 → ts 2 µs, resolved bin 5 → 3 µs.
        assert!(
            doc.contains("\"name\":\"ALERT premium-avail burn 2.5×\""),
            "{doc}"
        );
        assert!(doc.contains("\"ts\":2,\"dur\":3"), "{doc}");
        // Unresolved: runs to the 10 µs horizon.
        assert!(doc.contains("\"ts\":8,\"dur\":2"), "{doc}");
        assert!(doc.contains(&format!("\"tid\":{TELEMETRY_TID}")));
    }

    #[test]
    fn metrics_dumps_are_deterministic_and_parse_shaped() {
        let reg = MetricRegistry::from_parts(
            1_000,
            3,
            vec![
                crate::registry::MetricSeries {
                    name: "shard0/outstanding".to_string(),
                    values: vec![2.0, 0.5, 0.0],
                },
                crate::registry::MetricSeries {
                    name: "model1/sla_violation_rate".to_string(),
                    values: vec![0.25, 0.0, 1.0],
                },
            ],
        );
        let jl = metrics_jsonl(&reg);
        assert_eq!(
            jl,
            "{\"series\":\"shard0/outstanding\",\"window_ns\":1000,\"values\":[2,0.5,0]}\n\
             {\"series\":\"model1/sla_violation_rate\",\"window_ns\":1000,\"values\":[0.25,0,1]}\n"
        );
        let csv = metrics_csv(&reg);
        assert!(csv.starts_with("series,bin,t_ns,value\n"));
        assert!(csv.contains("shard0/outstanding,1,1000,0.5\n"), "{csv}");
        assert!(
            csv.contains("model1/sla_violation_rate,2,2000,1\n"),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 1 + 2 * 3);
    }
}
