//! # dnn-zoo — layer-level DNN workload descriptions
//!
//! The PARIS+ELSA reproduction needs to know, for every benchmark network,
//! how much compute, memory traffic and parallelism each kernel of one
//! inference contributes — that is what the GPU performance model consumes
//! to produce the profiling tables the algorithms run on.
//!
//! This crate provides:
//!
//! * [`Layer`] — a single operator with per-sample FLOPs, parameter bytes,
//!   activation bytes and a [`WorkShape`] describing its tile parallelism,
//! * [`ModelGraph`] — a network as an ordered list of layers,
//! * [`zoo`] — faithful layer-by-layer reconstructions of the paper's five
//!   benchmarks: ShuffleNetV2, MobileNetV1, ResNet-50, BERT-base and
//!   Conformer-M, selectable through [`ModelKind`].
//!
//! ```
//! use dnn_zoo::ModelKind;
//!
//! let bert = ModelKind::BertBase.build();
//! println!("{bert}");
//! // Weight traffic is amortized over the batch, so arithmetic intensity
//! // grows with batch size:
//! assert!(bert.arithmetic_intensity(16) > bert.arithmetic_intensity(1));
//! ```

mod graph;
mod layer;
pub mod zoo;

pub use graph::ModelGraph;
pub use layer::{ComputeClass, Layer, LayerKind, Precision, WorkShape};
pub use zoo::{ComputeIntensity, ModelKind, ParseModelKindError};
