//! Layer-level intermediate representation of DNN inference work.
//!
//! Each [`Layer`] records the *per-sample* compute (FLOPs), memory traffic
//! (parameter bytes + activation bytes) and exploitable parallelism
//! ([`WorkShape`]) of one operator. A GPU performance model can combine these
//! with device constants to estimate latency and utilization at any batch
//! size — which is exactly the information the PARIS profiling step needs.

use std::fmt;

/// Bytes per element for the numeric precision used during inference.
///
/// The reproduction models fp16 inference throughout (the common deployment
/// precision on Ampere-class GPUs), but the IR carries the precision
/// explicitly so mixed-precision studies remain possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Precision {
    /// 16-bit floating point (2 bytes/element).
    #[default]
    Fp16,
    /// 32-bit floating point (4 bytes/element).
    Fp32,
}

impl Precision {
    /// Size of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> f64 {
        match self {
            Precision::Fp16 => 2.0,
            Precision::Fp32 => 4.0,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp16 => f.write_str("fp16"),
            Precision::Fp32 => f.write_str("fp32"),
        }
    }
}

/// Which execution pipe of an SM a layer predominantly uses.
///
/// GEMM-shaped work (convolutions lowered to implicit GEMM, linear layers,
/// attention batched matmuls) runs on the tensor cores; everything else
/// (depthwise convolutions, normalization, activation functions, pooling,
/// data movement) runs on the ordinary CUDA cores at far lower peak FLOP/s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComputeClass {
    /// Tensor-core (matrix-multiply-accumulate) pipe.
    TensorCore,
    /// Scalar/vector CUDA-core pipe.
    CudaCore,
}

impl fmt::Display for ComputeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeClass::TensorCore => f.write_str("tensor-core"),
            ComputeClass::CudaCore => f.write_str("cuda-core"),
        }
    }
}

/// The parallelism a layer exposes to the thread-block scheduler.
///
/// A kernel launch is modelled as a grid of independent tiles over a
/// GEMM-like iteration space. The *row* dimension grows with the batch size
/// (more samples → more rows → more tiles), the *column* dimension is fixed
/// by the layer, and `groups` counts fully independent sub-problems that each
/// get their own tiles (attention heads, depthwise channels).
///
/// The GPU model turns this into a thread-block count:
/// `tiles(b) = ceil(b·rows_per_sample / tile_rows) · ceil(cols / tile_cols) · groups`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkShape {
    /// Rows of the iteration space contributed by each sample in the batch.
    pub rows_per_sample: f64,
    /// Fixed column extent of the iteration space.
    pub cols: f64,
    /// Independent groups, each tiled separately (≥ 1).
    pub groups: f64,
}

impl WorkShape {
    /// A GEMM-like shape with `rows` per sample and `cols` outputs.
    #[must_use]
    pub fn gemm(rows_per_sample: f64, cols: f64) -> Self {
        WorkShape {
            rows_per_sample,
            cols,
            groups: 1.0,
        }
    }

    /// A grouped shape (attention heads, depthwise channels).
    #[must_use]
    pub fn grouped(rows_per_sample: f64, cols: f64, groups: f64) -> Self {
        WorkShape {
            rows_per_sample,
            cols,
            groups,
        }
    }

    /// An elementwise shape over `elements` values per sample.
    #[must_use]
    pub fn elementwise(elements: f64) -> Self {
        WorkShape {
            rows_per_sample: elements,
            cols: 1.0,
            groups: 1.0,
        }
    }
}

/// Operator category, retained for reporting and model introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum LayerKind {
    /// Dense 2-D convolution (lowered to implicit GEMM).
    Conv2d,
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv,
    /// Fully connected / projection layer.
    Linear,
    /// Batched attention matmul (Q·Kᵀ or scores·V).
    AttentionMatmul,
    /// Softmax over attention scores or logits.
    Softmax,
    /// Batch/layer normalization.
    Norm,
    /// Elementwise activation (ReLU, GELU, swish, GLU...).
    Activation,
    /// Spatial or global pooling.
    Pool,
    /// ShuffleNet channel shuffle (pure data movement).
    ChannelShuffle,
    /// Embedding table lookup (pure memory traffic).
    Embedding,
    /// Elementwise residual addition.
    Residual,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::DepthwiseConv => "depthwise-conv",
            LayerKind::Linear => "linear",
            LayerKind::AttentionMatmul => "attention-matmul",
            LayerKind::Softmax => "softmax",
            LayerKind::Norm => "norm",
            LayerKind::Activation => "activation",
            LayerKind::Pool => "pool",
            LayerKind::ChannelShuffle => "channel-shuffle",
            LayerKind::Embedding => "embedding",
            LayerKind::Residual => "residual",
        };
        f.write_str(s)
    }
}

/// One operator of a DNN, with its per-sample resource footprint.
///
/// Constructed through shape-aware constructors such as [`Layer::conv2d`] or
/// [`Layer::linear`], which derive FLOPs, parameter bytes, activation bytes
/// and the [`WorkShape`] from the layer's dimensions.
///
/// # Examples
///
/// ```
/// use dnn_zoo::Layer;
///
/// // The first layer of ResNet-50: 7×7/2 convolution, 3→64 channels,
/// // producing a 112×112 output map.
/// let stem = Layer::conv2d("conv1", 3, 64, 7, 2, 112, 112);
/// assert_eq!(stem.name(), "conv1");
/// // 2 · (112·112) · 64 · (7·7·3) FLOPs per sample
/// assert!((stem.flops_per_sample() - 2.0 * 12544.0 * 64.0 * 147.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layer {
    name: String,
    kind: LayerKind,
    class: ComputeClass,
    precision: Precision,
    flops_per_sample: f64,
    weight_bytes: f64,
    io_bytes_per_sample: f64,
    work: WorkShape,
}

impl Layer {
    /// Builds a layer from raw footprint numbers.
    ///
    /// Prefer the shape-aware constructors; this exists for custom operators
    /// and for tests.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_raw(
        name: impl Into<String>,
        kind: LayerKind,
        class: ComputeClass,
        flops_per_sample: f64,
        weight_bytes: f64,
        io_bytes_per_sample: f64,
        work: WorkShape,
    ) -> Self {
        Layer {
            name: name.into(),
            kind,
            class,
            precision: Precision::Fp16,
            flops_per_sample,
            weight_bytes,
            io_bytes_per_sample,
            work,
        }
    }

    /// Dense 2-D convolution with a `kernel`×`kernel` filter and the given
    /// stride, producing an `out_h`×`out_w` map of `out_c` channels.
    ///
    /// Modelled as an implicit GEMM of shape
    /// `M = out_h·out_w`, `N = out_c`, `K = kernel²·in_c`.
    #[must_use]
    pub fn conv2d(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        out_h: usize,
        out_w: usize,
    ) -> Self {
        let eb = Precision::Fp16.bytes();
        let m = (out_h * out_w) as f64;
        let n = out_c as f64;
        let k = (kernel * kernel * in_c) as f64;
        let in_elems = (in_c * out_h * stride * out_w * stride) as f64;
        let out_elems = m * n;
        Layer {
            name: name.into(),
            kind: LayerKind::Conv2d,
            class: ComputeClass::TensorCore,
            precision: Precision::Fp16,
            flops_per_sample: 2.0 * m * n * k,
            weight_bytes: k * n * eb,
            io_bytes_per_sample: (in_elems + out_elems) * eb,
            work: WorkShape::gemm(m, n),
        }
    }

    /// 1×1 (pointwise) convolution — a special case of [`Layer::conv2d`].
    #[must_use]
    pub fn pointwise_conv(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        out_h: usize,
        out_w: usize,
    ) -> Self {
        Self::conv2d(name, in_c, out_c, 1, 1, out_h, out_w)
    }

    /// Depthwise convolution: one `kernel`×`kernel` filter per channel.
    ///
    /// Runs on the CUDA cores (its arithmetic intensity is far too low for
    /// tensor-core utilization); every channel is an independent group.
    #[must_use]
    pub fn depthwise_conv(
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        stride: usize,
        out_h: usize,
        out_w: usize,
    ) -> Self {
        let eb = Precision::Fp16.bytes();
        let spatial = (out_h * out_w) as f64;
        let c = channels as f64;
        let taps = (kernel * kernel) as f64;
        let in_elems = c * spatial * (stride * stride) as f64;
        Layer {
            name: name.into(),
            kind: LayerKind::DepthwiseConv,
            class: ComputeClass::CudaCore,
            precision: Precision::Fp16,
            flops_per_sample: 2.0 * spatial * c * taps,
            weight_bytes: c * taps * eb,
            io_bytes_per_sample: (in_elems + c * spatial) * eb,
            work: WorkShape::grouped(spatial, 1.0, c),
        }
    }

    /// 1-D depthwise convolution over a sequence of `length` steps (the
    /// Conformer convolution module).
    #[must_use]
    pub fn depthwise_conv1d(
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        length: usize,
    ) -> Self {
        let eb = Precision::Fp16.bytes();
        let c = channels as f64;
        let len = length as f64;
        let taps = kernel as f64;
        Layer {
            name: name.into(),
            kind: LayerKind::DepthwiseConv,
            class: ComputeClass::CudaCore,
            precision: Precision::Fp16,
            flops_per_sample: 2.0 * len * c * taps,
            weight_bytes: c * taps * eb,
            io_bytes_per_sample: 2.0 * c * len * eb,
            work: WorkShape::grouped(len, 1.0, c),
        }
    }

    /// Fully connected layer applied to `tokens` positions per sample
    /// (use `tokens = 1` for classifier heads).
    #[must_use]
    pub fn linear(
        name: impl Into<String>,
        tokens: usize,
        in_features: usize,
        out_features: usize,
    ) -> Self {
        let eb = Precision::Fp16.bytes();
        let m = tokens as f64;
        let n = out_features as f64;
        let k = in_features as f64;
        Layer {
            name: name.into(),
            kind: LayerKind::Linear,
            class: ComputeClass::TensorCore,
            precision: Precision::Fp16,
            flops_per_sample: 2.0 * m * n * k,
            weight_bytes: k * n * eb,
            io_bytes_per_sample: (m * k + m * n) * eb,
            work: WorkShape::gemm(m, n),
        }
    }

    /// One of the two batched attention matmuls (Q·Kᵀ or scores·V) across
    /// `heads` heads of dimension `head_dim` over a sequence of length `seq`.
    #[must_use]
    pub fn attention_matmul(
        name: impl Into<String>,
        heads: usize,
        seq: usize,
        head_dim: usize,
    ) -> Self {
        let eb = Precision::Fp16.bytes();
        let h = heads as f64;
        let s = seq as f64;
        let d = head_dim as f64;
        // Per head: (s × d) · (d × s) → s² accumulating over d (or the
        // symmetric scores·V product — identical footprint).
        Layer {
            name: name.into(),
            kind: LayerKind::AttentionMatmul,
            class: ComputeClass::TensorCore,
            precision: Precision::Fp16,
            flops_per_sample: 2.0 * h * s * s * d,
            weight_bytes: 0.0,
            io_bytes_per_sample: h * (2.0 * s * d + s * s) * eb,
            work: WorkShape::grouped(s, s, h),
        }
    }

    /// Softmax over `elements` values per sample.
    #[must_use]
    pub fn softmax(name: impl Into<String>, elements: usize) -> Self {
        Self::elementwise_layer(name, LayerKind::Softmax, elements, 8.0)
    }

    /// Layer/batch normalization over `elements` values per sample.
    #[must_use]
    pub fn norm(name: impl Into<String>, elements: usize) -> Self {
        Self::elementwise_layer(name, LayerKind::Norm, elements, 6.0)
    }

    /// Elementwise activation over `elements` values per sample.
    #[must_use]
    pub fn activation(name: impl Into<String>, elements: usize) -> Self {
        Self::elementwise_layer(name, LayerKind::Activation, elements, 4.0)
    }

    /// Residual addition over `elements` values per sample.
    #[must_use]
    pub fn residual(name: impl Into<String>, elements: usize) -> Self {
        Self::elementwise_layer(name, LayerKind::Residual, elements, 1.0)
    }

    /// Pooling that reduces `in_elements` to `out_elements` per sample.
    #[must_use]
    pub fn pool(name: impl Into<String>, in_elements: usize, out_elements: usize) -> Self {
        let eb = Precision::Fp16.bytes();
        let inputs = in_elements as f64;
        let outputs = out_elements as f64;
        Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            class: ComputeClass::CudaCore,
            precision: Precision::Fp16,
            flops_per_sample: inputs,
            weight_bytes: 0.0,
            io_bytes_per_sample: (inputs + outputs) * eb,
            work: WorkShape::elementwise(inputs),
        }
    }

    /// ShuffleNet channel shuffle: pure data movement of `elements` values.
    #[must_use]
    pub fn channel_shuffle(name: impl Into<String>, elements: usize) -> Self {
        let eb = Precision::Fp16.bytes();
        let e = elements as f64;
        Layer {
            name: name.into(),
            kind: LayerKind::ChannelShuffle,
            class: ComputeClass::CudaCore,
            precision: Precision::Fp16,
            flops_per_sample: 0.0,
            weight_bytes: 0.0,
            io_bytes_per_sample: 2.0 * e * eb,
            work: WorkShape::elementwise(e),
        }
    }

    /// Embedding lookup of `tokens` rows of width `dim` from a table with
    /// `vocab` entries (the table itself stays resident; traffic counts the
    /// gathered rows).
    #[must_use]
    pub fn embedding(name: impl Into<String>, tokens: usize, dim: usize, vocab: usize) -> Self {
        let eb = Precision::Fp16.bytes();
        let rows = tokens as f64;
        let width = dim as f64;
        let _ = vocab; // table residency is not modelled; kept for the record
        Layer {
            name: name.into(),
            kind: LayerKind::Embedding,
            class: ComputeClass::CudaCore,
            precision: Precision::Fp16,
            flops_per_sample: 0.0,
            weight_bytes: 0.0,
            io_bytes_per_sample: 2.0 * rows * width * eb,
            work: WorkShape::elementwise(rows * width),
        }
    }

    fn elementwise_layer(
        name: impl Into<String>,
        kind: LayerKind,
        elements: usize,
        flops_per_element: f64,
    ) -> Self {
        let eb = Precision::Fp16.bytes();
        let e = elements as f64;
        Layer {
            name: name.into(),
            kind,
            class: ComputeClass::CudaCore,
            precision: Precision::Fp16,
            flops_per_sample: e * flops_per_element,
            weight_bytes: 0.0,
            io_bytes_per_sample: 2.0 * e * eb,
            work: WorkShape::elementwise(e),
        }
    }

    /// The layer's (non-unique) name, e.g. `"layer3.2.conv2"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operator category.
    #[must_use]
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Which SM pipe the layer runs on.
    #[must_use]
    pub fn class(&self) -> ComputeClass {
        self.class
    }

    /// Numeric precision of the layer's operands.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Floating-point operations per input sample.
    #[must_use]
    pub fn flops_per_sample(&self) -> f64 {
        self.flops_per_sample
    }

    /// Parameter bytes read once per kernel launch (amortized over the
    /// batch — the key reason utilization grows with batch size).
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        self.weight_bytes
    }

    /// Activation bytes (input + output) moved per sample.
    #[must_use]
    pub fn io_bytes_per_sample(&self) -> f64 {
        self.io_bytes_per_sample
    }

    /// The parallelism this layer exposes.
    #[must_use]
    pub fn work(&self) -> WorkShape {
        self.work
    }

    /// Total DRAM traffic for a batch of `b` samples, in bytes.
    #[must_use]
    pub fn bytes_for_batch(&self, b: usize) -> f64 {
        self.weight_bytes + self.io_bytes_per_sample * b as f64
    }

    /// Total FLOPs for a batch of `b` samples.
    #[must_use]
    pub fn flops_for_batch(&self, b: usize) -> f64 {
        self.flops_per_sample * b as f64
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.2} MFLOPs/sample",
            self.name,
            self.kind,
            self.flops_per_sample / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_flops_match_formula() {
        // 3×3/1 conv, 64→64 channels, 56×56 output.
        let l = Layer::conv2d("c", 64, 64, 3, 1, 56, 56);
        let expect = 2.0 * (56.0 * 56.0) * 64.0 * (9.0 * 64.0);
        assert!((l.flops_per_sample() - expect).abs() < 1.0);
        assert_eq!(l.class(), ComputeClass::TensorCore);
        assert_eq!(l.kind(), LayerKind::Conv2d);
    }

    #[test]
    fn conv2d_weights_are_k_times_n() {
        let l = Layer::conv2d("c", 64, 128, 3, 1, 28, 28);
        assert!((l.weight_bytes() - (9.0 * 64.0) * 128.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn pointwise_is_conv_with_unit_kernel() {
        let pw = Layer::pointwise_conv("pw", 32, 64, 112, 112);
        let cv = Layer::conv2d("cv", 32, 64, 1, 1, 112, 112);
        assert_eq!(pw.flops_per_sample(), cv.flops_per_sample());
        assert_eq!(pw.weight_bytes(), cv.weight_bytes());
    }

    #[test]
    fn depthwise_runs_on_cuda_cores_with_channel_groups() {
        let l = Layer::depthwise_conv("dw", 512, 3, 1, 14, 14);
        assert_eq!(l.class(), ComputeClass::CudaCore);
        assert!((l.work().groups - 512.0).abs() < f64::EPSILON);
        let expect = 2.0 * (14.0 * 14.0) * 512.0 * 9.0;
        assert!((l.flops_per_sample() - expect).abs() < 1.0);
    }

    #[test]
    fn linear_footprint() {
        let l = Layer::linear("fc", 128, 768, 3072);
        let expect = 2.0 * 128.0 * 3072.0 * 768.0;
        assert!((l.flops_per_sample() - expect).abs() < 1.0);
        assert!((l.weight_bytes() - 768.0 * 3072.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn attention_has_no_weights_and_head_groups() {
        let l = Layer::attention_matmul("qk", 12, 128, 64);
        assert_eq!(l.weight_bytes(), 0.0);
        assert!((l.work().groups - 12.0).abs() < f64::EPSILON);
        let expect = 2.0 * 12.0 * 128.0 * 128.0 * 64.0;
        assert!((l.flops_per_sample() - expect).abs() < 1.0);
    }

    #[test]
    fn batch_scales_io_but_not_weights() {
        let l = Layer::conv2d("c", 64, 64, 3, 1, 56, 56);
        let b1 = l.bytes_for_batch(1);
        let b8 = l.bytes_for_batch(8);
        assert!((b8 - b1 - 7.0 * l.io_bytes_per_sample()).abs() < 1e-6);
        assert!((l.flops_for_batch(8) - 8.0 * l.flops_per_sample()).abs() < 1.0);
    }

    #[test]
    fn elementwise_layers_are_memory_shaped() {
        for l in [
            Layer::softmax("s", 1000),
            Layer::norm("n", 1000),
            Layer::activation("a", 1000),
            Layer::residual("r", 1000),
            Layer::channel_shuffle("cs", 1000),
        ] {
            assert_eq!(l.class(), ComputeClass::CudaCore);
            assert_eq!(l.weight_bytes(), 0.0);
            assert!(l.io_bytes_per_sample() > 0.0);
        }
    }

    #[test]
    fn display_mentions_name_and_kind() {
        let l = Layer::linear("classifier", 1, 2048, 1000);
        let s = l.to_string();
        assert!(s.contains("classifier") && s.contains("linear"));
    }

    #[test]
    fn work_shape_constructors() {
        let g = WorkShape::gemm(100.0, 64.0);
        assert_eq!(g.groups, 1.0);
        let h = WorkShape::grouped(128.0, 128.0, 12.0);
        assert_eq!(h.groups, 12.0);
        let e = WorkShape::elementwise(4096.0);
        assert_eq!((e.rows_per_sample, e.cols), (4096.0, 1.0));
    }
}
