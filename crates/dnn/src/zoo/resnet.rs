//! ResNet-50 at 224×224 input (He et al., 2015; torchvision weights
//! `Training and Investigating Residual Nets` — the paper's reference [42]).

use crate::graph::ModelGraph;
use crate::layer::Layer;

/// Stage description: `(bottleneck mid channels, output channels, number of
/// blocks, output spatial size)`. The first block of stages 2–4 strides by 2.
const STAGES: [(usize, usize, usize, usize); 4] = [
    (64, 256, 3, 56),
    (128, 512, 4, 28),
    (256, 1024, 6, 14),
    (512, 2048, 3, 7),
];

/// Appends one bottleneck block (`1×1 reduce → 3×3 → 1×1 expand` plus the
/// residual connection, with a projection shortcut when shape changes).
fn push_bottleneck(
    g: &mut ModelGraph,
    name: &str,
    in_c: usize,
    mid_c: usize,
    out_c: usize,
    stride: usize,
    out_spatial: usize,
) {
    let s = out_spatial;
    g.push(Layer::pointwise_conv(
        format!("{name}.conv1"),
        in_c,
        mid_c,
        s * stride,
        s * stride,
    ));
    g.push(Layer::activation(
        format!("{name}.relu1"),
        mid_c * s * stride * s * stride,
    ));
    g.push(Layer::conv2d(
        format!("{name}.conv2"),
        mid_c,
        mid_c,
        3,
        stride,
        s,
        s,
    ));
    g.push(Layer::activation(format!("{name}.relu2"), mid_c * s * s));
    g.push(Layer::pointwise_conv(
        format!("{name}.conv3"),
        mid_c,
        out_c,
        s,
        s,
    ));
    if in_c != out_c || stride != 1 {
        g.push(Layer::conv2d(
            format!("{name}.downsample"),
            in_c,
            out_c,
            1,
            stride,
            s,
            s,
        ));
    }
    g.push(Layer::residual(format!("{name}.add"), out_c * s * s));
    g.push(Layer::activation(format!("{name}.relu3"), out_c * s * s));
}

/// Builds ResNet-50, ≈3.8–4.1 GMACs per sample.
///
/// # Examples
///
/// ```
/// let g = dnn_zoo::zoo::resnet50();
/// let gmacs = g.flops_per_sample() / 2.0 / 1e9;
/// assert!((3.5..4.5).contains(&gmacs));
/// ```
#[must_use]
pub fn resnet50() -> ModelGraph {
    let mut g = ModelGraph::new("resnet50");

    g.push(Layer::conv2d("conv1", 3, 64, 7, 2, 112, 112));
    g.push(Layer::activation("conv1.relu", 64 * 112 * 112));
    g.push(Layer::pool("maxpool", 64 * 112 * 112, 64 * 56 * 56));

    let mut in_c = 64;
    for (stage_idx, &(mid_c, out_c, blocks, spatial)) in STAGES.iter().enumerate() {
        for block in 0..blocks {
            let name = format!("layer{}.{}", stage_idx + 1, block);
            // Stage 1 keeps 56×56 (stride 1); later stages stride on block 0.
            let stride = if block == 0 && stage_idx > 0 { 2 } else { 1 };
            push_bottleneck(&mut g, &name, in_c, mid_c, out_c, stride, spatial);
            in_c = out_c;
        }
    }

    g.push(Layer::pool("avgpool", 2048 * 7 * 7, 2048));
    g.push(Layer::linear("fc", 1, 2048, 1000));
    g.push(Layer::softmax("softmax", 1000));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn total_macs_close_to_published() {
        let g = resnet50();
        let gmacs = g.flops_per_sample() / 2.0 / 1e9;
        assert!(
            (3.5..4.5).contains(&gmacs),
            "ResNet-50 GMACs {gmacs:.2} out of expected range"
        );
    }

    #[test]
    fn parameter_count_close_to_published() {
        // ~25.5 M parameters.
        let g = resnet50();
        let params = g.weight_bytes() / 2.0;
        assert!(
            (23e6..28e6).contains(&params),
            "ResNet-50 params {params:.0} out of range"
        );
    }

    #[test]
    fn has_sixteen_bottlenecks_and_four_downsamples() {
        let g = resnet50();
        let residuals = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::Residual)
            .count();
        assert_eq!(residuals, 16);
        let downsamples = g
            .layers()
            .iter()
            .filter(|l| l.name().contains("downsample"))
            .count();
        assert_eq!(downsamples, 4);
    }

    #[test]
    fn conv_count_matches_architecture() {
        // 1 stem + 16 blocks × 3 convs + 4 downsample projections = 53.
        let g = resnet50();
        let convs = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::Conv2d)
            .count();
        assert_eq!(convs, 53);
    }

    #[test]
    fn heavier_than_mobilenet() {
        let r = resnet50().flops_per_sample();
        let m = super::super::mobilenet_v1().flops_per_sample();
        assert!(r > 5.0 * m, "ResNet should be much heavier than MobileNet");
    }
}
