//! BERT-base encoder at sequence length 128 (Devlin et al., 2018 — the
//! paper's reference [43]). The heavyweight, compute-intensive member of the
//! benchmark suite.

use crate::graph::ModelGraph;
use crate::layer::Layer;

/// Hidden width of BERT-base.
const HIDDEN: usize = 768;
/// Feed-forward inner width.
const FFN: usize = 3072;
/// Number of attention heads.
const HEADS: usize = 12;
/// Width of one head.
const HEAD_DIM: usize = HIDDEN / HEADS;
/// Encoder depth.
const LAYERS: usize = 12;
/// Default sequence length used throughout the evaluation.
const SEQ: usize = 128;
/// WordPiece vocabulary size.
const VOCAB: usize = 30_522;

/// Appends one transformer encoder layer.
fn push_encoder_layer(g: &mut ModelGraph, name: &str, seq: usize) {
    let tok_elems = seq * HIDDEN;
    // Self-attention.
    g.push(Layer::linear(format!("{name}.attn.q"), seq, HIDDEN, HIDDEN));
    g.push(Layer::linear(format!("{name}.attn.k"), seq, HIDDEN, HIDDEN));
    g.push(Layer::linear(format!("{name}.attn.v"), seq, HIDDEN, HIDDEN));
    g.push(Layer::attention_matmul(
        format!("{name}.attn.scores"),
        HEADS,
        seq,
        HEAD_DIM,
    ));
    g.push(Layer::softmax(
        format!("{name}.attn.softmax"),
        HEADS * seq * seq,
    ));
    g.push(Layer::attention_matmul(
        format!("{name}.attn.context"),
        HEADS,
        seq,
        HEAD_DIM,
    ));
    g.push(Layer::linear(
        format!("{name}.attn.out"),
        seq,
        HIDDEN,
        HIDDEN,
    ));
    g.push(Layer::residual(format!("{name}.attn.add"), tok_elems));
    g.push(Layer::norm(format!("{name}.attn.norm"), tok_elems));
    // Feed-forward network.
    g.push(Layer::linear(format!("{name}.ffn.fc1"), seq, HIDDEN, FFN));
    g.push(Layer::activation(format!("{name}.ffn.gelu"), seq * FFN));
    g.push(Layer::linear(format!("{name}.ffn.fc2"), seq, FFN, HIDDEN));
    g.push(Layer::residual(format!("{name}.ffn.add"), tok_elems));
    g.push(Layer::norm(format!("{name}.ffn.norm"), tok_elems));
}

/// Builds BERT-base (12 layers, hidden 768, sequence length 128),
/// ≈11 GMACs ≈ 22 GFLOPs per sample.
///
/// # Examples
///
/// ```
/// let g = dnn_zoo::zoo::bert_base();
/// assert!(g.flops_per_sample() > 2.0e10);
/// ```
#[must_use]
pub fn bert_base() -> ModelGraph {
    bert_base_with_seq(SEQ)
}

/// Builds BERT-base with an explicit sequence length, for sensitivity
/// studies.
#[must_use]
pub fn bert_base_with_seq(seq: usize) -> ModelGraph {
    let mut g = ModelGraph::new("bert_base");

    g.push(Layer::embedding("embeddings", seq, HIDDEN, VOCAB));
    g.push(Layer::norm("embeddings.norm", seq * HIDDEN));

    for i in 0..LAYERS {
        push_encoder_layer(&mut g, &format!("encoder.{i}"), seq);
    }

    g.push(Layer::linear("pooler", 1, HIDDEN, HIDDEN));
    g.push(Layer::activation("pooler.tanh", HIDDEN));
    g.push(Layer::linear("classifier", 1, HIDDEN, 2));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn total_flops_close_to_published() {
        // 12 layers × (4·s·h² projections + 2·s²·h attention + 2·s·h·ffn)
        // ≈ 22.5 GFLOPs at s=128.
        let g = bert_base();
        let gflops = g.flops_per_sample() / 1e9;
        assert!(
            (20.0..25.0).contains(&gflops),
            "BERT GFLOPs {gflops:.1} out of expected range"
        );
    }

    #[test]
    fn parameter_count_close_to_published() {
        // Encoder weights ~85 M (embedding table excluded from traffic).
        let g = bert_base();
        let params = g.weight_bytes() / 2.0;
        assert!(
            (80e6..95e6).contains(&params),
            "BERT params {params:.0} out of range"
        );
    }

    #[test]
    fn heaviest_model_in_suite() {
        let b = bert_base().flops_per_sample();
        let r = super::super::resnet50().flops_per_sample();
        assert!(b > 2.0 * r);
    }

    #[test]
    fn attention_matmul_count() {
        let g = bert_base();
        let attn = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::AttentionMatmul)
            .count();
        assert_eq!(attn, 2 * LAYERS);
    }

    #[test]
    fn flops_grow_quadratically_with_seq_in_attention() {
        let short = bert_base_with_seq(64).flops_per_sample();
        let long = bert_base_with_seq(256).flops_per_sample();
        // Projections scale 4×, attention 16×; total must grow >4×.
        assert!(long / short > 4.0);
    }
}
