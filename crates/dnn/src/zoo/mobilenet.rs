//! MobileNetV1 1.0× at 224×224 input.
//!
//! The canonical 13 depthwise-separable blocks (Howard et al., 2017).
//! BatchNorm is folded into the convolutions (standard for inference); each
//! convolution is followed by a separate ReLU kernel, matching the eager
//! PyTorch execution the paper measured.

use crate::graph::ModelGraph;
use crate::layer::Layer;

/// One depthwise-separable block: `(stride of the depthwise conv, output
/// channels of the pointwise conv, output spatial size)`.
const BLOCKS: [(usize, usize, usize); 13] = [
    (1, 64, 112),
    (2, 128, 56),
    (1, 128, 56),
    (2, 256, 28),
    (1, 256, 28),
    (2, 512, 14),
    (1, 512, 14),
    (1, 512, 14),
    (1, 512, 14),
    (1, 512, 14),
    (1, 512, 14),
    (2, 1024, 7),
    (1, 1024, 7),
];

/// Builds MobileNetV1 (1.0×, 224×224), ≈0.57 GMACs per sample.
///
/// # Examples
///
/// ```
/// let g = dnn_zoo::zoo::mobilenet_v1();
/// let gmacs = g.flops_per_sample() / 2.0 / 1e9;
/// assert!((0.5..0.7).contains(&gmacs));
/// ```
#[must_use]
pub fn mobilenet_v1() -> ModelGraph {
    let mut g = ModelGraph::new("mobilenet_v1");

    // Stem: 3×3/2 full convolution, 3→32 channels, 224→112.
    g.push(Layer::conv2d("conv1", 3, 32, 3, 2, 112, 112));
    g.push(Layer::activation("conv1.relu", 32 * 112 * 112));

    let mut in_c = 32;
    for (i, &(stride, out_c, spatial)) in BLOCKS.iter().enumerate() {
        let dw = format!("block{}.dw", i + 1);
        let pw = format!("block{}.pw", i + 1);
        g.push(Layer::depthwise_conv(
            &dw, in_c, 3, stride, spatial, spatial,
        ));
        g.push(Layer::activation(
            format!("{dw}.relu"),
            in_c * spatial * spatial,
        ));
        g.push(Layer::pointwise_conv(&pw, in_c, out_c, spatial, spatial));
        g.push(Layer::activation(
            format!("{pw}.relu"),
            out_c * spatial * spatial,
        ));
        in_c = out_c;
    }

    g.push(Layer::pool("avgpool", 1024 * 7 * 7, 1024));
    g.push(Layer::linear("classifier", 1, 1024, 1000));
    g.push(Layer::softmax("softmax", 1000));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn total_macs_close_to_published() {
        // Published MobileNetV1 1.0×: ~569 M multiply-accumulates.
        let g = mobilenet_v1();
        let gmacs = g.flops_per_sample() / 2.0 / 1e9;
        assert!(
            (0.52..0.65).contains(&gmacs),
            "MobileNet GMACs {gmacs:.3} out of expected range"
        );
    }

    #[test]
    fn has_thirteen_depthwise_layers() {
        let g = mobilenet_v1();
        let dw = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::DepthwiseConv)
            .count();
        assert_eq!(dw, 13);
    }

    #[test]
    fn parameter_count_close_to_published() {
        // ~4.2 M parameters → ~8.4 MB at fp16.
        let g = mobilenet_v1();
        let params = g.weight_bytes() / 2.0;
        assert!(
            (3.5e6..5.0e6).contains(&params),
            "MobileNet params {params:.0} out of range"
        );
    }

    #[test]
    fn depthwise_flops_are_a_small_fraction() {
        // Pointwise convs dominate MobileNet compute (the paper's premise
        // that MobileNet is lightweight but conv-efficient).
        let g = mobilenet_v1();
        let dw: f64 = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::DepthwiseConv)
            .map(Layer::flops_per_sample)
            .sum();
        assert!(dw / g.flops_per_sample() < 0.1);
    }
}
