//! ShuffleNetV2 1.0× at 224×224 input (Ma et al., 2018 — the paper's
//! reference [40]).

use crate::graph::ModelGraph;
use crate::layer::Layer;

/// Stage description: `(output channels, number of units, output spatial)`.
/// The first unit of each stage is the spatial-downsampling variant.
const STAGES: [(usize, usize, usize); 3] = [(116, 4, 28), (232, 8, 14), (464, 4, 7)];

/// Basic (stride-1) unit on `c` total channels at `s`×`s` resolution: the
/// right branch processes half the channels through pw → dw → pw, then the
/// halves are concatenated and channel-shuffled.
fn push_basic_unit(g: &mut ModelGraph, name: &str, c: usize, s: usize) {
    let half = c / 2;
    g.push(Layer::pointwise_conv(
        format!("{name}.pw1"),
        half,
        half,
        s,
        s,
    ));
    g.push(Layer::activation(format!("{name}.relu1"), half * s * s));
    g.push(Layer::depthwise_conv(
        format!("{name}.dw"),
        half,
        3,
        1,
        s,
        s,
    ));
    g.push(Layer::pointwise_conv(
        format!("{name}.pw2"),
        half,
        half,
        s,
        s,
    ));
    g.push(Layer::activation(format!("{name}.relu2"), half * s * s));
    g.push(Layer::channel_shuffle(format!("{name}.shuffle"), c * s * s));
}

/// Downsampling (stride-2) unit from `in_c` channels to `out_c` channels,
/// producing `s`×`s` output. Both branches are active.
fn push_down_unit(g: &mut ModelGraph, name: &str, in_c: usize, out_c: usize, s: usize) {
    let half = out_c / 2;
    // Left branch: dw(s2) → pw.
    g.push(Layer::depthwise_conv(
        format!("{name}.l.dw"),
        in_c,
        3,
        2,
        s,
        s,
    ));
    g.push(Layer::pointwise_conv(
        format!("{name}.l.pw"),
        in_c,
        half,
        s,
        s,
    ));
    g.push(Layer::activation(format!("{name}.l.relu"), half * s * s));
    // Right branch: pw → dw(s2) → pw.
    g.push(Layer::pointwise_conv(
        format!("{name}.r.pw1"),
        in_c,
        half,
        s * 2,
        s * 2,
    ));
    g.push(Layer::activation(
        format!("{name}.r.relu1"),
        half * s * 2 * s * 2,
    ));
    g.push(Layer::depthwise_conv(
        format!("{name}.r.dw"),
        half,
        3,
        2,
        s,
        s,
    ));
    g.push(Layer::pointwise_conv(
        format!("{name}.r.pw2"),
        half,
        half,
        s,
        s,
    ));
    g.push(Layer::activation(format!("{name}.r.relu2"), half * s * s));
    g.push(Layer::channel_shuffle(
        format!("{name}.shuffle"),
        out_c * s * s,
    ));
}

/// Builds ShuffleNetV2 1.0×, ≈0.15 GMACs per sample — the lightest model in
/// the suite.
///
/// # Examples
///
/// ```
/// let g = dnn_zoo::zoo::shufflenet_v2();
/// let gmacs = g.flops_per_sample() / 2.0 / 1e9;
/// assert!(gmacs < 0.25);
/// ```
#[must_use]
pub fn shufflenet_v2() -> ModelGraph {
    let mut g = ModelGraph::new("shufflenet_v2");

    g.push(Layer::conv2d("conv1", 3, 24, 3, 2, 112, 112));
    g.push(Layer::activation("conv1.relu", 24 * 112 * 112));
    g.push(Layer::pool("maxpool", 24 * 112 * 112, 24 * 56 * 56));

    let mut in_c = 24;
    for (stage_idx, &(out_c, units, spatial)) in STAGES.iter().enumerate() {
        let stage = stage_idx + 2; // ShuffleNet numbering starts at stage2
        push_down_unit(&mut g, &format!("stage{stage}.0"), in_c, out_c, spatial);
        for unit in 1..units {
            push_basic_unit(&mut g, &format!("stage{stage}.{unit}"), out_c, spatial);
        }
        in_c = out_c;
    }

    g.push(Layer::pointwise_conv("conv5", 464, 1024, 7, 7));
    g.push(Layer::activation("conv5.relu", 1024 * 7 * 7));
    g.push(Layer::pool("globalpool", 1024 * 7 * 7, 1024));
    g.push(Layer::linear("fc", 1, 1024, 1000));
    g.push(Layer::softmax("softmax", 1000));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn total_macs_close_to_published() {
        // Published ShuffleNetV2 1.0×: ~146 M multiply-accumulates.
        let g = shufflenet_v2();
        let gmacs = g.flops_per_sample() / 2.0 / 1e9;
        assert!(
            (0.10..0.22).contains(&gmacs),
            "ShuffleNetV2 GMACs {gmacs:.3} out of expected range"
        );
    }

    #[test]
    fn lightest_model_in_suite() {
        let s = shufflenet_v2().flops_per_sample();
        let m = super::super::mobilenet_v1().flops_per_sample();
        assert!(s < m);
    }

    #[test]
    fn unit_counts_match_architecture() {
        let g = shufflenet_v2();
        let shuffles = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::ChannelShuffle)
            .count();
        assert_eq!(shuffles, 4 + 8 + 4, "one shuffle per unit");
        // 3 downsampling units have 2 depthwise convs; 13 basic units have 1.
        let dws = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::DepthwiseConv)
            .count();
        assert_eq!(dws, 3 * 2 + 13);
    }

    #[test]
    fn parameter_count_close_to_published() {
        // ~2.3 M parameters.
        let g = shufflenet_v2();
        let params = g.weight_bytes() / 2.0;
        assert!(
            (1.5e6..3.0e6).contains(&params),
            "ShuffleNetV2 params {params:.0} out of range"
        );
    }
}
