//! The five-network benchmark suite of the PARIS+ELSA evaluation.
//!
//! Section V of the paper studies models spanning three levels of
//! compute-intensity: low (ShuffleNet, MobileNet), medium (ResNet,
//! Conformer) and high (BERT). Each builder reconstructs the real network
//! layer-by-layer so the per-layer FLOPs/bytes/parallelism footprints — the
//! inputs to GPU profiling — mirror the actual architectures.

mod bert;
mod conformer;
mod mobilenet;
mod resnet;
mod shufflenet;

pub use bert::bert_base;
pub use conformer::conformer;
pub use mobilenet::mobilenet_v1;
pub use resnet::resnet50;
pub use shufflenet::shufflenet_v2;

use std::fmt;
use std::str::FromStr;

use crate::graph::ModelGraph;

/// Coarse compute-intensity class of a benchmark model (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComputeIntensity {
    /// Lightweight CNNs (ShuffleNet, MobileNet).
    Low,
    /// Mid-sized CNN / speech encoder (ResNet, Conformer).
    Medium,
    /// Large transformer (BERT).
    High,
}

impl fmt::Display for ComputeIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeIntensity::Low => f.write_str("low"),
            ComputeIntensity::Medium => f.write_str("medium"),
            ComputeIntensity::High => f.write_str("high"),
        }
    }
}

/// One of the five benchmark networks studied in the paper.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
///
/// let resnet = ModelKind::ResNet50.build();
/// // ResNet-50 is ~4 GMACs ≈ 8 GFLOPs per sample.
/// assert!((7.0e9..9.0e9).contains(&resnet.flops_per_sample()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelKind {
    /// ShuffleNetV2 1.0× — computer vision, low intensity.
    ShuffleNet,
    /// MobileNetV1 1.0× — computer vision, low intensity.
    MobileNet,
    /// ResNet-50 — computer vision, medium intensity.
    ResNet50,
    /// BERT-base (sequence length 128) — NLP, high intensity.
    BertBase,
    /// Conformer-M encoder — speech recognition, medium intensity.
    Conformer,
}

impl ModelKind {
    /// All five benchmark models, in the paper's presentation order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::ShuffleNet,
        ModelKind::MobileNet,
        ModelKind::ResNet50,
        ModelKind::BertBase,
        ModelKind::Conformer,
    ];

    /// Constructs the layer graph of this network.
    #[must_use]
    pub fn build(self) -> ModelGraph {
        match self {
            ModelKind::ShuffleNet => shufflenet_v2(),
            ModelKind::MobileNet => mobilenet_v1(),
            ModelKind::ResNet50 => resnet50(),
            ModelKind::BertBase => bert_base(),
            ModelKind::Conformer => conformer(),
        }
    }

    /// The paper's compute-intensity classification of this model.
    #[must_use]
    pub fn compute_intensity(self) -> ComputeIntensity {
        match self {
            ModelKind::ShuffleNet | ModelKind::MobileNet => ComputeIntensity::Low,
            ModelKind::ResNet50 | ModelKind::Conformer => ComputeIntensity::Medium,
            ModelKind::BertBase => ComputeIntensity::High,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::ShuffleNet => "ShuffleNet",
            ModelKind::MobileNet => "MobileNet",
            ModelKind::ResNet50 => "ResNet",
            ModelKind::BertBase => "BERT",
            ModelKind::Conformer => "Conformer",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`ModelKind`] from an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelKindError {
    input: String,
}

impl fmt::Display for ParseModelKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown model name `{}` (expected one of shufflenet, mobilenet, resnet, bert, conformer)",
            self.input
        )
    }
}

impl std::error::Error for ParseModelKindError {}

impl FromStr for ModelKind {
    type Err = ParseModelKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "shufflenet" | "shufflenetv2" => Ok(ModelKind::ShuffleNet),
            "mobilenet" | "mobilenetv1" => Ok(ModelKind::MobileNet),
            "resnet" | "resnet50" => Ok(ModelKind::ResNet50),
            "bert" | "bert-base" | "bertbase" => Ok(ModelKind::BertBase),
            "conformer" => Ok(ModelKind::Conformer),
            _ => Err(ParseModelKindError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_nonempty_graphs() {
        for kind in ModelKind::ALL {
            let g = kind.build();
            assert!(g.layer_count() > 5, "{kind} has too few layers");
            assert!(g.flops_per_sample() > 0.0);
            assert!(g.weight_bytes() > 0.0);
        }
    }

    #[test]
    fn compute_intensity_ordering_matches_paper() {
        // ShuffleNet < MobileNet < {ResNet, Conformer} < BERT in FLOPs.
        let flops: Vec<f64> = ModelKind::ALL
            .iter()
            .map(|k| k.build().flops_per_sample())
            .collect();
        let (shuffle, mobile, resnet, bert, conformer) =
            (flops[0], flops[1], flops[2], flops[3], flops[4]);
        assert!(shuffle < mobile, "shufflenet lighter than mobilenet");
        assert!(mobile < resnet, "mobilenet lighter than resnet");
        assert!(resnet < bert, "resnet lighter than bert");
        assert!(
            conformer < bert && conformer > mobile,
            "conformer is medium"
        );
    }

    #[test]
    fn intensity_labels() {
        assert_eq!(
            ModelKind::ShuffleNet.compute_intensity(),
            ComputeIntensity::Low
        );
        assert_eq!(
            ModelKind::Conformer.compute_intensity(),
            ComputeIntensity::Medium
        );
        assert_eq!(
            ModelKind::BertBase.compute_intensity(),
            ComputeIntensity::High
        );
    }

    #[test]
    fn parse_round_trips() {
        for kind in ModelKind::ALL {
            let parsed: ModelKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("resnext".parse::<ModelKind>().is_err());
    }

    #[test]
    fn parse_error_is_descriptive() {
        let err = "resnext".parse::<ModelKind>().unwrap_err();
        assert!(err.to_string().contains("resnext"));
    }
}
