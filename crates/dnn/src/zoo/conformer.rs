//! Conformer-M speech encoder (Gulati et al., 2020 — the paper's reference
//! [44]): macaron feed-forward pairs around self-attention and a
//! depthwise-convolution module. Medium compute intensity, like ResNet.

use crate::graph::ModelGraph;
use crate::layer::Layer;

/// Encoder width of Conformer-M.
const DIM: usize = 256;
/// Attention heads.
const HEADS: usize = 4;
/// Width of one head.
const HEAD_DIM: usize = DIM / HEADS;
/// Feed-forward inner width (4× expansion).
const FFN: usize = 4 * DIM;
/// Encoder depth of Conformer-M.
const LAYERS: usize = 16;
/// Depthwise convolution kernel of the convolution module.
const CONV_KERNEL: usize = 31;
/// Input utterance length in 10 ms frames (~4.8 s of speech).
const INPUT_FRAMES: usize = 480;
/// Mel filterbank features per frame.
const MEL_BINS: usize = 80;
/// Frames after the 4× convolutional subsampling frontend.
const SEQ: usize = INPUT_FRAMES / 4;
/// Output vocabulary of the CTC head (word pieces).
const VOCAB: usize = 128;

/// Appends one half-step (macaron) feed-forward module.
fn push_feed_forward(g: &mut ModelGraph, name: &str, seq: usize) {
    g.push(Layer::norm(format!("{name}.norm"), seq * DIM));
    g.push(Layer::linear(format!("{name}.fc1"), seq, DIM, FFN));
    g.push(Layer::activation(format!("{name}.swish"), seq * FFN));
    g.push(Layer::linear(format!("{name}.fc2"), seq, FFN, DIM));
    g.push(Layer::residual(format!("{name}.add"), seq * DIM));
}

/// Appends the multi-head self-attention module.
fn push_attention(g: &mut ModelGraph, name: &str, seq: usize) {
    g.push(Layer::norm(format!("{name}.norm"), seq * DIM));
    g.push(Layer::linear(format!("{name}.q"), seq, DIM, DIM));
    g.push(Layer::linear(format!("{name}.k"), seq, DIM, DIM));
    g.push(Layer::linear(format!("{name}.v"), seq, DIM, DIM));
    g.push(Layer::attention_matmul(
        format!("{name}.scores"),
        HEADS,
        seq,
        HEAD_DIM,
    ));
    g.push(Layer::softmax(format!("{name}.softmax"), HEADS * seq * seq));
    g.push(Layer::attention_matmul(
        format!("{name}.context"),
        HEADS,
        seq,
        HEAD_DIM,
    ));
    g.push(Layer::linear(format!("{name}.out"), seq, DIM, DIM));
    g.push(Layer::residual(format!("{name}.add"), seq * DIM));
}

/// Appends the convolution module: pointwise (GLU) → depthwise → pointwise.
fn push_conv_module(g: &mut ModelGraph, name: &str, seq: usize) {
    g.push(Layer::norm(format!("{name}.norm"), seq * DIM));
    g.push(Layer::linear(format!("{name}.pw1"), seq, DIM, 2 * DIM));
    g.push(Layer::activation(format!("{name}.glu"), seq * 2 * DIM));
    g.push(Layer::depthwise_conv1d(
        format!("{name}.dw"),
        DIM,
        CONV_KERNEL,
        seq,
    ));
    g.push(Layer::norm(format!("{name}.bn"), seq * DIM));
    g.push(Layer::activation(format!("{name}.swish"), seq * DIM));
    g.push(Layer::linear(format!("{name}.pw2"), seq, DIM, DIM));
    g.push(Layer::residual(format!("{name}.add"), seq * DIM));
}

/// Appends one full Conformer block:
/// `FF/2 → MHSA → Conv → FF/2 → LayerNorm`.
fn push_conformer_block(g: &mut ModelGraph, name: &str, seq: usize) {
    push_feed_forward(g, &format!("{name}.ff1"), seq);
    push_attention(g, &format!("{name}.mhsa"), seq);
    push_conv_module(g, &format!("{name}.conv"), seq);
    push_feed_forward(g, &format!("{name}.ff2"), seq);
    g.push(Layer::norm(format!("{name}.final_norm"), seq * DIM));
}

/// Builds the Conformer-M encoder (16 blocks, width 256, ~4.8 s utterance),
/// ≈4–5 GMACs per sample — medium intensity, comparable to ResNet-50.
///
/// # Examples
///
/// ```
/// let g = dnn_zoo::zoo::conformer();
/// let gflops = g.flops_per_sample() / 1e9;
/// assert!((6.0..13.0).contains(&gflops));
/// ```
#[must_use]
pub fn conformer() -> ModelGraph {
    let mut g = ModelGraph::new("conformer");

    // Convolutional subsampling frontend (two 3×3/2 convs over time×mel).
    g.push(Layer::conv2d(
        "subsample.conv1",
        1,
        DIM,
        3,
        2,
        INPUT_FRAMES / 2,
        MEL_BINS / 2,
    ));
    g.push(Layer::activation(
        "subsample.relu1",
        DIM * (INPUT_FRAMES / 2) * (MEL_BINS / 2),
    ));
    g.push(Layer::conv2d(
        "subsample.conv2",
        DIM,
        DIM,
        3,
        2,
        SEQ,
        MEL_BINS / 4,
    ));
    g.push(Layer::activation(
        "subsample.relu2",
        DIM * SEQ * (MEL_BINS / 4),
    ));
    // Flatten (time, channel×freq) and project into the encoder width.
    g.push(Layer::linear(
        "subsample.proj",
        SEQ,
        DIM * MEL_BINS / 4,
        DIM,
    ));

    for i in 0..LAYERS {
        push_conformer_block(&mut g, &format!("block{i}"), SEQ);
    }

    g.push(Layer::linear("ctc_head", SEQ, DIM, VOCAB));
    g.push(Layer::softmax("ctc_softmax", SEQ * VOCAB));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn medium_intensity_between_resnet_and_bert() {
        let c = conformer().flops_per_sample();
        let b = super::super::bert_base().flops_per_sample();
        let m = super::super::mobilenet_v1().flops_per_sample();
        assert!(c < b, "conformer lighter than BERT");
        assert!(c > 3.0 * m, "conformer much heavier than MobileNet");
    }

    #[test]
    fn has_sixteen_blocks() {
        let g = conformer();
        let dws = g
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::DepthwiseConv)
            .count();
        assert_eq!(dws, LAYERS, "one conv module per block");
    }

    #[test]
    fn macaron_structure_means_two_ffns_per_block() {
        let g = conformer();
        let fc1 = g
            .layers()
            .iter()
            .filter(|l| l.name().ends_with(".fc1"))
            .count();
        assert_eq!(fc1, 2 * LAYERS);
    }

    #[test]
    fn many_kernel_launches_per_inference() {
        // Conformer's fine-grained modules mean lots of small kernels —
        // relevant to launch-overhead behaviour on small partitions.
        assert!(conformer().layer_count() > 300);
    }
}
