//! A whole network as an ordered list of layers.

use std::fmt;

use crate::layer::{ComputeClass, Layer};

/// A DNN described as the sequence of kernels one inference executes.
///
/// The order matters only for reporting; the performance model treats layers
/// as a serial chain of kernel launches (standard for inference engines
/// without inter-layer fusion across streams).
///
/// # Examples
///
/// ```
/// use dnn_zoo::{Layer, ModelGraph};
///
/// let toy = ModelGraph::new("toy")
///     .with_layer(Layer::conv2d("stem", 3, 16, 3, 2, 112, 112))
///     .with_layer(Layer::linear("head", 1, 16, 10));
/// assert_eq!(toy.layer_count(), 2);
/// assert!(toy.flops_per_sample() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelGraph {
    name: String,
    layers: Vec<Layer>,
}

impl ModelGraph {
    /// Creates an empty graph with the given display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ModelGraph {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with_layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// Appends every layer from an iterator.
    pub fn extend_layers<I: IntoIterator<Item = Layer>>(&mut self, layers: I) {
        self.layers.extend(layers);
    }

    /// The network's display name (e.g. `"resnet50"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of kernels one inference launches.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total FLOPs for a single sample.
    #[must_use]
    pub fn flops_per_sample(&self) -> f64 {
        self.layers.iter().map(Layer::flops_per_sample).sum()
    }

    /// Total FLOPs for a batch of `b` samples.
    #[must_use]
    pub fn flops_for_batch(&self, b: usize) -> f64 {
        self.flops_per_sample() * b as f64
    }

    /// Total parameter bytes (read once per inference, any batch size).
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// Total activation traffic per sample, in bytes.
    #[must_use]
    pub fn io_bytes_per_sample(&self) -> f64 {
        self.layers.iter().map(Layer::io_bytes_per_sample).sum()
    }

    /// Fraction of FLOPs that run on the tensor-core pipe.
    #[must_use]
    pub fn tensor_flop_fraction(&self) -> f64 {
        let total = self.flops_per_sample();
        if total == 0.0 {
            return 0.0;
        }
        let tensor: f64 = self
            .layers
            .iter()
            .filter(|l| l.class() == ComputeClass::TensorCore)
            .map(Layer::flops_per_sample)
            .sum();
        tensor / total
    }

    /// Arithmetic intensity at batch `b`: FLOPs per DRAM byte.
    ///
    /// Grows with `b` because parameter traffic is amortized across the
    /// batch — the effect that makes large batches utilization-friendly.
    #[must_use]
    pub fn arithmetic_intensity(&self, b: usize) -> f64 {
        let bytes = self.weight_bytes() + self.io_bytes_per_sample() * b as f64;
        if bytes == 0.0 {
            return 0.0;
        }
        self.flops_for_batch(b) / bytes
    }
}

impl fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GFLOPs/sample)",
            self.name,
            self.layers.len(),
            self.flops_per_sample() / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ModelGraph {
        ModelGraph::new("toy")
            .with_layer(Layer::conv2d("c1", 3, 16, 3, 1, 32, 32))
            .with_layer(Layer::activation("a1", 16 * 32 * 32))
            .with_layer(Layer::linear("fc", 1, 16, 10))
    }

    #[test]
    fn aggregates_sum_over_layers() {
        let g = toy();
        let by_hand: f64 = g.layers().iter().map(Layer::flops_per_sample).sum();
        assert_eq!(g.flops_per_sample(), by_hand);
        assert_eq!(g.layer_count(), 3);
    }

    #[test]
    fn batch_flops_scale_linearly() {
        let g = toy();
        assert!((g.flops_for_batch(4) - 4.0 * g.flops_per_sample()).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_intensity_grows_with_batch() {
        let g = toy();
        assert!(g.arithmetic_intensity(8) > g.arithmetic_intensity(1));
    }

    #[test]
    fn tensor_fraction_between_zero_and_one() {
        let g = toy();
        let f = g.tensor_flop_fraction();
        assert!(f > 0.0 && f < 1.0, "toy mixes tensor and cuda work: {f}");
    }

    #[test]
    fn empty_graph_is_well_behaved() {
        let g = ModelGraph::new("empty");
        assert_eq!(g.flops_per_sample(), 0.0);
        assert_eq!(g.tensor_flop_fraction(), 0.0);
        assert_eq!(g.arithmetic_intensity(8), 0.0);
    }

    #[test]
    fn push_and_extend() {
        let mut g = ModelGraph::new("g");
        g.push(Layer::linear("a", 1, 8, 8));
        g.extend_layers([Layer::linear("b", 1, 8, 8), Layer::linear("c", 1, 8, 8)]);
        assert_eq!(g.layer_count(), 3);
    }

    #[test]
    fn display_mentions_name_and_layer_count() {
        let s = toy().to_string();
        assert!(s.contains("toy") && s.contains("3 layers"));
    }
}
