//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! implements a pragmatic timing harness behind criterion's API shape:
//! each benchmark is warmed up, then timed in batches until a wall-clock
//! budget is spent, and the per-iteration mean / best-batch figures are
//! printed as `name ... mean <t> (best <t>, N iters)`. There are no
//! statistical confidence intervals or HTML reports; the goal is stable,
//! comparable numbers for tracking relative regressions offline.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs every variant
/// with per-iteration setup outside the timed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    best_ns: f64,
    iters: u64,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The per-benchmark measurement driver handed to `bench_function`
/// closures.
pub struct Bencher {
    budget: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            sample: None,
        }
    }

    /// Times `routine` repeatedly and records the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count that takes ≥ ~1 ms
        // per batch so Instant overhead is negligible.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let deadline = Instant::now() + self.budget;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut best_ns = f64::INFINITY;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iters += batch;
            best_ns = best_ns.min(elapsed.as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.sample = Some(Sample {
            mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
            best_ns,
            iters,
        });
    }

    /// Times `routine` over inputs produced by `setup`; setup cost is kept
    /// outside the timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut best_ns = f64::INFINITY;
        // One warmup round.
        std::hint::black_box(routine(setup()));
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            iters += 1;
            best_ns = best_ns.min(elapsed.as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.sample = Some(Sample {
            mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
            best_ns,
            iters,
        });
    }
}

/// One finished benchmark: its name and per-iteration timing. Real
/// criterion persists these to `target/criterion`; the shim hands them
/// back so callers can write their own artifacts (ops/sec JSON, tables).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as passed to `bench_function`.
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Best (minimum) batch-amortized iteration time, nanoseconds.
    pub best_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The top-level harness: registers and runs benchmarks immediately.
pub struct Criterion {
    budget: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_BUDGET_MS shortens runs in CI smoke checks.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        match b.sample {
            Some(s) => {
                println!(
                    "bench {name:<52} mean {:>12} (best {:>12}, {} iters)",
                    format_ns(s.mean_ns),
                    format_ns(s.best_ns),
                    s.iters
                );
                self.results.push(BenchResult {
                    name: name.trim_start().to_string(),
                    mean_ns: s.mean_ns,
                    best_ns: s.best_ns,
                    iters: s.iters,
                });
            }
            None => println!("bench {name:<52} (no measurement taken)"),
        }
        self
    }

    /// All results measured so far, in execution order.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let full = format!("  {}", name.as_ref());
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "noop");
        assert!(results[0].mean_ns >= 0.0 && results[0].iters >= 1);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(
            || vec![1u64, 2, 3],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.sample.is_some());
        assert!(b.sample.unwrap().iters >= 1);
    }

    #[test]
    fn ns_formatting_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(12_000_000_000.0).contains(" s"));
    }
}
