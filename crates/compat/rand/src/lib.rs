//! A tiny, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of abstractions it needs: a seedable deterministic
//! generator ([`rngs::StdRng`], here xoshiro256++ seeded through
//! SplitMix64), the [`Rng`]/[`SeedableRng`] traits, and the
//! [`distributions::Standard`] uniform `[0, 1)` double. Statistical quality
//! is ample for workload generation (xoshiro256++ passes BigCrush); the
//! streams are **not** byte-compatible with the real `rand` crate, which
//! only matters if results are compared against runs made with the real
//! dependency.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (`f64` is uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Samples uniformly from a range (`low..high`, `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift keeps the draw unbiased enough for
                // simulation purposes without a rejection loop.
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + draw as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + draw as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u64, usize, u32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = distributions::unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

pub mod distributions {
    //! The distributions the workspace samples from.

    use crate::RngCore;

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
    #[must_use]
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        // 53 high bits → the full mantissa precision of an f64 in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types that can generate samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform `[0, 1)` for floats,
    /// uniform over all values for integers.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 state expansion (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut max = 0.0f64;
        let mut min = 1.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            max = max.max(u);
            min = min.min(u);
        }
        assert!(max > 0.99 && min < 0.01);
    }

    #[test]
    fn unit_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((total / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 reachable");
        for _ in 0..100 {
            let v: u64 = rng.gen_range(5..=6);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn sample_standard_matches_gen() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let x: f64 = a.sample(Standard);
        let y: f64 = b.gen();
        assert_eq!(x, y);
    }

    #[test]
    fn works_through_dyn_like_generic_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(draw(&mut rng) < 1.0);
    }
}
