//! A small, dependency-free stand-in for the subset of the `proptest` API
//! this workspace's property tests use.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the pieces the test-suite needs: the [`proptest!`] macro,
//! the [`Strategy`] trait with range/tuple/collection/select strategies,
//! [`ProptestConfig`], and the `prop_assert*` macros. Unlike the real
//! proptest there is **no shrinking** — a failing case panics with the
//! sampled inputs embedded in the panic message so it can be replayed by
//! hand. Sampling is deterministic per test (seeded from the test name), so
//! failures reproduce across runs.

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives every test its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `bound` (must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_for_uint_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

impl_strategy_for_uint_ranges!(u64, u32, usize, u8, u16);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod prop {
    //! The `prop::` module tree mirrored from the real crate.

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Size bounds accepted by [`vec()`].
        pub trait IntoSizeRange {
            /// Lower (inclusive) and upper (inclusive) length bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// Strategy for `Vec`s whose elements come from `element` and whose
        /// length lies within `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.min + rng.below((self.max - self.min) as u64 + 1) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value sets.

        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics (on sampling) if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "select over no options");
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the condition on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, concat!("property failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..__cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 5u64..=6, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=6).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u64..100, 2..5)) {
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn select_picks_from_options(v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn tuples_compose(pair in (0u64..10, 10u64..20)) {
            prop_assert!(pair.0 < 10 && (10..20).contains(&pair.1));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use crate::TestRng;
}
