//! Offered-load sweeps and latency-bounded-throughput search (the
//! measurement procedure behind Figures 11–13).

use inference_workload::{BatchDistribution, TraceGenerator};
use server_metrics::{latency_bounded_throughput, ThroughputPoint};

use crate::server::{InferenceServer, ReportDetail};

/// Parameters of one load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Simulated seconds of arrivals per operating point.
    pub duration_s: f64,
    /// Base RNG seed (each rate gets `seed + index`).
    pub seed: u64,
    /// The SLA target (and tail-latency bound), nanoseconds.
    pub sla_ns: u64,
}

impl SweepConfig {
    /// A sweep of `duration_s` simulated seconds per point against the
    /// given SLA.
    #[must_use]
    pub fn new(duration_s: f64, seed: u64, sla_ns: u64) -> Self {
        SweepConfig {
            duration_s,
            seed,
            sla_ns,
        }
    }

    /// SLA in milliseconds (the tail-latency bound for throughput).
    #[must_use]
    pub fn sla_ms(&self) -> f64 {
        self.sla_ns as f64 / 1e6
    }
}

/// Measures one operating point: streams a Poisson trace at `rate_qps`
/// through the server at [`ReportDetail::Summary`], so the measurement's
/// memory stays O(1) in the simulated duration (no trace vector, no
/// per-query records — latencies aggregate into the fixed-size histogram).
/// The sweep's SLA is threaded into the run, so the reported violation
/// rate is **exact** rather than histogram-bucket-approximate.
#[must_use]
pub fn measure_point(
    server: &InferenceServer,
    dist: &BatchDistribution,
    rate_qps: f64,
    cfg: &SweepConfig,
) -> ThroughputPoint {
    let gen = TraceGenerator::new(rate_qps, dist.clone(), cfg.seed);
    let report = server.run_stream_sla(
        gen.stream_for(cfg.duration_s),
        ReportDetail::Summary,
        Some(cfg.sla_ns),
    );
    ThroughputPoint {
        offered_qps: rate_qps,
        achieved_qps: report.achieved_qps,
        p95_ms: report.p95_ms(),
        sla_violation_rate: report.sla_violation_rate(cfg.sla_ns),
        mean_utilization: report.mean_utilization(),
    }
}

/// Measures every rate in `rates_qps`, in parallel across OS threads.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::BatchDistribution;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::ProfileTable;
/// use inference_server::{rate_sweep, InferenceServer, SchedulerKind, ServerConfig, SweepConfig};
///
/// let model = ModelKind::MobileNet.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
/// let sla = table.sla_target_ns(1.5);
/// let server = InferenceServer::new(
///     vec![ProfileSize::G2; 4],
///     table,
///     ServerConfig::new(SchedulerKind::Fifs),
/// );
/// let dist = BatchDistribution::paper_default();
/// let cfg = SweepConfig::new(0.5, 1, sla);
/// let points = rate_sweep(&server, &dist, &[50.0, 100.0], &cfg);
/// assert_eq!(points.len(), 2);
/// assert!(points[0].p95_ms <= points[1].p95_ms * 1.5 + 1.0);
/// ```
#[must_use]
pub fn rate_sweep(
    server: &InferenceServer,
    dist: &BatchDistribution,
    rates_qps: &[f64],
    cfg: &SweepConfig,
) -> Vec<ThroughputPoint> {
    // A bounded worker pool: `available_parallelism` threads pull point
    // indices from a shared counter, so a 200-point sweep spawns a handful
    // of OS threads instead of 200.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(rates_qps.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut points: Vec<(usize, ThroughputPoint)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut measured = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= rates_qps.len() {
                            return measured;
                        }
                        let mut point_cfg = *cfg;
                        point_cfg.seed = cfg.seed.wrapping_add(i as u64);
                        measured.push((i, measure_point(server, dist, rates_qps[i], &point_cfg)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    points.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(points.len(), rates_qps.len());
    points.into_iter().map(|(_, p)| p).collect()
}

/// Result of a latency-bounded-throughput search.
#[derive(Debug, Clone)]
pub struct ThroughputSearch {
    /// The highest SLA-meeting throughput found, queries/second.
    pub latency_bounded_qps: f64,
    /// Every operating point measured along the way.
    pub points: Vec<ThroughputPoint>,
}

/// Finds the server's latency-bounded throughput: doubling to bracket the
/// saturation rate, then bisecting. `start_qps` seeds the search (any value
/// well below saturation works; capacity hints come from
/// [`capacity_hint_qps`]).
///
/// # Panics
///
/// Panics if `start_qps` is not positive and finite.
#[must_use]
pub fn search_latency_bounded_throughput(
    server: &InferenceServer,
    dist: &BatchDistribution,
    cfg: &SweepConfig,
    start_qps: f64,
) -> ThroughputSearch {
    assert!(
        start_qps.is_finite() && start_qps > 0.0,
        "start rate must be positive"
    );
    let target_ms = cfg.sla_ms();
    let mut points = Vec::new();

    // Phase 1: double until the tail-latency target breaks (or 20 doublings).
    let mut lo = 0.0f64;
    let mut hi = start_qps;
    for _ in 0..20 {
        let p = measure_point(server, dist, hi, cfg);
        let ok = p.meets_target(target_ms);
        points.push(p);
        if ok {
            lo = hi;
            hi *= 2.0;
        } else {
            break;
        }
    }

    // Phase 2: bisect the bracket.
    if lo > 0.0 {
        for _ in 0..7 {
            let mid = 0.5 * (lo + hi);
            let p = measure_point(server, dist, mid, cfg);
            let ok = p.meets_target(target_ms);
            points.push(p);
            if ok {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    ThroughputSearch {
        latency_bounded_qps: latency_bounded_throughput(&points, target_ms),
        points,
    }
}

/// A back-of-envelope capacity estimate: the sum over partitions of the
/// reciprocal profiled latency at the distribution's mean batch. Useful as
/// the `start_qps` seed for the throughput search.
#[must_use]
pub fn capacity_hint_qps(server: &InferenceServer, dist: &BatchDistribution) -> f64 {
    let mean_batch = dist.mean().round().max(1.0) as usize;
    server
        .partitions()
        .iter()
        .map(|&size| 1.0 / server.table().latency_s(size, mean_batch))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{SchedulerKind, ServerConfig};
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    use paris_core::ProfileTable;

    fn server(partitions: Vec<ProfileSize>) -> InferenceServer {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
        InferenceServer::new(partitions, table, ServerConfig::new(SchedulerKind::Fifs))
    }

    fn cfg(server: &InferenceServer) -> SweepConfig {
        SweepConfig::new(0.5, 3, server.table().sla_target_ns(1.5))
    }

    #[test]
    fn sweep_measures_every_rate_in_order() {
        let s = server(vec![ProfileSize::G2; 3]);
        let dist = BatchDistribution::paper_default();
        let points = rate_sweep(&s, &dist, &[20.0, 60.0, 120.0], &cfg(&s));
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].offered_qps, 20.0);
        assert_eq!(points[2].offered_qps, 120.0);
    }

    #[test]
    fn p95_grows_with_offered_load() {
        let s = server(vec![ProfileSize::G1; 2]);
        let dist = BatchDistribution::paper_default();
        let c = cfg(&s);
        let light = measure_point(&s, &dist, 10.0, &c);
        let crushing = measure_point(&s, &dist, 5_000.0, &c);
        assert!(crushing.p95_ms > light.p95_ms * 2.0);
    }

    #[test]
    fn search_finds_positive_capacity() {
        let s = server(vec![ProfileSize::G2; 4]);
        let dist = BatchDistribution::paper_default();
        let c = cfg(&s);
        let hint = capacity_hint_qps(&s, &dist);
        let result = search_latency_bounded_throughput(&s, &dist, &c, hint * 0.25);
        assert!(result.latency_bounded_qps > 0.0);
        assert!(!result.points.is_empty());
        // The found throughput can't exceed the best achieved point.
        let best = result
            .points
            .iter()
            .map(|p| p.achieved_qps)
            .fold(0.0, f64::max);
        assert!(result.latency_bounded_qps <= best + 1e-9);
    }

    #[test]
    fn more_partitions_more_throughput() {
        let small = server(vec![ProfileSize::G2; 2]);
        let big = server(vec![ProfileSize::G2; 8]);
        let dist = BatchDistribution::paper_default();
        let c = cfg(&small);
        let hint = capacity_hint_qps(&small, &dist);
        let a = search_latency_bounded_throughput(&small, &dist, &c, hint * 0.25);
        let b = search_latency_bounded_throughput(&big, &dist, &c, hint * 0.25);
        assert!(b.latency_bounded_qps > a.latency_bounded_qps);
    }

    #[test]
    fn capacity_hint_is_finite_positive() {
        let s = server(vec![ProfileSize::G1, ProfileSize::G7]);
        let dist = BatchDistribution::paper_default();
        let hint = capacity_hint_qps(&s, &dist);
        assert!(hint.is_finite() && hint > 0.0);
    }
}
