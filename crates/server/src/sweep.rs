//! Offered-load sweeps and latency-bounded-throughput search (the
//! measurement procedure behind Figures 11–13).

use inference_workload::{BatchDistribution, TraceGenerator};
use server_metrics::{latency_bounded_throughput, ThroughputPoint};

use crate::server::{InferenceServer, ReportDetail};

/// Parameters of one load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Simulated seconds of arrivals per operating point.
    pub duration_s: f64,
    /// Base RNG seed (each rate gets `seed + index`).
    pub seed: u64,
    /// The SLA target (and tail-latency bound), nanoseconds.
    pub sla_ns: u64,
}

impl SweepConfig {
    /// A sweep of `duration_s` simulated seconds per point against the
    /// given SLA.
    #[must_use]
    pub fn new(duration_s: f64, seed: u64, sla_ns: u64) -> Self {
        SweepConfig {
            duration_s,
            seed,
            sla_ns,
        }
    }

    /// SLA in milliseconds (the tail-latency bound for throughput).
    #[must_use]
    pub fn sla_ms(&self) -> f64 {
        self.sla_ns as f64 / 1e6
    }
}

/// Measures one operating point: streams a Poisson trace at `rate_qps`
/// through the server at [`ReportDetail::Summary`], so the measurement's
/// memory stays O(1) in the simulated duration (no trace vector, no
/// per-query records — latencies aggregate into the fixed-size histogram).
/// The sweep's SLA is threaded into the run, so the reported violation
/// rate is **exact** rather than histogram-bucket-approximate.
#[must_use]
pub fn measure_point(
    server: &InferenceServer,
    dist: &BatchDistribution,
    rate_qps: f64,
    cfg: &SweepConfig,
) -> ThroughputPoint {
    let gen = TraceGenerator::new(rate_qps, dist.clone(), cfg.seed);
    let report = server.run_stream_sla(
        gen.stream_for(cfg.duration_s),
        ReportDetail::Summary,
        Some(cfg.sla_ns),
    );
    ThroughputPoint {
        offered_qps: rate_qps,
        achieved_qps: report.achieved_qps,
        p95_ms: report.p95_ms(),
        sla_violation_rate: report.sla_violation_rate(cfg.sla_ns),
        mean_utilization: report.mean_utilization(),
    }
}

/// Measures every rate in `rates_qps`, in parallel across OS threads.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::BatchDistribution;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::ProfileTable;
/// use inference_server::{rate_sweep, InferenceServer, SchedulerKind, ServerConfig, SweepConfig};
///
/// let model = ModelKind::MobileNet.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
/// let sla = table.sla_target_ns(1.5);
/// let server = InferenceServer::new(
///     vec![ProfileSize::G2; 4],
///     table,
///     ServerConfig::new(SchedulerKind::Fifs),
/// );
/// let dist = BatchDistribution::paper_default();
/// let cfg = SweepConfig::new(0.5, 1, sla);
/// let points = rate_sweep(&server, &dist, &[50.0, 100.0], &cfg);
/// assert_eq!(points.len(), 2);
/// assert!(points[0].p95_ms <= points[1].p95_ms * 1.5 + 1.0);
/// ```
#[must_use]
pub fn rate_sweep(
    server: &InferenceServer,
    dist: &BatchDistribution,
    rates_qps: &[f64],
    cfg: &SweepConfig,
) -> Vec<ThroughputPoint> {
    parallel_map_indexed(rates_qps.len(), |i| {
        let mut point_cfg = *cfg;
        point_cfg.seed = cfg.seed.wrapping_add(i as u64);
        measure_point(server, dist, rates_qps[i], &point_cfg)
    })
}

/// Evaluates `f(0)..f(n-1)` across a bounded worker pool and returns the
/// results in index order.
///
/// `available_parallelism` threads pull indices from a shared counter, so
/// a 200-point sweep spawns a handful of OS threads instead of 200. This
/// is the pool behind [`rate_sweep`] and the doubling phase of
/// [`parallel_doubling_search`]; any embarrassingly parallel measurement
/// (a bench binary's per-design loop, a scale search) can reuse it.
///
/// # Panics
///
/// Panics if `f` panics on any index (the panic is propagated).
pub fn parallel_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            return acc;
                        }
                        acc.push((i, f(i)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    out.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(out.len(), n);
    out.into_iter().map(|(_, v)| v).collect()
}

/// Result of a generic [`parallel_doubling_search`].
#[derive(Debug, Clone)]
pub struct BracketSearch<T> {
    /// Every `(operating point, outcome)` measured, in the order the
    /// equivalent serial search would have measured them (speculative
    /// doubling points past the first failure are discarded).
    pub points: Vec<(f64, T)>,
    /// Index into [`points`](Self::points) of the best passing point.
    best: Option<usize>,
}

impl<T> BracketSearch<T> {
    /// The highest passing operating point and its outcome, if any passed.
    #[must_use]
    pub fn best(&self) -> Option<&(f64, T)> {
        self.best.map(|i| &self.points[i])
    }

    /// The highest passing operating point (0 when nothing passed).
    #[must_use]
    pub fn best_x(&self) -> f64 {
        self.best().map_or(0.0, |&(x, _)| x)
    }
}

/// Generic doubling + bisection bracket search with a **parallel doubling
/// phase**: the largest operating point `x` (load scale, offered rate, …)
/// at which `meets(&measure(x))` still holds.
///
/// The doubling phase's candidate points (`start·2^k`) are independent, so
/// they are measured in speculative waves through the bounded worker pool
/// [`parallel_map_indexed`] — the pool [`rate_sweep`] uses — instead of one
/// at a time. Waves are capped at four points so a search that fails early
/// never wastes more than three deep-overload measurements. Results are
/// *identical* to the serial search: points past the first failure are
/// discarded, and the bisection (inherently sequential — each probe depends
/// on the last bracket) runs serially on the driving thread.
///
/// When the very first point fails, the bracket is `(0, start)`:
/// `bisect_from_zero` chooses whether to bisect downward into it (a scale
/// search that must localize capacity below its nominal point) or give up
/// at zero (a rate search seeded well below saturation, where a failing
/// seed means the measurement itself is degenerate).
///
/// `measure` must be deterministic and thread-safe; it runs concurrently
/// during the doubling phase.
///
/// # Panics
///
/// Panics if `start` is not positive and finite.
pub fn parallel_doubling_search<T, M, O>(
    start: f64,
    max_doublings: usize,
    bisections: usize,
    bisect_from_zero: bool,
    measure: M,
    meets: O,
) -> BracketSearch<T>
where
    T: Send,
    M: Fn(f64) -> T + Sync,
    O: Fn(&T) -> bool,
{
    assert!(
        start.is_finite() && start > 0.0,
        "start point must be positive"
    );
    let wave = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 4);

    let mut points: Vec<(f64, T)> = Vec::new();
    let mut best: Option<usize> = None;
    let mut lo = 0.0f64;
    let mut next = start;
    let mut measured = 0usize;
    let mut failed_at: Option<f64> = None;
    while measured < max_doublings && failed_at.is_none() {
        let count = wave.min(max_doublings - measured);
        let xs: Vec<f64> = (0..count).map(|j| next * (1u64 << j) as f64).collect();
        let outcomes = parallel_map_indexed(count, |j| measure(xs[j]));
        for (&x, t) in xs.iter().zip(outcomes) {
            measured += 1;
            let ok = meets(&t);
            points.push((x, t));
            if ok {
                best = Some(points.len() - 1);
                lo = x;
            } else {
                failed_at = Some(x);
                break;
            }
        }
        next = lo * 2.0;
    }
    // The bracket top: the first failing point, or (with every doubling
    // passing) the unmeasured next candidate — exactly the serial bracket.
    let mut hi = failed_at.unwrap_or(lo * 2.0);

    if lo > 0.0 || (bisect_from_zero && failed_at.is_some()) {
        for _ in 0..bisections {
            let mid = 0.5 * (lo + hi);
            let t = measure(mid);
            let ok = meets(&t);
            points.push((mid, t));
            if ok {
                best = Some(points.len() - 1);
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    BracketSearch { points, best }
}

/// Result of a latency-bounded-throughput search.
#[derive(Debug, Clone)]
pub struct ThroughputSearch {
    /// The highest SLA-meeting throughput found, queries/second.
    pub latency_bounded_qps: f64,
    /// Every operating point measured along the way.
    pub points: Vec<ThroughputPoint>,
}

/// Finds the server's latency-bounded throughput: doubling to bracket the
/// saturation rate (the independent doubling points run **in parallel**
/// through the bounded worker pool, see [`parallel_doubling_search`]), then
/// bisecting. `start_qps` seeds the search (any value well below saturation
/// works; capacity hints come from [`capacity_hint_qps`]).
///
/// # Panics
///
/// Panics if `start_qps` is not positive and finite.
#[must_use]
pub fn search_latency_bounded_throughput(
    server: &InferenceServer,
    dist: &BatchDistribution,
    cfg: &SweepConfig,
    start_qps: f64,
) -> ThroughputSearch {
    let target_ms = cfg.sla_ms();
    let search = parallel_doubling_search(
        start_qps,
        20,
        7,
        false,
        |rate| measure_point(server, dist, rate, cfg),
        |p: &ThroughputPoint| p.meets_target(target_ms),
    );
    let points: Vec<ThroughputPoint> = search.points.into_iter().map(|(_, p)| p).collect();
    ThroughputSearch {
        latency_bounded_qps: latency_bounded_throughput(&points, target_ms),
        points,
    }
}

/// A back-of-envelope capacity estimate
/// ([`ProfileTable::capacity_qps`](paris_core::ProfileTable::capacity_qps)
/// over the server's partitions). Useful as the `start_qps` seed for the
/// throughput search.
#[must_use]
pub fn capacity_hint_qps(server: &InferenceServer, dist: &BatchDistribution) -> f64 {
    server.table().capacity_qps(server.partitions(), dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{SchedulerKind, ServerConfig};
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    use paris_core::ProfileTable;

    fn server(partitions: Vec<ProfileSize>) -> InferenceServer {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
        InferenceServer::new(partitions, table, ServerConfig::new(SchedulerKind::Fifs))
    }

    fn cfg(server: &InferenceServer) -> SweepConfig {
        SweepConfig::new(0.5, 3, server.table().sla_target_ns(1.5))
    }

    #[test]
    fn sweep_measures_every_rate_in_order() {
        let s = server(vec![ProfileSize::G2; 3]);
        let dist = BatchDistribution::paper_default();
        let points = rate_sweep(&s, &dist, &[20.0, 60.0, 120.0], &cfg(&s));
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].offered_qps, 20.0);
        assert_eq!(points[2].offered_qps, 120.0);
    }

    #[test]
    fn p95_grows_with_offered_load() {
        let s = server(vec![ProfileSize::G1; 2]);
        let dist = BatchDistribution::paper_default();
        let c = cfg(&s);
        let light = measure_point(&s, &dist, 10.0, &c);
        let crushing = measure_point(&s, &dist, 5_000.0, &c);
        assert!(crushing.p95_ms > light.p95_ms * 2.0);
    }

    #[test]
    fn search_finds_positive_capacity() {
        let s = server(vec![ProfileSize::G2; 4]);
        let dist = BatchDistribution::paper_default();
        let c = cfg(&s);
        let hint = capacity_hint_qps(&s, &dist);
        let result = search_latency_bounded_throughput(&s, &dist, &c, hint * 0.25);
        assert!(result.latency_bounded_qps > 0.0);
        assert!(!result.points.is_empty());
        // The found throughput can't exceed the best achieved point.
        let best = result
            .points
            .iter()
            .map(|p| p.achieved_qps)
            .fold(0.0, f64::max);
        assert!(result.latency_bounded_qps <= best + 1e-9);
    }

    #[test]
    fn more_partitions_more_throughput() {
        let small = server(vec![ProfileSize::G2; 2]);
        let big = server(vec![ProfileSize::G2; 8]);
        let dist = BatchDistribution::paper_default();
        let c = cfg(&small);
        let hint = capacity_hint_qps(&small, &dist);
        let a = search_latency_bounded_throughput(&small, &dist, &c, hint * 0.25);
        let b = search_latency_bounded_throughput(&big, &dist, &c, hint * 0.25);
        assert!(b.latency_bounded_qps > a.latency_bounded_qps);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map_indexed(100, |i| i * i);
        assert_eq!(out.len(), 100);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        assert!(parallel_map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn parallel_search_matches_serial_semantics() {
        // A synthetic monotone criterion with a known threshold: the
        // parallel doubling phase must localize it exactly like the serial
        // loop — same measured points, same order, same bracket.
        let threshold = 37.0;
        let search = parallel_doubling_search(1.0, 20, 7, false, |x| x, |&x: &f64| x <= threshold);
        // Serial reference.
        let (mut lo, mut hi, mut serial) = (0.0f64, 1.0f64, Vec::new());
        for _ in 0..20 {
            serial.push(hi);
            if hi <= threshold {
                lo = hi;
                hi *= 2.0;
            } else {
                break;
            }
        }
        for _ in 0..7 {
            let mid = 0.5 * (lo + hi);
            serial.push(mid);
            if mid <= threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let xs: Vec<f64> = search.points.iter().map(|&(x, _)| x).collect();
        assert_eq!(xs, serial);
        assert_eq!(search.best_x(), lo);
        assert!(search.best_x() <= threshold);
        assert!(threshold < search.best_x() * 1.02, "7 bisections localize");
    }

    #[test]
    fn failing_start_gives_up_or_bisects_down() {
        // Without bisect_from_zero a failing seed ends the search at zero.
        let s = parallel_doubling_search(8.0, 6, 6, false, |x| x, |&x: &f64| x < 1.0);
        assert_eq!(s.best_x(), 0.0);
        assert!(s.best().is_none());
        assert_eq!(s.points.len(), 1);
        // With it, the search localizes the threshold inside (0, start).
        let s = parallel_doubling_search(8.0, 6, 6, true, |x| x, |&x: &f64| x < 1.0);
        assert!(s.best_x() > 0.0 && s.best_x() < 1.0);
    }

    #[test]
    fn capacity_hint_is_finite_positive() {
        let s = server(vec![ProfileSize::G1, ProfileSize::G7]);
        let dist = BatchDistribution::paper_default();
        let hint = capacity_hint_qps(&s, &dist);
        assert!(hint.is_finite() && hint > 0.0);
    }
}
