//! # inference-server — the simulated reconfigurable multi-GPU server
//!
//! A deterministic discrete-event simulation of the paper's testbed: a
//! serial frontend feeding MIG partitions through either the FIFS baseline
//! or ELSA, with the profiled latency table as ground-truth service time.
//!
//! * [`DispatchCore`] — the **one** dispatch/complete/drain engine every
//!   layer instantiates (single-model = one identity group; multi-model =
//!   one group per model; cluster = many cores in one DES), including the
//!   step-wise executor for rolling reconfiguration schedules,
//! * [`InferenceServer`] / [`ServerConfig`] / [`RunReport`] — run query
//!   traces through a partitioned server,
//! * [`MultiModelServer`] / [`ModelSpec`] / [`ReplanPolicy`] — many
//!   models over a shared, reconfigurable partition pool, with
//!   drift-triggered online PARIS re-planning mid-run,
//! * [`rate_sweep`] / [`search_latency_bounded_throughput`] — the
//!   measurement procedures behind Figures 11–13,
//! * [`Testbed`] / [`DesignPoint`] — the six evaluated designs with the
//!   Table I budgets,
//! * [`Gantt`] — Figure 5/10-style execution timelines.
//!
//! # Hot path invariants
//!
//! The per-query dispatch path is allocation-free and O(log P) in the
//! partition count once warm; sweeps run at [`ReportDetail::Summary`] so a
//! measurement's memory is O(1) in the trace length. Every fast-path
//! shortcut is paired with a pure reference implementation and an
//! equivalence contract checked by tests:
//!
//! * [`InferenceServer::run`] (streamed arrivals, keyed event order,
//!   incremental ELSA state) must produce reports **bit-for-bit** equal to
//!   [`InferenceServer::run_reference`] (whole trace pre-loaded, fresh
//!   snapshots + pure `Elsa::place` per query) under
//!   [`ReportDetail::Full`].
//! * `paris_core::Elsa::place_mut` over a `paris_core::ElsaState` must
//!   return the same decision — including tie-breaks — as `Elsa::place`
//!   over snapshots taken at the same instant.
//!
//! Anyone optimizing this path further should extend those cross-checks
//! rather than replace them: the reference implementations define the
//! semantics.
//!
//! ```
//! use dnn_zoo::ModelKind;
//! use inference_server::{DesignPoint, Testbed};
//! use inference_workload::TraceGenerator;
//!
//! let bed = Testbed::paper_default(ModelKind::ResNet50);
//! let server = bed.server(DesignPoint::ParisElsa)?;
//! let trace = TraceGenerator::new(100.0, bed.distribution().clone(), 42)
//!     .generate_for(0.2);
//! let report = server.run(&trace);
//! assert!(report.p95_ms() > 0.0);
//! # Ok::<(), paris_core::PlanError>(())
//! ```

mod designs;
mod dispatch;
mod gantt;
mod multi;
mod query;
mod server;
mod sweep;
mod worker;

pub use designs::{paper_budgets, DesignPoint, Testbed};
pub use dispatch::{CoreConfig, DispatchCore, GroupSpec, ShardEvent};
pub use gantt::{Gantt, OutageSpan, Span};
pub use multi::{
    split_budget, ModelReport, ModelSpec, MultiModelConfig, MultiModelServer, MultiRunReport,
    ReconfigEvent, ReplanPolicy, ReplanRequest, ShardEngine,
};
pub use query::{Query, QueryId, QueryRecord};
pub use server::{InferenceServer, ReportDetail, RunReport, SchedulerKind, ServerConfig};
pub use sweep::{
    capacity_hint_qps, measure_point, parallel_doubling_search, parallel_map_indexed, rate_sweep,
    search_latency_bounded_throughput, BracketSearch, SweepConfig, ThroughputSearch,
};
pub use worker::PartitionWorker;
