//! Multi-model serving over a shared partition pool, with online PARIS
//! re-planning under traffic drift.
//!
//! A production reconfigurable server rarely hosts one model: ParvaGPU-style
//! deployments co-locate many inference services on spatially shared GPUs,
//! and Aryl-style cluster schedulers re-plan capacity as load shifts. This
//! module brings both to the simulator:
//!
//! * [`MultiModelServer`] hosts one [`ModelSpec`] per model — its own
//!   [`ProfileTable`], batch distribution, scheduling policy and SLA — over
//!   a shared GPC budget. The budget is split across models
//!   ([`split_budget`]) and PARIS plans each model's partition group
//!   independently; queries ([`TaggedQuerySpec`]) route to their model's
//!   group through **per-model scheduler state** (an `ElsaState` or FIFS
//!   idle set per group), preserving the allocation-free O(log P) dispatch
//!   of the single-model fast path.
//! * With a [`ReplanPolicy`], a windowed [`DriftDetector`] watches the
//!   arrival stream; when a model's rate or batch mix drifts, PARIS
//!   re-plans from the **observed** distributions and the server
//!   reconfigures mid-run: unchanged instances keep serving untouched,
//!   removed instances are *quiesced* (they finish their current query and
//!   local queue, accepting nothing new), and once the last one drains the
//!   DES charges the MIG reslice downtime ([`ResliceCostModel`]) before the
//!   new instances come online.
//!
//! # Degeneration contract
//!
//! With a single model and no replan policy, a `MultiModelServer` run is
//! **bit-for-bit identical** to [`InferenceServer::run_stream`] over the
//! same partitions, table and configuration — same records, same latency
//! samples, same utilization. `tests/properties.rs` enforces this, which
//! pins the multi-model dispatch path to the single-model semantics the
//! PR-1 equivalence contract already guards.
//!
//! # Conservation contract
//!
//! A mid-run re-plan never drops or double-serves a query: quiesced
//! partitions drain their in-flight work, queries that arrive for a group
//! with no active instances wait in a stash until the reconfiguration
//! completes, and every accepted query completes exactly once. Unit tests
//! below and the property suite enforce this.

use std::collections::VecDeque;

use des_engine::{SimDuration, SimTime, Simulation};
use inference_workload::{
    BatchDistribution, DriftDetector, DriftDetectorConfig, DriftReport, TaggedQuerySpec,
};
use mig_gpu::{ProfileSize, ResliceCostModel};
use paris_core::{
    plan_diff, Elsa, ElsaState, GpcBudget, LoadSet, Paris, PlanDiff, PlanError, ProfileTable,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use server_metrics::{LatencyHistogram, LatencyRecorder};

use crate::gantt::{Gantt, Span};
use crate::query::{Query, QueryId, QueryRecord};
use crate::server::{noisy_service_duration, ReportDetail, SchedulerKind};
use crate::worker::PartitionWorker;

/// Everything the server needs to host one model.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Human-readable name, used in reports and benchmark output.
    pub name: String,
    /// The model's profiled latency table (must cover every size PARIS may
    /// pick, i.e. be profiled over [`ProfileSize::ALL`]).
    pub table: ProfileTable,
    /// The batch distribution used for *initial* planning (re-plans use
    /// observed distributions).
    pub dist: BatchDistribution,
    /// Relative share of the GPC budget at initial planning time.
    pub weight: f64,
    /// The scheduling policy for this model's partition group.
    pub scheduler: SchedulerKind,
    /// SLA target for exact per-model violation counting, if any.
    pub sla_ns: Option<u64>,
}

impl ModelSpec {
    /// A model served by ELSA at the paper-default SLA (1.5× the max-batch
    /// latency on the largest partition), with unit budget weight.
    #[must_use]
    pub fn new(name: impl Into<String>, table: ProfileTable, dist: BatchDistribution) -> Self {
        let sla = table.sla_target_ns(1.5);
        ModelSpec {
            name: name.into(),
            table,
            dist,
            weight: 1.0,
            scheduler: SchedulerKind::Elsa(paris_core::ElsaConfig::new(sla)),
            sla_ns: Some(sla),
        }
    }

    /// Overrides the initial budget weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.weight = weight;
        self
    }

    /// Overrides the scheduling policy.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Overrides the SLA target used for exact violation counting.
    #[must_use]
    pub fn with_sla_ns(mut self, sla_ns: u64) -> Self {
        self.sla_ns = Some(sla_ns);
        self
    }

    /// The budget-share weight this model's observed traffic demands:
    /// `rate ×` its mean profiled latency on the largest partition under
    /// `dist` (≈ full-GPU-seconds per second), floored at a tiny positive
    /// value so a silent model still gets a sliver of budget.
    ///
    /// One formula shared by the drift re-planner and cluster loan
    /// controllers, so their budget splits can never silently diverge.
    #[must_use]
    pub fn demand_weight(&self, dist: &BatchDistribution, rate_qps: f64) -> f64 {
        let big = self.table.largest_size();
        let mean_latency_s: f64 = (1..=self.table.max_batch())
            .map(|b| dist.pmf(b) * self.table.latency_s(big, b))
            .sum();
        (rate_qps * mean_latency_s).max(1e-9)
    }
}

/// When and how the server re-plans mid-run.
#[derive(Debug, Clone)]
pub struct ReplanPolicy {
    /// The drift trigger.
    pub detector: DriftDetectorConfig,
    /// The MIG reslice downtime model the DES charges per reconfiguration.
    pub cost: ResliceCostModel,
}

impl ReplanPolicy {
    /// A policy with the given detection window (seconds), the default
    /// ±50 % drift threshold and the A100 reslice cost model.
    #[must_use]
    pub fn new(window_s: f64) -> Self {
        ReplanPolicy {
            detector: DriftDetectorConfig::new(window_s),
            cost: ResliceCostModel::a100_default(),
        }
    }

    /// Overrides the drift detector configuration.
    #[must_use]
    pub fn with_detector(mut self, detector: DriftDetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Overrides the reslice cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: ResliceCostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// Server-level configuration for multi-model runs (the multi-model twin
/// of `ServerConfig`, minus the per-model scheduler, plus the replan
/// policy).
#[derive(Debug, Clone)]
pub struct MultiModelConfig {
    /// Serial frontend service time per query.
    pub frontend_overhead: SimDuration,
    /// Relative stddev of multiplicative service-time noise (0 = exact).
    pub service_noise: f64,
    /// Seed for the service-noise RNG.
    pub noise_seed: u64,
    /// How much per-query material runs keep.
    pub detail: ReportDetail,
    /// Record a per-instance execution Gantt trace (costs memory; off for
    /// sweeps). Instances created by mid-run reconfigurations get their own
    /// timeline rows.
    pub record_gantt: bool,
    /// Online re-planning policy; `None` freezes the initial plan.
    pub replan: Option<ReplanPolicy>,
}

impl MultiModelConfig {
    /// A deterministic configuration with a 20 µs frontend, full detail
    /// and no re-planning.
    #[must_use]
    pub fn new() -> Self {
        MultiModelConfig {
            frontend_overhead: SimDuration::from_micros(20),
            service_noise: 0.0,
            noise_seed: 0,
            detail: ReportDetail::Full,
            record_gantt: false,
            replan: None,
        }
    }

    /// Enables Gantt-trace recording.
    #[must_use]
    pub fn with_gantt(mut self) -> Self {
        self.record_gantt = true;
        self
    }

    /// Overrides the frontend service time.
    #[must_use]
    pub fn with_frontend_overhead(mut self, overhead: SimDuration) -> Self {
        self.frontend_overhead = overhead;
        self
    }

    /// Adds multiplicative service-time noise.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    #[must_use]
    pub fn with_service_noise(mut self, noise: f64, seed: u64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        self.service_noise = noise;
        self.noise_seed = seed;
        self
    }

    /// Sets how much per-query material runs keep.
    #[must_use]
    pub fn with_detail(mut self, detail: ReportDetail) -> Self {
        self.detail = detail;
        self
    }

    /// Enables online re-planning.
    #[must_use]
    pub fn with_replan(mut self, replan: ReplanPolicy) -> Self {
        self.replan = Some(replan);
        self
    }
}

impl Default for MultiModelConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits a shared [`GpcBudget`] across models proportionally to
/// `weights`, guaranteeing every model at least one GPU and one GPC.
/// Models do not share physical GPUs (a deliberate isolation choice: MIG
/// gives spatial isolation *within* a GPU, but keeping model groups on
/// disjoint GPUs makes reslicing one model's group independent of the
/// others).
///
/// # Panics
///
/// Panics if `weights` is empty, longer than the GPU count, or contains a
/// non-positive or non-finite weight.
///
/// # Examples
///
/// ```
/// use paris_core::GpcBudget;
/// use inference_server::split_budget;
///
/// let shares = split_budget(GpcBudget::new(48, 8), &[3.0, 1.0]);
/// assert_eq!(shares.len(), 2);
/// assert_eq!(shares.iter().map(|b| b.total_gpcs).sum::<usize>(), 48);
/// assert_eq!(shares.iter().map(|b| b.num_gpus).sum::<usize>(), 8);
/// assert!(shares[0].total_gpcs > shares[1].total_gpcs);
/// ```
#[must_use]
pub fn split_budget(budget: GpcBudget, weights: &[f64]) -> Vec<GpcBudget> {
    let k = weights.len();
    assert!(k >= 1, "need at least one model");
    assert!(
        k <= budget.num_gpus,
        "{k} models need {k} GPUs, budget has {}",
        budget.num_gpus
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "weights must be positive"
    );
    assert!(
        budget.total_gpcs >= k,
        "budget must afford one GPC per model"
    );

    let gpus = bounded_split(
        budget.num_gpus,
        weights,
        &vec![1; k],
        &vec![budget.num_gpus; k],
    );
    let maxs: Vec<usize> = gpus.iter().map(|&g| g * mig_gpu::COMPUTE_SLICES).collect();
    let gpcs = bounded_split(budget.total_gpcs, weights, &vec![1; k], &maxs);
    gpus.iter()
        .zip(&gpcs)
        .map(|(&g, &c)| GpcBudget::new(c, g))
        .collect()
}

/// Largest-remainder apportionment of `total` units across `weights`,
/// bounded below by `mins` and above by `maxs`. Deterministic: ties go to
/// the lowest index.
fn bounded_split(total: usize, weights: &[f64], mins: &[usize], maxs: &[usize]) -> Vec<usize> {
    let wsum: f64 = weights.iter().sum();
    let mut out = mins.to_vec();
    let assigned: usize = out.iter().sum();
    debug_assert!(assigned <= total, "mins exceed the total");
    let target: Vec<f64> = weights.iter().map(|w| w / wsum * total as f64).collect();
    for _ in 0..total.saturating_sub(assigned) {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..out.len() {
            if out[i] >= maxs[i] {
                continue;
            }
            let deficit = target[i] - out[i] as f64;
            if best.is_none_or(|(d, _)| deficit > d) {
                best = Some((deficit, i));
            }
        }
        match best {
            Some((_, i)) => out[i] += 1,
            None => break,
        }
    }
    out
}

/// One completed mid-run reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// When drift triggered the re-plan (quiescing began).
    pub triggered_at: SimTime,
    /// When the new instances came online (drain + reslice done).
    pub completed_at: SimTime,
    /// Instances quiesced and destroyed.
    pub destroyed: usize,
    /// Instances created.
    pub created: usize,
    /// The charged driver-side reslice downtime (excludes drain, which
    /// plays out in simulated time).
    pub reslice_delay: SimDuration,
}

/// Per-model results of a multi-model run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// The model's name.
    pub name: String,
    /// Queries completed for this model.
    pub completed: u64,
    /// Latency histogram of this model's queries.
    pub histogram: LatencyHistogram,
    /// The SLA target exact violations were counted against, if any.
    pub sla_ns: Option<u64>,
    /// Exact violation count against [`sla_ns`](Self::sla_ns).
    pub sla_violations: u64,
}

impl ModelReport {
    /// p95 tail latency of this model's queries, milliseconds
    /// (bucket-accurate).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.histogram.p95_ms()
    }

    /// Exact fraction of this model's queries that violated its SLA (0
    /// when no SLA is configured or nothing completed).
    #[must_use]
    pub fn sla_violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.sla_violations as f64 / self.completed as f64
        }
    }
}

/// Everything measured during one multi-model run.
#[derive(Debug, Clone)]
pub struct MultiRunReport {
    /// Detail level the run was recorded at.
    pub detail: ReportDetail,
    /// Per-query lifecycle records, completion order (empty under
    /// [`ReportDetail::Summary`]). `partition` indexes
    /// [`partition_sizes`](Self::partition_sizes).
    pub records: Vec<QueryRecord>,
    /// The model of each record, parallel to [`records`](Self::records).
    pub record_models: Vec<usize>,
    /// Exact combined latency samples (empty under summary detail).
    pub latency: LatencyRecorder,
    /// Combined fixed-footprint latency histogram.
    pub histogram: LatencyHistogram,
    /// Per-model breakdown.
    pub per_model: Vec<ModelReport>,
    /// Time from first arrival to last completion.
    pub makespan: SimDuration,
    /// Completed queries divided by the makespan.
    pub achieved_qps: f64,
    /// Busy fraction over the makespan of every partition that ever
    /// existed (including ones destroyed by reconfigurations).
    pub partition_utilization: Vec<f64>,
    /// Size of each partition, parallel to the utilization vector.
    pub partition_sizes: Vec<ProfileSize>,
    /// Owning model of each partition, parallel to the utilization vector.
    pub partition_models: Vec<usize>,
    /// Every completed mid-run reconfiguration, in order.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Per-instance execution trace, when requested via
    /// [`MultiModelConfig::with_gantt`]. Rows index the same space as
    /// [`partition_sizes`](Self::partition_sizes), including instances
    /// created mid-run.
    pub gantt: Option<Gantt>,
    /// High-water mark of the DES event queue (stays O(partitions)).
    pub peak_pending_events: usize,
}

impl MultiRunReport {
    /// Total queries completed across all models.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.histogram.count()
    }

    /// Combined p95 tail latency, milliseconds (exact under
    /// [`ReportDetail::Full`], bucket-accurate under summary).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        match self.detail {
            ReportDetail::Full => self.latency.p95_ms(),
            ReportDetail::Summary => self.histogram.p95_ms(),
        }
    }

    /// The worst per-model exact SLA violation rate (the metric a
    /// latency-bounded multi-model throughput search constrains).
    #[must_use]
    pub fn worst_violation_rate(&self) -> f64 {
        self.per_model
            .iter()
            .map(ModelReport::sla_violation_rate)
            .fold(0.0, f64::max)
    }
}

/// A simulated multi-model inference server over a shared, reconfigurable
/// partition pool — see the source module's documentation for the serving
/// and re-planning model, and the degeneration/conservation contracts.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{GpcBudget, ProfileTable};
/// use inference_server::{ModelSpec, MultiModelConfig, MultiModelServer};
///
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let dist = BatchDistribution::paper_default();
/// let spec = |kind: ModelKind| {
///     let table = ProfileTable::profile(&kind.build(), &perf, &ProfileSize::ALL, 32);
///     ModelSpec::new(format!("{kind}"), table, dist.clone())
/// };
/// let server = MultiModelServer::new(
///     vec![spec(ModelKind::MobileNet), spec(ModelKind::ResNet50)],
///     GpcBudget::new(48, 8),
///     MultiModelConfig::new(),
/// )?;
/// let trace = MultiTraceGenerator::new(
///     vec![PhaseSpec::new(0.3, vec![(200.0, dist.clone()), (100.0, dist)])],
///     7,
/// );
/// let report = server.run_stream(trace.stream(), Default::default());
/// assert_eq!(report.completed(), report.records.len() as u64);
/// assert_eq!(report.per_model.len(), 2);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiModelServer {
    models: Vec<ModelSpec>,
    groups: Vec<Vec<ProfileSize>>,
    budget: GpcBudget,
    config: MultiModelConfig,
}

impl MultiModelServer {
    /// Plans the initial per-model partition groups: the budget is split
    /// by [`split_budget`] over the model weights and PARIS plans each
    /// model's share against its declared distribution.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from any model's PARIS run.
    pub fn plan_groups(
        models: &[ModelSpec],
        budget: GpcBudget,
    ) -> Result<Vec<Vec<ProfileSize>>, PlanError> {
        let weights: Vec<f64> = models.iter().map(|m| m.weight).collect();
        let budgets = split_budget(budget, &weights);
        models
            .iter()
            .zip(budgets)
            .map(|(m, b)| Ok(Paris::new(&m.table, &m.dist).plan(b)?.partitions()))
            .collect()
    }

    /// Creates a server with PARIS-planned initial groups.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the initial planning pass.
    pub fn new(
        models: Vec<ModelSpec>,
        budget: GpcBudget,
        config: MultiModelConfig,
    ) -> Result<Self, PlanError> {
        let groups = Self::plan_groups(&models, budget)?;
        Ok(Self::with_groups(models, groups, budget, config))
    }

    /// Creates a server with explicit per-model partition groups (tests,
    /// baselines, and the single-model degeneration contract).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty, `groups` does not match it one-to-one,
    /// any group is empty, or a [`ReplanPolicy`] is configured over a
    /// budget that cannot be split across the models (fewer GPUs or GPCs
    /// than models) — re-planning would hit that wall mid-run otherwise.
    #[must_use]
    pub fn with_groups(
        models: Vec<ModelSpec>,
        groups: Vec<Vec<ProfileSize>>,
        budget: GpcBudget,
        config: MultiModelConfig,
    ) -> Self {
        assert!(!models.is_empty(), "server needs at least one model");
        assert_eq!(models.len(), groups.len(), "one group per model");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "every model needs at least one partition"
        );
        if config.replan.is_some() {
            // Fail at construction, not at the first drift trigger: a
            // re-plan splits the budget across models and needs one GPU
            // and one GPC per model.
            assert!(
                models.len() <= budget.num_gpus && models.len() <= budget.total_gpcs,
                "replanning {} models needs at least that many GPUs and GPCs, budget is {budget}",
                models.len()
            );
        }
        MultiModelServer {
            models,
            groups,
            budget,
            config,
        }
    }

    /// The hosted models.
    #[must_use]
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// The initial per-model partition groups.
    #[must_use]
    pub fn groups(&self) -> &[Vec<ProfileSize>] {
        &self.groups
    }

    /// The shared GPC budget.
    #[must_use]
    pub fn budget(&self) -> GpcBudget {
        self.budget
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &MultiModelConfig {
        &self.config
    }

    /// A back-of-envelope planned-capacity estimate: the sum over every
    /// model of [`ProfileTable::capacity_qps`] for its planned group under
    /// its declared distribution, queries/second. A cluster router
    /// weighting shards by planned capacity reads this.
    #[must_use]
    pub fn capacity_hint_qps(&self) -> f64 {
        self.models
            .iter()
            .zip(&self.groups)
            .map(|(spec, group)| spec.table.capacity_qps(group, &spec.dist))
            .sum()
    }

    /// Simulates the server over a materialized tagged trace.
    #[must_use]
    pub fn run(&self, trace: &[TaggedQuerySpec]) -> MultiRunReport {
        self.run_stream(trace.iter().copied(), self.config.detail)
    }

    /// Simulates the server over a *streamed* tagged arrival sequence
    /// (ascending arrival times) until every accepted query completes.
    #[must_use]
    pub fn run_stream<I>(&self, arrivals: I, detail: ReportDetail) -> MultiRunReport
    where
        I: IntoIterator<Item = TaggedQuerySpec>,
    {
        let mut arrivals = arrivals.into_iter();
        let n: usize = self.groups.iter().map(Vec::len).sum();
        // Steady state: ≤ one completion per partition + the next streamed
        // arrival + a possible reconfiguration event.
        let mut sim: Simulation<ShardEvent> = Simulation::with_capacity(n + 3);
        let mut engine = ShardEngine::new(self, detail);
        if let Some(tq) = arrivals.next() {
            engine.offer(tq, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        while let Some((now, event)) = sim.next_event() {
            // Keep the pipeline primed: handling a dispatch is the moment
            // its successor enters the queue, so pending stays O(P).
            if matches!(event, ShardEvent::Dispatch(..)) {
                if let Some(tq) = arrivals.next() {
                    engine.offer(tq, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
                }
            }
            engine.handle(now, event, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        engine.finish(sim.peak_pending())
    }
}

/// Events driving one shard's simulation.
///
/// Public so an external driver can own the event loop: a cluster hosting
/// many shards inside one DES wraps each shard's events with its shard
/// index and routes them back to the owning [`ShardEngine`]. The
/// single-shard driver is [`MultiModelServer::run_stream`].
#[derive(Debug, Clone, Copy)]
pub enum ShardEvent {
    /// The frontend finished preparing a query for the model with this
    /// index.
    Dispatch(Query, usize),
    /// A partition finished its current query.
    Complete {
        /// The worker-slot index within the shard (indexes the report's
        /// partition vectors).
        worker: usize,
    },
    /// Drain + reslice finished: bring the new instances online.
    ReconfigReady,
}

/// Same-instant ordering mirrors the single-model engine: dispatches (by
/// query id) before completions (by scheduling order); a reconfiguration
/// completion goes last.
const COMPLETE_KEY_BASE: u64 = 1 << 63;
const RECONFIG_KEY: u64 = u64::MAX;

/// Inputs of an externally imposed re-plan
/// ([`ShardEngine::force_replan`]) — how a cluster loan controller tells a
/// shard to re-plan onto a changed budget.
#[derive(Debug, Clone, Copy)]
pub struct ReplanRequest<'a> {
    /// The budget the shard must adopt and re-plan onto.
    pub budget: GpcBudget,
    /// Per-model budget-share weights (a loan controller passes shares
    /// derived from its observed traffic, or the declared model weights).
    pub weights: &'a [f64],
    /// Per-model planning distributions (observed, or declared).
    pub dists: &'a [BatchDistribution],
    /// Prices the reslice of whatever `plan_diff` the transition implies.
    pub cost: &'a ResliceCostModel,
    /// Added on top of the reslice delay — e.g. the whole-GPU handover
    /// charge of a capacity loan
    /// ([`ResliceCostModel::gpu_handover_ns`]).
    pub extra_downtime: SimDuration,
}

/// One partition's identity and lifecycle within a run.
#[derive(Debug)]
struct WorkerSlot {
    worker: PartitionWorker,
    model: usize,
    /// Index within the owning group's member list (meaningless while
    /// retiring/retired).
    local: usize,
    /// Quiesced by a re-plan: finishes in-flight work, accepts nothing.
    retiring: bool,
}

/// Per-model scheduler runtime over the group's member partitions.
struct GroupRuntime {
    /// Global worker indices of the active members.
    members: Vec<usize>,
    /// ELSA runtime (decision core + incremental state over *local*
    /// member indices), when the model schedules with ELSA.
    elsa: Option<(Elsa, ElsaState)>,
    /// FIFS idle set, keyed `(idle_since, local index)`.
    fifs_idle: LoadSet,
    /// FIFS central queue.
    central: VecDeque<Query>,
    /// Queries that arrived while the group had no active members
    /// (mid-reconfiguration); dispatched when the new instances come
    /// online.
    stash: VecDeque<Query>,
}

/// An in-flight reconfiguration: quiescing until `draining` hits zero,
/// then a reslice of `delay`, then `added` comes online.
struct ReconfigInFlight {
    triggered_at: SimTime,
    delay: SimDuration,
    draining: usize,
    added: Vec<(usize, ProfileSize)>,
    destroyed: usize,
    created: usize,
}

struct ModelAccum {
    completed: u64,
    histogram: LatencyHistogram,
    sla_violations: u64,
}

/// One shard's mutable serving state, decoupled from the event loop.
///
/// This is the multi-model engine behind [`MultiModelServer::run_stream`],
/// exposed so a *cluster* can host several shards inside one shared DES:
/// the driver owns the `Simulation`, injects arrivals ([`offer`]) and feeds
/// popped events back ([`handle`]) through a scheduling callback
/// `(fire_time, tie_break_key, event)`. Everything else — per-model
/// scheduler state, drift detection, quiesce/drain reconfiguration,
/// accounting — lives here, so a one-shard cluster is *bit-for-bit* the
/// single-server run.
///
/// Cluster-facing hooks beyond the event plumbing:
///
/// * [`outstanding_queries`] — offered-but-uncompleted load, the signal a
///   join-shortest-queue router balances on;
/// * [`force_replan`] — re-plan onto an externally imposed budget (an
///   Aryl-style capacity loan or reclaim), with the transition priced
///   through the same `plan_diff` + [`ResliceCostModel`] machinery as
///   drift-triggered re-plans;
/// * [`reconfig_in_flight`] — whether a transition is mid-drain (loans
///   must wait, or they would compound two reconfigurations).
///
/// [`offer`]: Self::offer
/// [`handle`]: Self::handle
/// [`outstanding_queries`]: Self::outstanding_queries
/// [`force_replan`]: Self::force_replan
/// [`reconfig_in_flight`]: Self::reconfig_in_flight
pub struct ShardEngine<'a> {
    server: &'a MultiModelServer,
    detail: ReportDetail,
    /// The budget the *next* re-plan splits. Starts at the server's budget;
    /// capacity loans move it.
    budget: GpcBudget,
    slots: Vec<WorkerSlot>,
    /// Borrowed latency row and max batch per slot (from the owning
    /// model's table) — one slice index per estimate, as in the
    /// single-model engine.
    rows: Vec<&'a [u64]>,
    max_batch: Vec<usize>,
    groups: Vec<GroupRuntime>,
    detector: Option<DriftDetector>,
    reconfig: Option<ReconfigInFlight>,
    reconfigs: Vec<ReconfigEvent>,
    noise_rng: StdRng,
    gantt: Option<Gantt>,
    records: Vec<QueryRecord>,
    record_models: Vec<usize>,
    latency: LatencyRecorder,
    histogram: LatencyHistogram,
    per_model: Vec<ModelAccum>,
    /// Instant of the most recent completion — the makespan endpoint. The
    /// DES clock itself can outlive it (a trailing `ReconfigReady` fires
    /// one reslice delay after the last drain), and charging that idle
    /// tail to the makespan would bias throughput/utilization against
    /// re-planning runs.
    last_completion: SimTime,
    frontend_free: SimTime,
    next_query_id: u64,
    next_complete_key: u64,
}

impl<'a> ShardEngine<'a> {
    /// Builds the engine for one run of `server` at the given detail.
    #[must_use]
    pub fn new(server: &'a MultiModelServer, detail: ReportDetail) -> Self {
        let mut slots = Vec::new();
        let mut rows = Vec::new();
        let mut max_batch = Vec::new();
        let mut groups = Vec::new();
        for (m, sizes) in server.groups.iter().enumerate() {
            let table = &server.models[m].table;
            let mut members = Vec::with_capacity(sizes.len());
            for &size in sizes {
                members.push(slots.len());
                slots.push(WorkerSlot {
                    worker: PartitionWorker::new(size),
                    model: m,
                    local: 0,
                    retiring: false,
                });
                rows.push(table.latency_row(size));
                max_batch.push(table.max_batch());
            }
            groups.push(GroupRuntime {
                members,
                elsa: None,
                fifs_idle: LoadSet::new(),
                central: VecDeque::new(),
                stash: VecDeque::new(),
            });
        }
        let detector = server.config.replan.as_ref().map(|rp| {
            let max_b = server
                .models
                .iter()
                .map(|m| m.table.max_batch())
                .max()
                .expect("at least one model");
            DriftDetector::new(server.models.len(), max_b, rp.detector)
        });
        let gantt = server
            .config
            .record_gantt
            .then(|| Gantt::new(slots.iter().map(|s| s.worker.size()).collect()));
        let mut engine = ShardEngine {
            server,
            detail,
            budget: server.budget,
            slots,
            rows,
            max_batch,
            groups,
            detector,
            reconfig: None,
            reconfigs: Vec::new(),
            noise_rng: StdRng::seed_from_u64(server.config.noise_seed),
            gantt,
            records: Vec::new(),
            record_models: Vec::new(),
            latency: LatencyRecorder::new(),
            histogram: LatencyHistogram::new(),
            per_model: server
                .models
                .iter()
                .map(|_| ModelAccum {
                    completed: 0,
                    histogram: LatencyHistogram::new(),
                    sla_violations: 0,
                })
                .collect(),
            last_completion: SimTime::ZERO,
            frontend_free: SimTime::ZERO,
            next_query_id: 0,
            next_complete_key: COMPLETE_KEY_BASE,
        };
        for m in 0..engine.groups.len() {
            engine.rebuild_group(m);
        }
        engine
    }

    /// Rebuilds group `m`'s scheduler state from its current members'
    /// worker occupancy. O(group · log group); called only at construction
    /// and at reconfiguration edges, never on the per-query path.
    ///
    /// `ElsaState` is pure derived state — replaying each member's current
    /// execution (`begin`) and queued estimates (`enqueue`) reconstructs
    /// it exactly, so surviving partitions keep serving across a re-plan
    /// with their queues intact.
    fn rebuild_group(&mut self, m: usize) {
        let members = self.groups[m].members.clone();
        for (local, &w) in members.iter().enumerate() {
            self.slots[w].local = local;
        }
        let sizes: Vec<ProfileSize> = members
            .iter()
            .map(|&w| self.slots[w].worker.size())
            .collect();
        match &self.server.models[m].scheduler {
            SchedulerKind::Elsa(cfg) => {
                let mut state = ElsaState::new(&sizes);
                for (local, &w) in members.iter().enumerate() {
                    let worker = &self.slots[w].worker;
                    if let Some(end) = worker.busy_until() {
                        state.begin(local, end.as_nanos());
                        for est in worker.queued_estimates() {
                            state.enqueue(local, est.as_nanos());
                        }
                    }
                }
                self.groups[m].elsa = Some((Elsa::new(*cfg), state));
            }
            SchedulerKind::Fifs => {
                let mut idle = LoadSet::with_capacity(members.len());
                for (local, &w) in members.iter().enumerate() {
                    let worker = &self.slots[w].worker;
                    if worker.is_idle() {
                        idle.insert((worker.idle_since().as_nanos(), local as u32));
                    }
                }
                self.groups[m].fifs_idle = idle;
            }
        }
    }

    /// Profiled execution estimate for `batch` on slot `w`.
    #[inline]
    fn estimate_ns(&self, w: usize, batch: usize) -> u64 {
        self.rows[w][batch.clamp(1, self.max_batch[w]) - 1]
    }

    /// Offers one tagged arrival to the shard's serial frontend, scheduling
    /// its [`ShardEvent::Dispatch`] through `sched`. Arrivals must be
    /// offered in non-decreasing arrival order.
    pub fn offer(&mut self, tq: TaggedQuerySpec, sched: &mut impl FnMut(SimTime, u64, ShardEvent)) {
        let arrival = SimTime::from_nanos(tq.spec.arrival_ns);
        let begin = arrival.max(self.frontend_free);
        let dispatched = begin + self.server.config.frontend_overhead;
        self.frontend_free = dispatched;
        let id = self.next_query_id;
        self.next_query_id += 1;
        sched(
            dispatched,
            id,
            ShardEvent::Dispatch(
                Query {
                    id: QueryId(id),
                    batch: tq.spec.batch,
                    arrival,
                    dispatched,
                },
                tq.model,
            ),
        );
    }

    /// Handles one popped event. The driver must pass every event this
    /// engine scheduled (and only those) back in pop order.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: ShardEvent,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        match event {
            ShardEvent::Dispatch(query, model) => self.on_dispatch(query, model, now, sched),
            ShardEvent::Complete { worker } => self.on_complete(worker, now, sched),
            ShardEvent::ReconfigReady => self.on_reconfig_ready(now, sched),
        }
    }

    /// Queries offered to the frontend but not yet completed — the
    /// outstanding-load signal a join-shortest-queue cluster router
    /// balances on.
    #[must_use]
    pub fn outstanding_queries(&self) -> u64 {
        self.next_query_id - self.histogram.count()
    }

    /// Whether a reconfiguration (drift re-plan or capacity loan) is
    /// currently draining or waiting out its reslice.
    #[must_use]
    pub fn reconfig_in_flight(&self) -> bool {
        self.reconfig.is_some()
    }

    /// The budget the next re-plan will split (moves with capacity loans).
    #[must_use]
    pub fn budget(&self) -> GpcBudget {
        self.budget
    }

    /// Starts `query` on slot `w` at `now` and schedules its completion.
    /// Active slots also update their group's scheduler state; retiring
    /// slots are outside every group and only drain.
    fn begin(
        &mut self,
        w: usize,
        query: Query,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let base = self.estimate_ns(w, query.batch);
        let duration =
            noisy_service_duration(self.server.config.service_noise, base, &mut self.noise_rng);
        let end = self.slots[w].worker.begin(query, now, duration);
        if !self.slots[w].retiring {
            let (m, local) = (self.slots[w].model, self.slots[w].local);
            if let Some((_, state)) = &mut self.groups[m].elsa {
                state.begin(local, end.as_nanos());
            }
        }
        let key = self.next_complete_key;
        self.next_complete_key += 1;
        sched(end, key, ShardEvent::Complete { worker: w });
    }

    /// Routes `query` to model `m`'s group — the same O(log P) decision
    /// path as the single-model engine, against per-model state.
    fn route(
        &mut self,
        query: Query,
        m: usize,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        if self.groups[m].members.is_empty() {
            // Mid-reconfiguration with the whole group quiesced: hold the
            // query until the new instances come online.
            self.groups[m].stash.push_back(query);
            return;
        }
        if self.groups[m].elsa.is_some() {
            let local = {
                let table = &self.server.models[m].table;
                let (elsa, state) = self.groups[m].elsa.as_mut().expect("elsa mode");
                elsa.place_mut(query.batch, table, state, now.as_nanos())
                    .partition()
            };
            let w = self.groups[m].members[local];
            if self.slots[w].worker.is_idle() {
                self.begin(w, query, now, sched);
            } else {
                let est = self.estimate_ns(w, query.batch);
                self.slots[w]
                    .worker
                    .enqueue(query, SimDuration::from_nanos(est));
                self.groups[m]
                    .elsa
                    .as_mut()
                    .expect("elsa mode")
                    .1
                    .enqueue(local, est);
            }
        } else {
            match self.groups[m].fifs_idle.first() {
                Some((idle_since, local)) => {
                    self.groups[m].fifs_idle.remove((idle_since, local));
                    let w = self.groups[m].members[local as usize];
                    self.begin(w, query, now, sched);
                }
                None => self.groups[m].central.push_back(query),
            }
        }
    }

    fn on_dispatch(
        &mut self,
        query: Query,
        m: usize,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        if let Some(det) = &mut self.detector {
            let drift = det.observe(m, query.arrival.as_nanos(), query.batch);
            if self.reconfig.is_none() {
                if let Some(report) = drift {
                    self.try_replan(&report, now, sched);
                }
            }
        }
        self.route(query, m, now, sched);
    }

    fn on_complete(
        &mut self,
        w: usize,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        self.last_completion = now;
        let m = self.slots[w].model;
        let (query, started) = self.slots[w].worker.finish(now);
        let latency_ns = (now - query.arrival).as_nanos();
        self.histogram.record(latency_ns);
        let accum = &mut self.per_model[m];
        accum.completed += 1;
        accum.histogram.record(latency_ns);
        if let Some(sla) = self.server.models[m].sla_ns {
            accum.sla_violations += u64::from(latency_ns > sla);
        }
        if self.detail == ReportDetail::Full {
            self.latency.record(latency_ns);
            self.records.push(QueryRecord {
                id: query.id,
                batch: query.batch,
                arrival: query.arrival,
                dispatched: query.dispatched,
                started,
                completed: now,
                partition: w,
            });
            self.record_models.push(m);
        }
        if let Some(g) = &mut self.gantt {
            g.push(Span {
                partition: w,
                query: query.id,
                batch: query.batch,
                start: started,
                end: now,
            });
        }

        if self.slots[w].retiring {
            // A quiesced partition serves out its own local queue, then
            // goes dark; the last drained partition starts the reslice.
            if let Some((q, _est)) = self.slots[w].worker.pop_next() {
                self.begin(w, q, now, sched);
            } else {
                let rc = self
                    .reconfig
                    .as_mut()
                    .expect("retiring implies a reconfig in flight");
                rc.draining -= 1;
                if rc.draining == 0 {
                    let delay = rc.delay;
                    sched(now + delay, RECONFIG_KEY, ShardEvent::ReconfigReady);
                }
            }
            return;
        }

        let local = self.slots[w].local;
        if self.groups[m].elsa.is_some() {
            self.groups[m]
                .elsa
                .as_mut()
                .expect("elsa mode")
                .1
                .finish(local);
            if let Some((q, est)) = self.slots[w].worker.pop_next() {
                self.groups[m]
                    .elsa
                    .as_mut()
                    .expect("elsa mode")
                    .1
                    .dequeue(local, est.as_nanos());
                self.begin(w, q, now, sched);
            }
        } else {
            match self.groups[m].central.pop_front() {
                Some(q) => self.begin(w, q, now, sched),
                None => self.groups[m]
                    .fifs_idle
                    .insert((now.as_nanos(), local as u32)),
            }
        }
    }

    /// Acts on a drift report: re-plans every model from its observed
    /// traffic, quiesces the instances the new plan drops, and arms the
    /// reslice.
    fn try_replan(
        &mut self,
        report: &DriftReport,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let detector = self.detector.as_ref().expect("replan needs a detector");
        let models = &self.server.models;

        // Budget weights from observed demand ([`ModelSpec::demand_weight`]).
        let mut weights = Vec::with_capacity(models.len());
        let mut dists: Vec<BatchDistribution> = Vec::with_capacity(models.len());
        for (m, spec) in models.iter().enumerate() {
            let dist = detector
                .observed_distribution(m)
                .unwrap_or_else(|| spec.dist.clone());
            let rate = report.rates_qps.get(m).copied().unwrap_or(0.0);
            weights.push(spec.demand_weight(&dist, rate));
            dists.push(dist);
        }

        let cost = self
            .server
            .config
            .replan
            .as_ref()
            .expect("replan policy present")
            .cost;
        let started = self.transition_to(
            &ReplanRequest {
                budget: self.budget,
                weights: &weights,
                dists: &dists,
                cost: &cost,
                extra_downtime: SimDuration::ZERO,
            },
            now,
            sched,
        );
        if !started {
            // Traffic moved but the plan is already right: accept the new
            // baseline and keep serving.
            self.detector.as_mut().expect("checked above").rebaseline();
        }
    }

    /// Re-plans the shard onto an externally imposed budget — the
    /// cluster-loaning hook; see [`ReplanRequest`] for the inputs.
    ///
    /// Returns `true` if a reconfiguration actually started. Returns
    /// `false` — leaving serving untouched — when a reconfiguration is
    /// already in flight (the caller should retry after it completes) or
    /// when the new budget plans to the very same layout (the budget is
    /// still adopted for future re-plans, and no downtime is charged: an
    /// empty [`plan_diff`] means no driver call at all).
    ///
    /// # Panics
    ///
    /// Panics if the request's budget cannot be split across the shard's
    /// models (fewer GPUs or GPCs than models) — loan controllers must
    /// never shrink a shard below one GPU per model.
    pub fn force_replan(
        &mut self,
        request: &ReplanRequest<'_>,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        if self.reconfig.is_some() {
            return false;
        }
        let started = self.transition_to(request, now, sched);
        if !started {
            // The budget moved but the layout did not: let the shard's own
            // detector accept current traffic so it does not immediately
            // re-trigger against a stale baseline.
            if let Some(det) = &mut self.detector {
                det.rebaseline();
            }
        }
        started
    }

    /// The shared transition core behind drift re-plans and capacity
    /// loans: adopts the requested budget, plans every model's share
    /// against the requested distributions (falling back to the declared
    /// distribution, then to the current layout, so a degenerate input can
    /// never break serving), diffs against the running layout, quiesces
    /// removals and arms the reslice. Returns whether a reconfiguration
    /// started.
    fn transition_to(
        &mut self,
        request: &ReplanRequest<'_>,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        let ReplanRequest {
            budget,
            weights,
            dists,
            cost,
            extra_downtime,
        } = *request;
        self.budget = budget;
        let models = &self.server.models;
        let budgets = split_budget(budget, weights);
        let current: Vec<Vec<ProfileSize>> = self
            .groups
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|&w| self.slots[w].worker.size())
                    .collect()
            })
            .collect();
        let targets: Vec<Vec<ProfileSize>> = models
            .iter()
            .enumerate()
            .map(|(m, spec)| {
                Paris::new(&spec.table, &dists[m])
                    .plan(budgets[m])
                    .or_else(|_| Paris::new(&spec.table, &spec.dist).plan(budgets[m]))
                    .map(|p| p.partitions())
                    .unwrap_or_else(|_| current[m].clone())
            })
            .collect();

        let diffs: Vec<_> = current
            .iter()
            .zip(&targets)
            .map(|(c, t)| plan_diff(c, t))
            .collect();
        let mut merged = PlanDiff::default();
        for d in &diffs {
            merged.merge(d);
        }
        if merged.is_empty() {
            return false;
        }
        let delay = SimDuration::from_nanos(
            merged
                .downtime_ns(cost)
                .saturating_add(extra_downtime.as_nanos()),
        );

        // Quiesce: per model and size, retire the highest-indexed members
        // first (deterministic), removing them from the group.
        let mut draining = 0usize;
        let mut added: Vec<(usize, ProfileSize)> = Vec::new();
        for (m, diff) in diffs.iter().enumerate() {
            for (&size, &count) in &diff.removed {
                let mut to_retire = count;
                let members = self.groups[m].members.clone();
                for &w in members.iter().rev() {
                    if to_retire == 0 {
                        break;
                    }
                    if self.slots[w].worker.size() == size {
                        self.slots[w].retiring = true;
                        self.groups[m].members.retain(|&x| x != w);
                        if self.slots[w].worker.is_idle() {
                            // Nothing in flight: drained on the spot.
                        } else {
                            draining += 1;
                        }
                        to_retire -= 1;
                    }
                }
            }
            for (&size, &count) in &diff.added {
                added.extend(std::iter::repeat_n((m, size), count));
            }
            self.rebuild_group(m);
        }

        self.reconfig = Some(ReconfigInFlight {
            triggered_at: now,
            delay,
            draining,
            added,
            destroyed: merged.removed_count(),
            created: merged.added_count(),
        });
        if draining == 0 {
            sched(now + delay, RECONFIG_KEY, ShardEvent::ReconfigReady);
        }
        true
    }

    /// The reslice finished: create the new instances, refresh scheduler
    /// state, serve anything that queued up during the outage, and accept
    /// the observed traffic as the new baseline.
    fn on_reconfig_ready(
        &mut self,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let rc = self.reconfig.take().expect("reconfig event without state");
        for &(m, size) in &rc.added {
            let w = self.slots.len();
            self.slots.push(WorkerSlot {
                worker: PartitionWorker::new(size),
                model: m,
                local: 0,
                retiring: false,
            });
            self.rows
                .push(self.server.models[m].table.latency_row(size));
            self.max_batch.push(self.server.models[m].table.max_batch());
            self.groups[m].members.push(w);
            if let Some(g) = &mut self.gantt {
                let row = g.add_partition(size);
                debug_assert_eq!(row, w, "gantt rows track worker slots");
            }
        }
        for m in 0..self.groups.len() {
            self.rebuild_group(m);
            // FIFS groups may have central backlog and fresh idle
            // instances: work-conservation demands they meet.
            while !self.groups[m].central.is_empty() {
                let Some((idle_since, local)) = self.groups[m].fifs_idle.first() else {
                    break;
                };
                self.groups[m].fifs_idle.remove((idle_since, local));
                let w = self.groups[m].members[local as usize];
                let q = self.groups[m]
                    .central
                    .pop_front()
                    .expect("checked non-empty");
                self.begin(w, q, now, sched);
            }
            // Queries that arrived while the group was dark re-enter the
            // normal dispatch path, in arrival order.
            while let Some(q) = self.groups[m].stash.pop_front() {
                self.route(q, m, now, sched);
            }
        }
        self.reconfigs.push(ReconfigEvent {
            triggered_at: rc.triggered_at,
            completed_at: now,
            destroyed: rc.destroyed,
            created: rc.created,
            reslice_delay: rc.delay,
        });
        // Loans reach here with no shard-level detector configured.
        if let Some(det) = &mut self.detector {
            det.rebaseline();
        }
    }

    /// Consumes the engine into its run report. `peak_pending_events` is
    /// the driver's event-queue high-water mark (a shared cluster DES
    /// reports the same fleet-wide value to every shard).
    #[must_use]
    pub fn finish(self, peak_pending_events: usize) -> MultiRunReport {
        let makespan = self.last_completion.saturating_since(SimTime::ZERO);
        let makespan_s = makespan.as_secs_f64();
        let completed = self.histogram.count();
        let achieved_qps = if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        };
        let partition_utilization: Vec<f64> = self
            .slots
            .iter()
            .map(|s| {
                if makespan.as_nanos() == 0 {
                    0.0
                } else {
                    (s.worker.busy_ns() as f64 / makespan.as_nanos() as f64).min(1.0)
                }
            })
            .collect();

        MultiRunReport {
            detail: self.detail,
            records: self.records,
            record_models: self.record_models,
            latency: self.latency,
            histogram: self.histogram,
            per_model: self
                .server
                .models
                .iter()
                .zip(self.per_model)
                .map(|(spec, acc)| ModelReport {
                    name: spec.name.clone(),
                    completed: acc.completed,
                    histogram: acc.histogram,
                    sla_ns: spec.sla_ns,
                    sla_violations: acc.sla_violations,
                })
                .collect(),
            makespan,
            achieved_qps,
            partition_utilization,
            partition_sizes: self.slots.iter().map(|s| s.worker.size()).collect(),
            partition_models: self.slots.iter().map(|s| s.model).collect(),
            reconfigs: self.reconfigs,
            gantt: self.gantt,
            peak_pending_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use inference_workload::{MultiTraceGenerator, PhaseSpec};
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn two_model_server(replan: Option<ReplanPolicy>) -> MultiModelServer {
        let dist = BatchDistribution::paper_default();
        let mut config = MultiModelConfig::new();
        if let Some(rp) = replan {
            config = config.with_replan(rp);
        }
        MultiModelServer::new(
            vec![
                ModelSpec::new("mobilenet", table(ModelKind::MobileNet), dist.clone()),
                ModelSpec::new("resnet50", table(ModelKind::ResNet50), dist),
            ],
            GpcBudget::new(48, 8),
            config,
        )
        .expect("plans build")
    }

    fn steady_trace(rate0: f64, rate1: f64, secs: f64, seed: u64) -> Vec<TaggedQuerySpec> {
        let d = BatchDistribution::paper_default();
        MultiTraceGenerator::new(
            vec![PhaseSpec::new(secs, vec![(rate0, d.clone()), (rate1, d)])],
            seed,
        )
        .generate()
    }

    /// A strongly drifting two-model trace: model 1's batch mix flips from
    /// tiny to heavy while rates swap.
    fn drifting_trace(secs_per_phase: f64, seed: u64) -> MultiTraceGenerator {
        let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
        let large = BatchDistribution::log_normal_with_median(32, 0.9, 12.0);
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(
                    secs_per_phase,
                    vec![(400.0, small.clone()), (40.0, small.clone())],
                ),
                PhaseSpec::new(secs_per_phase, vec![(40.0, small), (250.0, large)]),
            ],
            seed,
        )
    }

    #[test]
    fn split_budget_is_exhaustive_and_bounded() {
        let shares = split_budget(GpcBudget::new(48, 8), &[1.0, 1.0, 6.0]);
        assert_eq!(shares.iter().map(|b| b.total_gpcs).sum::<usize>(), 48);
        assert_eq!(shares.iter().map(|b| b.num_gpus).sum::<usize>(), 8);
        for b in &shares {
            assert!(b.total_gpcs >= 1 && b.num_gpus >= 1);
            assert!(b.total_gpcs <= b.num_gpus * mig_gpu::COMPUTE_SLICES);
        }
        // The heavy model gets the lion's share.
        assert!(shares[2].total_gpcs > shares[0].total_gpcs * 2);
    }

    #[test]
    #[should_panic(expected = "GPUs")]
    fn more_models_than_gpus_panics() {
        let _ = split_budget(GpcBudget::new(14, 2), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn every_query_completes_exactly_once_across_models() {
        let server = two_model_server(None);
        let trace = steady_trace(300.0, 150.0, 1.0, 3);
        let report = server.run(&trace);
        assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len(), "no duplicate completions");
        let per_model_sum: u64 = report.per_model.iter().map(|m| m.completed).sum();
        assert_eq!(per_model_sum, report.completed());
    }

    #[test]
    fn queries_route_to_their_models_partitions() {
        let server = two_model_server(None);
        let group0 = server.groups()[0].len();
        let trace = steady_trace(200.0, 200.0, 0.5, 5);
        let report = server.run(&trace);
        for (r, &m) in report.records.iter().zip(&report.record_models) {
            assert_eq!(report.partition_models[r.partition], m);
            // With no reconfiguration, model 0 owns partitions [0, group0).
            assert_eq!(m == 0, r.partition < group0);
        }
    }

    #[test]
    fn static_plan_never_reconfigures() {
        let server = two_model_server(None);
        let report = server.run(&drifting_trace(1.0, 7).generate());
        assert!(report.reconfigs.is_empty());
        assert_eq!(
            report.partition_sizes.len(),
            server.groups().iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn drift_triggers_replanning_and_conserves_queries() {
        let policy = ReplanPolicy::new(0.25).with_cost(ResliceCostModel::a100_default());
        let server = two_model_server(Some(policy));
        let trace = drifting_trace(2.0, 11).generate();
        let report = server.run(&trace);
        assert!(
            !report.reconfigs.is_empty(),
            "a rate swap + mix flip must trigger a re-plan"
        );
        // The conservation contract: nothing dropped, nothing double-served.
        assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
        for rc in &report.reconfigs {
            assert!(rc.completed_at >= rc.triggered_at + rc.reslice_delay);
            assert!(rc.destroyed > 0 || rc.created > 0);
        }
        // Destroyed instances exist in the report with their lifetime
        // utilization; the pool grew by the created count.
        let initial: usize = server.groups().iter().map(Vec::len).sum();
        let created: usize = report.reconfigs.iter().map(|r| r.created).sum();
        assert_eq!(report.partition_sizes.len(), initial + created);
    }

    #[test]
    fn replanning_beats_static_plan_under_drift() {
        // The tentpole claim: under a drifting two-model workload, online
        // re-planning (even paying realistic reslice downtime) beats the
        // frozen initial plan on SLA attainment.
        let trace = drifting_trace(4.0, 13);
        let static_report = two_model_server(None).run(&trace.generate());
        let policy = ReplanPolicy::new(0.25);
        let replan_report = two_model_server(Some(policy)).run(&trace.generate());
        assert!(!replan_report.reconfigs.is_empty());
        let s = static_report.worst_violation_rate();
        let r = replan_report.worst_violation_rate();
        assert!(
            r < s,
            "replanning should reduce worst-model violations: static {s:.4} vs replan {r:.4}"
        );
    }

    #[test]
    fn retired_partitions_finish_their_queues() {
        // Full-detail run with replanning: every record's partition index
        // is valid and every started query completed, even on partitions
        // that were destroyed mid-run.
        let policy = ReplanPolicy::new(0.25);
        let server = two_model_server(Some(policy));
        let report = server.run(&drifting_trace(1.5, 17).generate());
        for r in &report.records {
            assert!(r.partition < report.partition_sizes.len());
            assert!(r.started < r.completed);
        }
    }

    #[test]
    fn gantt_tracks_every_query_across_models_and_reconfigs() {
        // The multi-model Gantt wiring: every completion leaves exactly one
        // span, rows cover every instance that ever existed — including
        // ones created by a mid-run re-plan — and span rows agree with the
        // records' partition indices.
        let dist = BatchDistribution::paper_default();
        let policy = ReplanPolicy::new(0.25);
        let server = MultiModelServer::new(
            vec![
                ModelSpec::new("mobilenet", table(ModelKind::MobileNet), dist.clone()),
                ModelSpec::new("resnet50", table(ModelKind::ResNet50), dist),
            ],
            GpcBudget::new(48, 8),
            MultiModelConfig::new().with_gantt().with_replan(policy),
        )
        .expect("plans build");
        let trace = drifting_trace(1.5, 19).generate();
        let report = server.run(&trace);
        let g = report.gantt.as_ref().expect("gantt requested");
        assert_eq!(g.spans().len(), trace.len());
        assert_eq!(g.partition_sizes(), &report.partition_sizes[..]);
        for (span, r) in g.spans().iter().zip(&report.records) {
            assert_eq!(span.partition, r.partition);
            assert_eq!(span.start, r.started);
            assert_eq!(span.end, r.completed);
        }
        assert!(!g.render_ascii(60).is_empty());
        // Without the flag, no gantt is kept.
        let plain = two_model_server(None).run(&steady_trace(100.0, 50.0, 0.2, 3));
        assert!(plain.gantt.is_none());
    }

    #[test]
    fn replan_to_identical_layout_charges_no_downtime() {
        // Reconfiguration edge case: a forced re-plan whose PARIS target
        // equals the running layout must be a no-op — empty plan_diff, no
        // ReconfigEvent, zero charged downtime, serving uninterrupted.
        let dist = BatchDistribution::paper_default();
        let t = table(ModelKind::MobileNet);
        let server = MultiModelServer::new(
            vec![ModelSpec::new("mobilenet", t, dist.clone())],
            GpcBudget::new(14, 2),
            MultiModelConfig::new(),
        )
        .expect("plan builds");
        let mut engine = ShardEngine::new(&server, ReportDetail::Full);
        let mut scheduled = Vec::new();
        let cost = ResliceCostModel::a100_default();
        // Same budget, declared weights/dists: PARIS lands on the same
        // plan, so nothing may be scheduled and no reconfig armed.
        let started = engine.force_replan(
            &ReplanRequest {
                budget: server.budget(),
                weights: &[1.0],
                dists: &[dist],
                cost: &cost,
                extra_downtime: SimDuration::ZERO,
            },
            SimTime::ZERO,
            &mut |t, k, e| scheduled.push((t, k, format!("{e:?}"))),
        );
        assert!(!started, "identical plan must not start a reconfiguration");
        assert!(scheduled.is_empty(), "no reslice event was armed");
        assert!(!engine.reconfig_in_flight());
        let report = engine.finish(0);
        assert!(report.reconfigs.is_empty());
    }

    #[test]
    fn summary_detail_keeps_no_records_but_counts_everything() {
        let server = two_model_server(None);
        let trace = steady_trace(250.0, 100.0, 0.5, 23);
        let full = server.run_stream(trace.iter().copied(), ReportDetail::Full);
        let summary = server.run_stream(trace.iter().copied(), ReportDetail::Summary);
        assert!(summary.records.is_empty());
        assert!(summary.latency.is_empty());
        assert_eq!(summary.completed(), full.completed());
        assert_eq!(summary.makespan, full.makespan);
        assert_eq!(
            summary.per_model[0].sla_violations, full.per_model[0].sla_violations,
            "exact per-model violation counts at every detail level"
        );
    }

    #[test]
    fn event_queue_stays_small_with_replanning() {
        let policy = ReplanPolicy::new(0.25);
        let server = two_model_server(Some(policy));
        let report = server.run_stream(drifting_trace(1.5, 29).stream(), ReportDetail::Summary);
        assert!(
            report.peak_pending_events <= report.partition_sizes.len() + 3,
            "streamed multi-model queue stays O(partitions), got {}",
            report.peak_pending_events
        );
    }
}
