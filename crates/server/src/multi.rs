//! Multi-model serving over a shared partition pool, with online PARIS
//! re-planning under traffic drift.
//!
//! A production reconfigurable server rarely hosts one model: ParvaGPU-style
//! deployments co-locate many inference services on spatially shared GPUs,
//! and Aryl-style cluster schedulers re-plan capacity as load shifts. This
//! module brings both to the simulator:
//!
//! * [`MultiModelServer`] hosts one [`ModelSpec`] per model — its own
//!   [`ProfileTable`], batch distribution, scheduling policy and SLA — over
//!   a shared GPC budget. The budget is split across models
//!   ([`split_budget`]) and PARIS plans each model's partition group
//!   independently; queries ([`TaggedQuerySpec`]) route to their model's
//!   group through **per-model scheduler state** (an `ElsaState` or FIFS
//!   idle set per group), preserving the allocation-free O(log P) dispatch
//!   of the single-model fast path.
//! * With a [`ReplanPolicy`], a windowed [`DriftDetector`] watches the
//!   arrival stream; when a model's rate or batch mix drifts, PARIS
//!   re-plans from the **observed** distributions and the server
//!   reconfigures mid-run: unchanged instances keep serving untouched,
//!   removed instances are *quiesced* (they finish their current query and
//!   local queue, accepting nothing new), and once the last one drains the
//!   DES charges the MIG reslice downtime ([`ResliceCostModel`]) before the
//!   new instances come online.
//!
//! # Degeneration contract
//!
//! With a single model and no replan policy, a `MultiModelServer` run is
//! **bit-for-bit identical** to [`InferenceServer::run_stream`] over the
//! same partitions, table and configuration — same records, same latency
//! samples, same utilization. `tests/properties.rs` enforces this, which
//! pins the multi-model dispatch path to the single-model semantics the
//! PR-1 equivalence contract already guards.
//!
//! # Conservation contract
//!
//! A mid-run re-plan never drops or double-serves a query: quiesced
//! partitions drain their in-flight work, queries that arrive for a group
//! with no active instances wait in a stash until the reconfiguration
//! completes, and every accepted query completes exactly once. Unit tests
//! below and the property suite enforce this.

use des_engine::{SimDuration, SimTime, Simulation};
use inference_workload::{
    BatchDistribution, DriftDetector, DriftDetectorConfig, DriftReport, TaggedQuerySpec,
};
use mig_gpu::{ProfileSize, ResliceCostModel};
use paris_core::{
    plan_diff, GpcBudget, Paris, PlanDiff, PlanError, ProfileTable, ReconfigMode, ReconfigSchedule,
};
use server_metrics::{LatencyHistogram, LatencyRecorder};

use crate::dispatch::{CoreConfig, DispatchCore, GroupSpec, ShardEvent};
use crate::gantt::Gantt;
use crate::query::QueryRecord;
use crate::server::{ReportDetail, SchedulerKind};

/// Everything the server needs to host one model.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Human-readable name, used in reports and benchmark output.
    pub name: String,
    /// The model's profiled latency table (must cover every size PARIS may
    /// pick, i.e. be profiled over [`ProfileSize::ALL`]).
    pub table: ProfileTable,
    /// The batch distribution used for *initial* planning (re-plans use
    /// observed distributions).
    pub dist: BatchDistribution,
    /// Relative share of the GPC budget at initial planning time.
    pub weight: f64,
    /// The scheduling policy for this model's partition group.
    pub scheduler: SchedulerKind,
    /// SLA target for exact per-model violation counting, if any.
    pub sla_ns: Option<u64>,
}

impl ModelSpec {
    /// A model served by ELSA at the paper-default SLA (1.5× the max-batch
    /// latency on the largest partition), with unit budget weight.
    #[must_use]
    pub fn new(name: impl Into<String>, table: ProfileTable, dist: BatchDistribution) -> Self {
        let sla = table.sla_target_ns(1.5);
        ModelSpec {
            name: name.into(),
            table,
            dist,
            weight: 1.0,
            scheduler: SchedulerKind::Elsa(paris_core::ElsaConfig::new(sla)),
            sla_ns: Some(sla),
        }
    }

    /// Overrides the initial budget weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.weight = weight;
        self
    }

    /// Overrides the scheduling policy.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Overrides the SLA target used for exact violation counting.
    #[must_use]
    pub fn with_sla_ns(mut self, sla_ns: u64) -> Self {
        self.sla_ns = Some(sla_ns);
        self
    }

    /// The budget-share weight this model's observed traffic demands:
    /// `rate ×` its mean profiled latency on the largest partition under
    /// `dist` (≈ full-GPU-seconds per second), floored at a tiny positive
    /// value so a silent model still gets a sliver of budget.
    ///
    /// One formula shared by the drift re-planner and cluster loan
    /// controllers, so their budget splits can never silently diverge.
    #[must_use]
    pub fn demand_weight(&self, dist: &BatchDistribution, rate_qps: f64) -> f64 {
        let big = self.table.largest_size();
        let mean_latency_s: f64 = (1..=self.table.max_batch())
            .map(|b| dist.pmf(b) * self.table.latency_s(big, b))
            .sum();
        (rate_qps * mean_latency_s).max(1e-9)
    }
}

/// When and how the server re-plans mid-run.
#[derive(Debug, Clone)]
pub struct ReplanPolicy {
    /// The drift trigger.
    pub detector: DriftDetectorConfig,
    /// The MIG reslice downtime model the DES charges per reconfiguration.
    pub cost: ResliceCostModel,
    /// How a re-plan's edits are staged: one GPU at a time
    /// ([`ReconfigMode::Rolling`], the default — bounding the capacity dip)
    /// or one combined outage ([`ReconfigMode::AllAtOnce`], kept for
    /// ablations).
    pub mode: ReconfigMode,
}

impl ReplanPolicy {
    /// A policy with the given detection window (seconds), the default
    /// ±50 % drift threshold, the A100 reslice cost model and rolling
    /// staging (the workspace default — `BENCH_multimodel.json`'s
    /// `reconfig_dip` data shows the bounded dip is worth the extra total
    /// downtime).
    #[must_use]
    pub fn new(window_s: f64) -> Self {
        ReplanPolicy {
            detector: DriftDetectorConfig::new(window_s),
            cost: ResliceCostModel::a100_default(),
            mode: ReconfigMode::Rolling,
        }
    }

    /// Overrides the drift detector configuration.
    #[must_use]
    pub fn with_detector(mut self, detector: DriftDetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Overrides the reslice cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: ResliceCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the reconfiguration staging mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ReconfigMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Server-level configuration for multi-model runs (the multi-model twin
/// of `ServerConfig`, minus the per-model scheduler, plus the replan
/// policy).
#[derive(Debug, Clone)]
pub struct MultiModelConfig {
    /// Serial frontend service time per query.
    pub frontend_overhead: SimDuration,
    /// Relative stddev of multiplicative service-time noise (0 = exact).
    pub service_noise: f64,
    /// Seed for the service-noise RNG.
    pub noise_seed: u64,
    /// How much per-query material runs keep.
    pub detail: ReportDetail,
    /// Record a per-instance execution Gantt trace (costs memory; off for
    /// sweeps). Instances created by mid-run reconfigurations get their own
    /// timeline rows.
    pub record_gantt: bool,
    /// Online re-planning policy; `None` freezes the initial plan.
    pub replan: Option<ReplanPolicy>,
    /// Whether schedulers see slow-GPU degrade factors (`true`, the
    /// default) or plan with clean profiles while execution runs slow
    /// (`false` — the degradation-blind ablation;
    /// [`with_degrade_blind`](Self::with_degrade_blind)).
    pub degrade_visible: bool,
}

impl MultiModelConfig {
    /// A deterministic configuration with a 20 µs frontend, full detail
    /// and no re-planning.
    #[must_use]
    pub fn new() -> Self {
        MultiModelConfig {
            frontend_overhead: SimDuration::from_micros(20),
            service_noise: 0.0,
            noise_seed: 0,
            detail: ReportDetail::Full,
            record_gantt: false,
            replan: None,
            degrade_visible: true,
        }
    }

    /// Makes schedulers plan with clean profiles even on degraded
    /// hardware — the ablation a resilience bench runs to show what
    /// degradation-aware placement buys.
    #[must_use]
    pub fn with_degrade_blind(mut self) -> Self {
        self.degrade_visible = false;
        self
    }

    /// Enables Gantt-trace recording.
    #[must_use]
    pub fn with_gantt(mut self) -> Self {
        self.record_gantt = true;
        self
    }

    /// Overrides the frontend service time.
    #[must_use]
    pub fn with_frontend_overhead(mut self, overhead: SimDuration) -> Self {
        self.frontend_overhead = overhead;
        self
    }

    /// Adds multiplicative service-time noise.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    #[must_use]
    pub fn with_service_noise(mut self, noise: f64, seed: u64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        self.service_noise = noise;
        self.noise_seed = seed;
        self
    }

    /// Sets how much per-query material runs keep.
    #[must_use]
    pub fn with_detail(mut self, detail: ReportDetail) -> Self {
        self.detail = detail;
        self
    }

    /// Enables online re-planning.
    #[must_use]
    pub fn with_replan(mut self, replan: ReplanPolicy) -> Self {
        self.replan = Some(replan);
        self
    }
}

impl Default for MultiModelConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits a shared [`GpcBudget`] across models proportionally to
/// `weights`, guaranteeing every model at least one GPU and one GPC.
/// Models do not share physical GPUs (a deliberate isolation choice: MIG
/// gives spatial isolation *within* a GPU, but keeping model groups on
/// disjoint GPUs makes reslicing one model's group independent of the
/// others).
///
/// # Panics
///
/// Panics if `weights` is empty, longer than the GPU count, or contains a
/// non-positive or non-finite weight.
///
/// # Examples
///
/// ```
/// use paris_core::GpcBudget;
/// use inference_server::split_budget;
///
/// let shares = split_budget(GpcBudget::new(48, 8), &[3.0, 1.0]);
/// assert_eq!(shares.len(), 2);
/// assert_eq!(shares.iter().map(|b| b.total_gpcs).sum::<usize>(), 48);
/// assert_eq!(shares.iter().map(|b| b.num_gpus).sum::<usize>(), 8);
/// assert!(shares[0].total_gpcs > shares[1].total_gpcs);
/// ```
#[must_use]
pub fn split_budget(budget: GpcBudget, weights: &[f64]) -> Vec<GpcBudget> {
    let k = weights.len();
    assert!(k >= 1, "need at least one model");
    assert!(
        k <= budget.num_gpus,
        "{k} models need {k} GPUs, budget has {}",
        budget.num_gpus
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "weights must be positive"
    );
    assert!(
        budget.total_gpcs >= k,
        "budget must afford one GPC per model"
    );

    let gpus = bounded_split(
        budget.num_gpus,
        weights,
        &vec![1; k],
        &vec![budget.num_gpus; k],
    );
    let maxs: Vec<usize> = gpus.iter().map(|&g| g * mig_gpu::COMPUTE_SLICES).collect();
    let gpcs = bounded_split(budget.total_gpcs, weights, &vec![1; k], &maxs);
    gpus.iter()
        .zip(&gpcs)
        .map(|(&g, &c)| GpcBudget::new(c, g))
        .collect()
}

/// Largest-remainder apportionment of `total` units across `weights`,
/// bounded below by `mins` and above by `maxs`. Deterministic: ties go to
/// the lowest index.
fn bounded_split(total: usize, weights: &[f64], mins: &[usize], maxs: &[usize]) -> Vec<usize> {
    let wsum: f64 = weights.iter().sum();
    let mut out = mins.to_vec();
    let assigned: usize = out.iter().sum();
    debug_assert!(assigned <= total, "mins exceed the total");
    let target: Vec<f64> = weights.iter().map(|w| w / wsum * total as f64).collect();
    for _ in 0..total.saturating_sub(assigned) {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..out.len() {
            if out[i] >= maxs[i] {
                continue;
            }
            let deficit = target[i] - out[i] as f64;
            if best.is_none_or(|(d, _)| deficit > d) {
                best = Some((deficit, i));
            }
        }
        match best {
            Some((_, i)) => out[i] += 1,
            None => break,
        }
    }
    out
}

/// One completed mid-run reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// When drift triggered the re-plan (quiescing began).
    pub triggered_at: SimTime,
    /// When the new instances came online (drain + reslice done).
    pub completed_at: SimTime,
    /// Instances quiesced and destroyed.
    pub destroyed: usize,
    /// Instances created.
    pub created: usize,
    /// The charged driver-side reslice downtime, summed over every step
    /// (excludes drain, which plays out in simulated time).
    pub reslice_delay: SimDuration,
    /// Sequential steps the transition executed: 1 for an all-at-once
    /// reconfiguration, one per affected GPU for a rolling one.
    pub steps: usize,
    /// Whether the transition was aborted mid-schedule (a fault landed on
    /// hardware it was rearranging): `completed_at` is then the abort
    /// instant, and `destroyed`/`created` count only what its completed
    /// steps actually did.
    pub aborted: bool,
}

/// Per-model results of a multi-model run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// The model's name.
    pub name: String,
    /// Queries completed for this model.
    pub completed: u64,
    /// Latency histogram of this model's queries.
    pub histogram: LatencyHistogram,
    /// The SLA target exact violations were counted against, if any.
    pub sla_ns: Option<u64>,
    /// Exact violation count against [`sla_ns`](Self::sla_ns).
    pub sla_violations: u64,
}

impl ModelReport {
    /// p95 tail latency of this model's queries, milliseconds
    /// (bucket-accurate).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.histogram.p95_ms()
    }

    /// Exact fraction of this model's queries that violated its SLA (0
    /// when no SLA is configured or nothing completed).
    #[must_use]
    pub fn sla_violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.sla_violations as f64 / self.completed as f64
        }
    }
}

/// Everything measured during one multi-model run.
#[derive(Debug, Clone)]
pub struct MultiRunReport {
    /// Detail level the run was recorded at.
    pub detail: ReportDetail,
    /// Per-query lifecycle records, completion order (empty under
    /// [`ReportDetail::Summary`]). `partition` indexes
    /// [`partition_sizes`](Self::partition_sizes).
    pub records: Vec<QueryRecord>,
    /// The model of each record, parallel to [`records`](Self::records).
    pub record_models: Vec<usize>,
    /// Exact combined latency samples (empty under summary detail).
    pub latency: LatencyRecorder,
    /// Combined fixed-footprint latency histogram.
    pub histogram: LatencyHistogram,
    /// Queue-wait (`started − dispatched`) histogram across all models,
    /// filled at every detail level — the O(1)-memory source of
    /// [`breakdown`](Self::breakdown), tracing on or off.
    pub queue_hist: LatencyHistogram,
    /// Service-time (`completed − started`) histogram across all models,
    /// filled at every detail level.
    pub service_hist: LatencyHistogram,
    /// Per-model breakdown.
    pub per_model: Vec<ModelReport>,
    /// Time from first arrival to last completion.
    pub makespan: SimDuration,
    /// Completed queries divided by the makespan.
    pub achieved_qps: f64,
    /// Busy fraction over the makespan of every partition that ever
    /// existed (including ones destroyed by reconfigurations).
    pub partition_utilization: Vec<f64>,
    /// Size of each partition, parallel to the utilization vector.
    pub partition_sizes: Vec<ProfileSize>,
    /// Owning model of each partition, parallel to the utilization vector.
    pub partition_models: Vec<usize>,
    /// Every completed mid-run reconfiguration, in order.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Per-instance execution trace, when requested via
    /// [`MultiModelConfig::with_gantt`]. Rows index the same space as
    /// [`partition_sizes`](Self::partition_sizes), including instances
    /// created mid-run.
    pub gantt: Option<Gantt>,
    /// High-water mark of the DES event queue (stays O(partitions)).
    pub peak_pending_events: usize,
}

impl MultiRunReport {
    /// Total queries completed across all models.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.histogram.count()
    }

    /// Combined p95 tail latency, milliseconds (exact under
    /// [`ReportDetail::Full`], bucket-accurate under summary).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        match self.detail {
            ReportDetail::Full => self.latency.p95_ms(),
            ReportDetail::Summary => self.histogram.p95_ms(),
        }
    }

    /// Where latency came from: queue-wait vs service-time percentiles
    /// from the always-on decomposition histograms, plus the total reslice
    /// downtime charged by every completed reconfiguration.
    #[must_use]
    pub fn breakdown(&self) -> server_metrics::LatencyBreakdown {
        let reconfig_wait_ns_total = self
            .reconfigs
            .iter()
            .map(|rc| rc.reslice_delay.as_nanos())
            .sum();
        server_metrics::LatencyBreakdown::from_histograms(
            &self.queue_hist,
            &self.service_hist,
            reconfig_wait_ns_total,
        )
    }

    /// The worst per-model exact SLA violation rate (the metric a
    /// latency-bounded multi-model throughput search constrains).
    #[must_use]
    pub fn worst_violation_rate(&self) -> f64 {
        self.per_model
            .iter()
            .map(ModelReport::sla_violation_rate)
            .fold(0.0, f64::max)
    }
}

/// A simulated multi-model inference server over a shared, reconfigurable
/// partition pool — see the source module's documentation for the serving
/// and re-planning model, and the degeneration/conservation contracts.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{GpcBudget, ProfileTable};
/// use inference_server::{ModelSpec, MultiModelConfig, MultiModelServer};
///
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let dist = BatchDistribution::paper_default();
/// let spec = |kind: ModelKind| {
///     let table = ProfileTable::profile(&kind.build(), &perf, &ProfileSize::ALL, 32);
///     ModelSpec::new(format!("{kind}"), table, dist.clone())
/// };
/// let server = MultiModelServer::new(
///     vec![spec(ModelKind::MobileNet), spec(ModelKind::ResNet50)],
///     GpcBudget::new(48, 8),
///     MultiModelConfig::new(),
/// )?;
/// let trace = MultiTraceGenerator::new(
///     vec![PhaseSpec::new(0.3, vec![(200.0, dist.clone()), (100.0, dist)])],
///     7,
/// );
/// let report = server.run_stream(trace.stream(), Default::default());
/// assert_eq!(report.completed(), report.records.len() as u64);
/// assert_eq!(report.per_model.len(), 2);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiModelServer {
    models: Vec<ModelSpec>,
    groups: Vec<Vec<ProfileSize>>,
    budget: GpcBudget,
    config: MultiModelConfig,
}

impl MultiModelServer {
    /// Plans the initial per-model partition groups: the budget is split
    /// by [`split_budget`] over the model weights and PARIS plans each
    /// model's share against its declared distribution.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from any model's PARIS run.
    pub fn plan_groups(
        models: &[ModelSpec],
        budget: GpcBudget,
    ) -> Result<Vec<Vec<ProfileSize>>, PlanError> {
        let weights: Vec<f64> = models.iter().map(|m| m.weight).collect();
        let budgets = split_budget(budget, &weights);
        models
            .iter()
            .zip(budgets)
            .map(|(m, b)| Ok(Paris::new(&m.table, &m.dist).plan(b)?.partitions()))
            .collect()
    }

    /// Creates a server with PARIS-planned initial groups.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the initial planning pass.
    pub fn new(
        models: Vec<ModelSpec>,
        budget: GpcBudget,
        config: MultiModelConfig,
    ) -> Result<Self, PlanError> {
        let groups = Self::plan_groups(&models, budget)?;
        Ok(Self::with_groups(models, groups, budget, config))
    }

    /// Creates a server with explicit per-model partition groups (tests,
    /// baselines, and the single-model degeneration contract).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty, `groups` does not match it one-to-one,
    /// any group is empty, or a [`ReplanPolicy`] is configured over a
    /// budget that cannot be split across the models (fewer GPUs or GPCs
    /// than models) — re-planning would hit that wall mid-run otherwise.
    #[must_use]
    pub fn with_groups(
        models: Vec<ModelSpec>,
        groups: Vec<Vec<ProfileSize>>,
        budget: GpcBudget,
        config: MultiModelConfig,
    ) -> Self {
        assert!(!models.is_empty(), "server needs at least one model");
        assert_eq!(models.len(), groups.len(), "one group per model");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "every model needs at least one partition"
        );
        if config.replan.is_some() {
            // Fail at construction, not at the first drift trigger: a
            // re-plan splits the budget across models and needs one GPU
            // and one GPC per model.
            assert!(
                models.len() <= budget.num_gpus && models.len() <= budget.total_gpcs,
                "replanning {} models needs at least that many GPUs and GPCs, budget is {budget}",
                models.len()
            );
        }
        MultiModelServer {
            models,
            groups,
            budget,
            config,
        }
    }

    /// The hosted models.
    #[must_use]
    pub fn models(&self) -> &[ModelSpec] {
        &self.models
    }

    /// The initial per-model partition groups.
    #[must_use]
    pub fn groups(&self) -> &[Vec<ProfileSize>] {
        &self.groups
    }

    /// The shared GPC budget.
    #[must_use]
    pub fn budget(&self) -> GpcBudget {
        self.budget
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &MultiModelConfig {
        &self.config
    }

    /// A back-of-envelope planned-capacity estimate: the sum over every
    /// model of [`ProfileTable::capacity_qps`] for its planned group under
    /// its declared distribution, queries/second. A cluster router
    /// weighting shards by planned capacity reads this.
    #[must_use]
    pub fn capacity_hint_qps(&self) -> f64 {
        self.models
            .iter()
            .zip(&self.groups)
            .map(|(spec, group)| spec.table.capacity_qps(group, &spec.dist))
            .sum()
    }

    /// Simulates the server over a materialized tagged trace.
    #[must_use]
    pub fn run(&self, trace: &[TaggedQuerySpec]) -> MultiRunReport {
        self.run_stream(trace.iter().copied(), self.config.detail)
    }

    /// Simulates the server over a *streamed* tagged arrival sequence
    /// (ascending arrival times) until every accepted query completes.
    #[must_use]
    pub fn run_stream<I>(&self, arrivals: I, detail: ReportDetail) -> MultiRunReport
    where
        I: IntoIterator<Item = TaggedQuerySpec>,
    {
        let mut arrivals = arrivals.into_iter();
        let n: usize = self.groups.iter().map(Vec::len).sum();
        // Steady state: ≤ one completion per partition + the next streamed
        // arrival + a possible reconfiguration event.
        let mut sim: Simulation<ShardEvent> = Simulation::with_capacity(n + 3);
        let mut engine = ShardEngine::new(self, detail);
        if let Some(tq) = arrivals.next() {
            engine.offer(tq, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        // One-slot deferred-push register fusing each handler's last
        // schedule with the next pop — see the single-model driver in
        // `server.rs` for the full rationale.
        let mut held: Option<(SimTime, u64, ShardEvent)> = None;
        loop {
            let next = match held.take() {
                Some((t, k, e)) => Some(sim.push_pop(t, k, e)),
                None => sim.next_event(),
            };
            let Some((now, event)) = next else { break };
            // Keep the pipeline primed: handling a dispatch is the moment
            // its successor enters the queue, so pending stays O(P).
            if matches!(event, ShardEvent::Dispatch(..)) {
                if let Some(tq) = arrivals.next() {
                    engine.offer(tq, &mut |t, k, e| {
                        if let Some((pt, pk, pe)) = held.replace((t, k, e)) {
                            sim.schedule_at_keyed(pt, pk, pe);
                        }
                    });
                }
            }
            engine.handle(now, event, &mut |t, k, e| {
                if let Some((pt, pk, pe)) = held.replace((t, k, e)) {
                    sim.schedule_at_keyed(pt, pk, pe);
                }
            });
        }
        engine.finish(sim.peak_pending())
    }
}

/// Inputs of an externally imposed re-plan
/// ([`ShardEngine::force_replan`]) — how a cluster loan controller tells a
/// shard to re-plan onto a changed budget.
#[derive(Debug, Clone, Copy)]
pub struct ReplanRequest<'a> {
    /// The budget the shard must adopt and re-plan onto.
    pub budget: GpcBudget,
    /// Per-model budget-share weights (a loan controller passes shares
    /// derived from its observed traffic, or the declared model weights).
    pub weights: &'a [f64],
    /// Per-model planning distributions (observed, or declared).
    pub dists: &'a [BatchDistribution],
    /// Prices the reslice of whatever `plan_diff` the transition implies.
    pub cost: &'a ResliceCostModel,
    /// Added on top of the reslice delay — e.g. the whole-GPU handover
    /// charge of a capacity loan
    /// ([`ResliceCostModel::gpu_handover_ns`]).
    pub extra_downtime: SimDuration,
    /// How the transition's edits are staged (all-at-once or rolling, see
    /// [`ReconfigMode`]).
    pub mode: ReconfigMode,
}

/// One shard's serving state, decoupled from the event loop: a thin policy
/// layer over the unified [`DispatchCore`].
///
/// This is the multi-model engine behind [`MultiModelServer::run_stream`],
/// exposed so a *cluster* can host shards in external simulations: the
/// driver owns the `Simulation`, injects arrivals ([`offer`]) and feeds
/// popped events back ([`handle`]) through a scheduling callback
/// `(fire_time, tie_break_key, event)`. The engine never schedules
/// anything itself and holds no shared state (it is `Send`), so a driver
/// may give every shard a *private* event queue and advance the resulting
/// lanes on worker threads — the shard-parallel cluster engine does
/// exactly that, exchanging cross-shard actions only at conservative
/// window edges (ARCHITECTURE.md invariant 11). All the engine requires of
/// its driver is that calls arrive in nondecreasing `now` order and that
/// same-instant calls keep one deterministic order. The dispatch/complete/drain bodies
/// live in the core (one group per model); what this layer adds is
/// *policy* — drift detection, PARIS re-planning from observed
/// distributions, and the budget a cluster loan controller moves.
///
/// Cluster-facing hooks beyond the event plumbing:
///
/// * [`outstanding_queries`] — offered-but-uncompleted load, the signal a
///   join-shortest-queue router balances on;
/// * [`force_replan`] — re-plan onto an externally imposed budget (an
///   Aryl-style capacity loan or reclaim), with the transition priced
///   through the same [`ReconfigSchedule`] machinery as drift-triggered
///   re-plans;
/// * [`reconfig_in_flight`] — whether a transition is mid-schedule (loans
///   must wait, or they would compound two reconfigurations);
/// * [`live_groups`] — the instances actually serving right now, the
///   efficiency reference a loan demand estimator should normalize
///   against.
///
/// [`offer`]: Self::offer
/// [`handle`]: Self::handle
/// [`outstanding_queries`]: Self::outstanding_queries
/// [`force_replan`]: Self::force_replan
/// [`reconfig_in_flight`]: Self::reconfig_in_flight
/// [`live_groups`]: Self::live_groups
pub struct ShardEngine<'a> {
    server: &'a MultiModelServer,
    core: DispatchCore<'a>,
    /// The budget the *next* re-plan splits. Starts at the server's budget;
    /// capacity loans move it.
    budget: GpcBudget,
    detector: Option<DriftDetector>,
}

impl<'a> ShardEngine<'a> {
    /// Builds the engine for one run of `server` at the given detail.
    #[must_use]
    pub fn new(server: &'a MultiModelServer, detail: ReportDetail) -> Self {
        let specs: Vec<GroupSpec<'a>> = server
            .models
            .iter()
            .map(|m| GroupSpec {
                name: &m.name,
                table: &m.table,
                scheduler: m.scheduler.clone(),
                sla_ns: m.sla_ns,
            })
            .collect();
        let core = DispatchCore::new(
            specs,
            &server.groups,
            CoreConfig {
                frontend_overhead: server.config.frontend_overhead,
                service_noise: server.config.service_noise,
                noise_seed: server.config.noise_seed,
                detail,
                record_gantt: server.config.record_gantt,
                degrade_visible: server.config.degrade_visible,
            },
        );
        let detector = server.config.replan.as_ref().map(|rp| {
            let max_b = server
                .models
                .iter()
                .map(|m| m.table.max_batch())
                .max()
                .expect("at least one model");
            DriftDetector::new(server.models.len(), max_b, rp.detector)
        });
        ShardEngine {
            server,
            core,
            budget: server.budget,
            detector,
        }
    }

    /// Attaches a flight recorder: the dispatch core records the full
    /// lifecycle of every query it handles (invariant 12 — attaching a
    /// recorder never changes simulation behaviour or report bytes).
    pub fn set_trace(&mut self, recorder: inference_obs::FlightRecorder) {
        self.core.set_trace(recorder);
    }

    /// Detaches and returns the flight recorder, if one was attached.
    pub fn take_trace(&mut self) -> Option<inference_obs::FlightRecorder> {
        self.core.take_trace()
    }

    /// Attaches an observability sink (trace half, online half, or both)
    /// to the dispatch core. Same invariant-12 contract as
    /// [`set_trace`](ShardEngine::set_trace).
    pub fn set_sink(&mut self, sink: inference_obs::ObsSink) {
        self.core.set_sink(sink);
    }

    /// Detaches and returns the observability sink, if one was attached.
    pub fn take_sink(&mut self) -> Option<inference_obs::ObsSink> {
        self.core.take_sink()
    }

    /// Offers one tagged arrival to the shard's serial frontend, scheduling
    /// its [`ShardEvent::Dispatch`] through `sched`. Arrivals must be
    /// offered in non-decreasing arrival order.
    pub fn offer(&mut self, tq: TaggedQuerySpec, sched: &mut impl FnMut(SimTime, u64, ShardEvent)) {
        self.core.offer(tq.model, tq.spec, sched);
    }

    /// Handles one popped event. The driver must pass every event this
    /// engine scheduled (and only those) back in pop order.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: ShardEvent,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        // Policy first, dispatch second: a drift trigger quiesces before
        // the triggering query routes, exactly as the pre-unification
        // engine did.
        if let ShardEvent::Dispatch(query, m) = event {
            if let Some(det) = &mut self.detector {
                let drift = det.observe(m, query.arrival.as_nanos(), query.batch);
                if !self.core.reconfig_in_flight() {
                    if let Some(report) = drift {
                        self.try_replan(&report, now, sched);
                    }
                }
            }
        }
        let was_reconfiguring = self.core.reconfig_in_flight();
        self.core.handle(now, event, sched);
        if was_reconfiguring && !self.core.reconfig_in_flight() {
            // The whole schedule completed: accept the observed traffic as
            // the new baseline. (Loans reach here with no shard-level
            // detector configured.)
            if let Some(det) = &mut self.detector {
                det.rebaseline();
            }
        }
    }

    /// Queries offered to the frontend but not yet completed — the
    /// outstanding-load signal a join-shortest-queue cluster router
    /// balances on.
    #[must_use]
    pub fn outstanding_queries(&self) -> u64 {
        self.core.outstanding_queries()
    }

    /// Whether a reconfiguration (drift re-plan or capacity loan) is
    /// currently mid-schedule (draining a step or waiting out a reslice).
    #[must_use]
    pub fn reconfig_in_flight(&self) -> bool {
        self.core.reconfig_in_flight()
    }

    /// The budget the next re-plan will split (moves with capacity loans).
    #[must_use]
    pub fn budget(&self) -> GpcBudget {
        self.budget
    }

    /// The live per-model layouts: sizes of the instances actually serving
    /// right now (quiesced instances excluded). Differs from
    /// [`MultiModelServer::groups`] after any re-plan.
    #[must_use]
    pub fn live_groups(&self) -> Vec<Vec<ProfileSize>> {
        self.core.live_groups()
    }

    /// The live members of every model group as `(worker index, size)`
    /// pairs — what a fault injector packs into physical-GPU bins to pick
    /// a GPU failure's victims. See [`DispatchCore::live_members`].
    #[must_use]
    pub fn live_members(&self) -> Vec<Vec<(usize, ProfileSize)>> {
        self.core.live_members()
    }

    /// Kills the given worker slots immediately (a GPU failure): in-flight
    /// and locally queued queries are requeued through the dispatch path,
    /// the slots never serve again. Returns how many queries were
    /// requeued. See [`DispatchCore::kill_workers`] for the exact
    /// semantics; the recovery re-plan is a separate, explicit
    /// [`force_replan`](Self::force_replan) onto the survivor budget.
    pub fn kill_instances(
        &mut self,
        workers: &[usize],
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> u64 {
        self.core.kill_workers(workers, now, sched)
    }

    /// GPC-weighted busy nanoseconds accumulated so far — the
    /// measured-utilization loan-demand signal
    /// ([`DispatchCore::busy_gpc_ns`]).
    #[must_use]
    pub fn busy_gpc_ns(&self) -> u128 {
        self.core.busy_gpc_ns()
    }

    /// Sets the physical service-time multiplier of the given worker slots
    /// (a slow-GPU fault; 1.0 restores the clean profile). See
    /// [`DispatchCore::set_degrade`] for the exact semantics and the
    /// factor-1.0 bit-identity contract.
    pub fn set_degrade(&mut self, workers: &[usize], factor: f64) {
        self.core.set_degrade(workers, factor);
    }

    /// Aborts an in-flight reconfiguration (a fault landed on hardware it
    /// was rearranging): the current step's quiesced survivors rejoin
    /// their groups and the remaining schedule is dropped. Returns whether
    /// anything was aborted. See [`DispatchCore::abort_transition`].
    pub fn abort_reconfig(
        &mut self,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        self.core.abort_transition(now, sched)
    }

    /// Acts on a drift report: re-plans every model from its observed
    /// traffic, quiesces the instances the new plan drops, and arms the
    /// reslice schedule.
    fn try_replan(
        &mut self,
        report: &DriftReport,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let detector = self.detector.as_ref().expect("replan needs a detector");
        let models = &self.server.models;

        // Budget weights from observed demand ([`ModelSpec::demand_weight`]).
        let mut weights = Vec::with_capacity(models.len());
        let mut dists: Vec<BatchDistribution> = Vec::with_capacity(models.len());
        for (m, spec) in models.iter().enumerate() {
            let dist = detector
                .observed_distribution(m)
                .unwrap_or_else(|| spec.dist.clone());
            let rate = report.rates_qps.get(m).copied().unwrap_or(0.0);
            weights.push(spec.demand_weight(&dist, rate));
            dists.push(dist);
        }

        let policy = self
            .server
            .config
            .replan
            .as_ref()
            .expect("replan policy present");
        let (cost, mode) = (policy.cost, policy.mode);
        let started = self.transition_to(
            &ReplanRequest {
                budget: self.budget,
                weights: &weights,
                dists: &dists,
                cost: &cost,
                extra_downtime: SimDuration::ZERO,
                mode,
            },
            now,
            sched,
        );
        if !started {
            // Traffic moved but the plan is already right: accept the new
            // baseline and keep serving.
            self.detector.as_mut().expect("checked above").rebaseline();
        }
    }

    /// Re-plans the shard onto an externally imposed budget — the
    /// cluster-loaning hook; see [`ReplanRequest`] for the inputs.
    ///
    /// Returns `true` if a reconfiguration actually started. Returns
    /// `false` — leaving serving untouched — when a reconfiguration is
    /// already in flight (the caller should retry after it completes) or
    /// when the new budget plans to the very same layout (the budget is
    /// still adopted for future re-plans, and no downtime is charged: an
    /// empty [`plan_diff`] means no driver call at all).
    ///
    /// # Panics
    ///
    /// Panics if the request's budget cannot be split across the shard's
    /// models (fewer GPUs or GPCs than models) — loan controllers must
    /// never shrink a shard below one GPU per model.
    pub fn force_replan(
        &mut self,
        request: &ReplanRequest<'_>,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        if self.core.reconfig_in_flight() {
            return false;
        }
        let started = self.transition_to(request, now, sched);
        if !started {
            // The budget moved but the layout did not: let the shard's own
            // detector accept current traffic so it does not immediately
            // re-trigger against a stale baseline.
            if let Some(det) = &mut self.detector {
                det.rebaseline();
            }
        }
        started
    }

    /// The shared transition core behind drift re-plans and capacity
    /// loans: adopts the requested budget, plans every model's share
    /// against the requested distributions (falling back to the declared
    /// distribution, then to the current layout, so a degenerate input can
    /// never break serving), diffs against the live layout, cuts the diffs
    /// into a [`ReconfigSchedule`] under the requested mode, and hands the
    /// schedule to the core. Returns whether a reconfiguration started.
    fn transition_to(
        &mut self,
        request: &ReplanRequest<'_>,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        let ReplanRequest {
            budget,
            weights,
            dists,
            cost,
            extra_downtime,
            mode,
        } = *request;
        self.budget = budget;
        let models = &self.server.models;
        let budgets = split_budget(budget, weights);
        let current = self.core.live_groups();
        let targets: Vec<Vec<ProfileSize>> = models
            .iter()
            .enumerate()
            .map(|(m, spec)| {
                Paris::new(&spec.table, &dists[m])
                    .plan(budgets[m])
                    .or_else(|_| Paris::new(&spec.table, &spec.dist).plan(budgets[m]))
                    .map(|p| p.partitions())
                    .unwrap_or_else(|_| current[m].clone())
            })
            .collect();

        let diffs: Vec<PlanDiff> = current
            .iter()
            .zip(&targets)
            .map(|(c, t)| plan_diff(c, t))
            .collect();
        let schedule = ReconfigSchedule::new(&diffs, mode, cost, extra_downtime.as_nanos());
        self.core.begin_transition(schedule, now, sched)
    }

    /// Consumes the engine into its run report. `peak_pending_events` is
    /// the driver's event-queue high-water mark (a shared cluster DES
    /// reports the same fleet-wide value to every shard).
    #[must_use]
    pub fn finish(self, peak_pending_events: usize) -> MultiRunReport {
        self.core.finish(peak_pending_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use inference_workload::{MultiTraceGenerator, PhaseSpec};
    use mig_gpu::{DeviceSpec, PerfModel};

    #[test]
    fn shard_engine_is_send() {
        // The shard-parallel cluster driver moves engines (inside lanes)
        // across worker threads between windows; this pins the `Send`
        // bound at compile time so a future `Rc`/`RefCell` in the
        // dispatch stack fails loudly here instead of deep in the
        // cluster crate.
        fn assert_send<T: Send>() {}
        assert_send::<ShardEngine<'static>>();
    }

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn two_model_server(replan: Option<ReplanPolicy>) -> MultiModelServer {
        let dist = BatchDistribution::paper_default();
        let mut config = MultiModelConfig::new();
        if let Some(rp) = replan {
            config = config.with_replan(rp);
        }
        MultiModelServer::new(
            vec![
                ModelSpec::new("mobilenet", table(ModelKind::MobileNet), dist.clone()),
                ModelSpec::new("resnet50", table(ModelKind::ResNet50), dist),
            ],
            GpcBudget::new(48, 8),
            config,
        )
        .expect("plans build")
    }

    fn steady_trace(rate0: f64, rate1: f64, secs: f64, seed: u64) -> Vec<TaggedQuerySpec> {
        let d = BatchDistribution::paper_default();
        MultiTraceGenerator::new(
            vec![PhaseSpec::new(secs, vec![(rate0, d.clone()), (rate1, d)])],
            seed,
        )
        .generate()
    }

    /// A strongly drifting two-model trace: model 1's batch mix flips from
    /// tiny to heavy while rates swap.
    fn drifting_trace(secs_per_phase: f64, seed: u64) -> MultiTraceGenerator {
        let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
        let large = BatchDistribution::log_normal_with_median(32, 0.9, 12.0);
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(
                    secs_per_phase,
                    vec![(400.0, small.clone()), (40.0, small.clone())],
                ),
                PhaseSpec::new(secs_per_phase, vec![(40.0, small), (250.0, large)]),
            ],
            seed,
        )
    }

    #[test]
    fn split_budget_is_exhaustive_and_bounded() {
        let shares = split_budget(GpcBudget::new(48, 8), &[1.0, 1.0, 6.0]);
        assert_eq!(shares.iter().map(|b| b.total_gpcs).sum::<usize>(), 48);
        assert_eq!(shares.iter().map(|b| b.num_gpus).sum::<usize>(), 8);
        for b in &shares {
            assert!(b.total_gpcs >= 1 && b.num_gpus >= 1);
            assert!(b.total_gpcs <= b.num_gpus * mig_gpu::COMPUTE_SLICES);
        }
        // The heavy model gets the lion's share.
        assert!(shares[2].total_gpcs > shares[0].total_gpcs * 2);
    }

    #[test]
    #[should_panic(expected = "GPUs")]
    fn more_models_than_gpus_panics() {
        let _ = split_budget(GpcBudget::new(14, 2), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn every_query_completes_exactly_once_across_models() {
        let server = two_model_server(None);
        let trace = steady_trace(300.0, 150.0, 1.0, 3);
        let report = server.run(&trace);
        assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len(), "no duplicate completions");
        let per_model_sum: u64 = report.per_model.iter().map(|m| m.completed).sum();
        assert_eq!(per_model_sum, report.completed());
    }

    #[test]
    fn queries_route_to_their_models_partitions() {
        let server = two_model_server(None);
        let group0 = server.groups()[0].len();
        let trace = steady_trace(200.0, 200.0, 0.5, 5);
        let report = server.run(&trace);
        for (r, &m) in report.records.iter().zip(&report.record_models) {
            assert_eq!(report.partition_models[r.partition], m);
            // With no reconfiguration, model 0 owns partitions [0, group0).
            assert_eq!(m == 0, r.partition < group0);
        }
    }

    #[test]
    fn static_plan_never_reconfigures() {
        let server = two_model_server(None);
        let report = server.run(&drifting_trace(1.0, 7).generate());
        assert!(report.reconfigs.is_empty());
        assert_eq!(
            report.partition_sizes.len(),
            server.groups().iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn drift_triggers_replanning_and_conserves_queries() {
        let policy = ReplanPolicy::new(0.25).with_cost(ResliceCostModel::a100_default());
        let server = two_model_server(Some(policy));
        let trace = drifting_trace(2.0, 11).generate();
        let report = server.run(&trace);
        assert!(
            !report.reconfigs.is_empty(),
            "a rate swap + mix flip must trigger a re-plan"
        );
        // The conservation contract: nothing dropped, nothing double-served.
        assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
        for rc in &report.reconfigs {
            assert!(rc.completed_at >= rc.triggered_at + rc.reslice_delay);
            assert!(rc.destroyed > 0 || rc.created > 0);
        }
        // Destroyed instances exist in the report with their lifetime
        // utilization; the pool grew by the created count.
        let initial: usize = server.groups().iter().map(Vec::len).sum();
        let created: usize = report.reconfigs.iter().map(|r| r.created).sum();
        assert_eq!(report.partition_sizes.len(), initial + created);
    }

    #[test]
    fn replanning_beats_static_plan_under_drift() {
        // The tentpole claim: under a drifting two-model workload, online
        // re-planning (even paying realistic reslice downtime) beats the
        // frozen initial plan on SLA attainment.
        let trace = drifting_trace(4.0, 13);
        let static_report = two_model_server(None).run(&trace.generate());
        let policy = ReplanPolicy::new(0.25);
        let replan_report = two_model_server(Some(policy)).run(&trace.generate());
        assert!(!replan_report.reconfigs.is_empty());
        let s = static_report.worst_violation_rate();
        let r = replan_report.worst_violation_rate();
        assert!(
            r < s,
            "replanning should reduce worst-model violations: static {s:.4} vs replan {r:.4}"
        );
    }

    #[test]
    fn retired_partitions_finish_their_queues() {
        // Full-detail run with replanning: every record's partition index
        // is valid and every started query completed, even on partitions
        // that were destroyed mid-run.
        let policy = ReplanPolicy::new(0.25);
        let server = two_model_server(Some(policy));
        let report = server.run(&drifting_trace(1.5, 17).generate());
        for r in &report.records {
            assert!(r.partition < report.partition_sizes.len());
            assert!(r.started < r.completed);
        }
    }

    #[test]
    fn gantt_tracks_every_query_across_models_and_reconfigs() {
        // The multi-model Gantt wiring: every completion leaves exactly one
        // span, rows cover every instance that ever existed — including
        // ones created by a mid-run re-plan — and span rows agree with the
        // records' partition indices.
        let dist = BatchDistribution::paper_default();
        let policy = ReplanPolicy::new(0.25);
        let server = MultiModelServer::new(
            vec![
                ModelSpec::new("mobilenet", table(ModelKind::MobileNet), dist.clone()),
                ModelSpec::new("resnet50", table(ModelKind::ResNet50), dist),
            ],
            GpcBudget::new(48, 8),
            MultiModelConfig::new().with_gantt().with_replan(policy),
        )
        .expect("plans build");
        let trace = drifting_trace(1.5, 19).generate();
        let report = server.run(&trace);
        let g = report.gantt.as_ref().expect("gantt requested");
        assert_eq!(g.len(), trace.len());
        assert_eq!(g.partition_sizes(), &report.partition_sizes[..]);
        for (span, r) in g.iter().zip(&report.records) {
            assert_eq!(span.partition, r.partition);
            assert_eq!(span.start, r.started);
            assert_eq!(span.end, r.completed);
        }
        assert!(!g.render_ascii(60).is_empty());
        // Without the flag, no gantt is kept.
        let plain = two_model_server(None).run(&steady_trace(100.0, 50.0, 0.2, 3));
        assert!(plain.gantt.is_none());
    }

    #[test]
    fn rolling_drift_replan_stages_the_transition() {
        // Same drifting workload as the all-at-once conservation test, but
        // staged one GPU at a time: conservation still holds, and at least
        // one reconfiguration needs more than one step (the mix flip moves
        // more than one GPU's worth of instances).
        let policy = ReplanPolicy::new(0.25).with_mode(ReconfigMode::Rolling);
        let server = two_model_server(Some(policy));
        let trace = drifting_trace(2.0, 11).generate();
        let report = server.run(&trace);
        assert!(!report.reconfigs.is_empty());
        assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.len());
        assert!(
            report.reconfigs.iter().any(|rc| rc.steps > 1),
            "a multi-GPU re-plan must roll out in stages: {:?}",
            report.reconfigs
        );
        for rc in &report.reconfigs {
            assert!(rc.completed_at >= rc.triggered_at + rc.reslice_delay);
        }
    }

    #[test]
    fn replan_to_identical_layout_charges_no_downtime() {
        // Reconfiguration edge case: a forced re-plan whose PARIS target
        // equals the running layout must be a no-op — empty plan_diff, no
        // ReconfigEvent, zero charged downtime, serving uninterrupted.
        let dist = BatchDistribution::paper_default();
        let t = table(ModelKind::MobileNet);
        let server = MultiModelServer::new(
            vec![ModelSpec::new("mobilenet", t, dist.clone())],
            GpcBudget::new(14, 2),
            MultiModelConfig::new(),
        )
        .expect("plan builds");
        let mut engine = ShardEngine::new(&server, ReportDetail::Full);
        let mut scheduled = Vec::new();
        let cost = ResliceCostModel::a100_default();
        // Same budget, declared weights/dists: PARIS lands on the same
        // plan, so nothing may be scheduled and no reconfig armed.
        let started = engine.force_replan(
            &ReplanRequest {
                budget: server.budget(),
                weights: &[1.0],
                dists: &[dist],
                cost: &cost,
                extra_downtime: SimDuration::ZERO,
                mode: ReconfigMode::AllAtOnce,
            },
            SimTime::ZERO,
            &mut |t, k, e| scheduled.push((t, k, format!("{e:?}"))),
        );
        assert!(!started, "identical plan must not start a reconfiguration");
        assert!(scheduled.is_empty(), "no reslice event was armed");
        assert!(!engine.reconfig_in_flight());
        let report = engine.finish(0);
        assert!(report.reconfigs.is_empty());
    }

    #[test]
    fn summary_detail_keeps_no_records_but_counts_everything() {
        let server = two_model_server(None);
        let trace = steady_trace(250.0, 100.0, 0.5, 23);
        let full = server.run_stream(trace.iter().copied(), ReportDetail::Full);
        let summary = server.run_stream(trace.iter().copied(), ReportDetail::Summary);
        assert!(summary.records.is_empty());
        assert!(summary.latency.is_empty());
        assert_eq!(summary.completed(), full.completed());
        assert_eq!(summary.makespan, full.makespan);
        assert_eq!(
            summary.per_model[0].sla_violations, full.per_model[0].sla_violations,
            "exact per-model violation counts at every detail level"
        );
    }

    #[test]
    fn event_queue_stays_small_with_replanning() {
        let policy = ReplanPolicy::new(0.25);
        let server = two_model_server(Some(policy));
        let report = server.run_stream(drifting_trace(1.5, 29).stream(), ReportDetail::Summary);
        assert!(
            report.peak_pending_events <= report.partition_sizes.len() + 3,
            "streamed multi-model queue stays O(partitions), got {}",
            report.peak_pending_events
        );
    }
}
