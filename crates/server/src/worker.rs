//! Per-partition worker state: local queue, current execution, busy
//! accounting, and the snapshots ELSA's slack predictor reads.

use std::collections::VecDeque;

use des_engine::{SimDuration, SimTime};
use mig_gpu::ProfileSize;
use paris_core::PartitionSnapshot;
use server_metrics::BusyTracker;

use crate::query::Query;

/// A queued query together with its profiled execution estimate (the
/// `T_estimated,queued` entries of Equation 1).
#[derive(Debug, Clone, Copy)]
struct QueuedQuery {
    query: Query,
    estimate: SimDuration,
}

/// One MIG partition acting as an inference worker.
///
/// Holds the local scheduling queue the paper describes ("all GPU partitions
/// have \[a\] local scheduling queue that buffers all the queries yet to be
/// executed", §IV-C) plus the execution timestamp ELSA uses to derive
/// `T_remaining,current`.
#[derive(Debug, Clone)]
pub struct PartitionWorker {
    size: ProfileSize,
    queue: VecDeque<QueuedQuery>,
    queued_work: SimDuration,
    /// The currently executing query with its start and predicted end.
    current: Option<(Query, SimTime, SimTime)>,
    busy: BusyTracker,
    idle_since: SimTime,
}

impl PartitionWorker {
    /// Creates an idle worker for a partition of the given size.
    #[must_use]
    pub fn new(size: ProfileSize) -> Self {
        PartitionWorker {
            size,
            queue: VecDeque::new(),
            queued_work: SimDuration::ZERO,
            current: None,
            busy: BusyTracker::new(),
            idle_since: SimTime::ZERO,
        }
    }

    /// The partition's MIG profile.
    #[must_use]
    pub fn size(&self) -> ProfileSize {
        self.size
    }

    /// Whether the worker is executing nothing and has an empty queue.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// When the worker last became idle (meaningful only while idle).
    #[must_use]
    pub fn idle_since(&self) -> SimTime {
        self.idle_since
    }

    /// Queries waiting in the local queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// When the currently executing query will finish (`None` when nothing
    /// is executing).
    #[must_use]
    pub fn busy_until(&self) -> Option<SimTime> {
        self.current.map(|(_, _, end)| end)
    }

    /// The execution estimates of the queued queries, front to back — what
    /// a rebuilt [`paris_core::ElsaState`] must replay to reconstruct this
    /// worker's `queued_work` exactly.
    pub fn queued_estimates(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.queue.iter().map(|q| q.estimate)
    }

    /// Total busy time accumulated so far, nanoseconds.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.busy.busy_ns()
    }

    /// The Equation-1 snapshot at `now`: queued work plus the remaining
    /// execution of the current query.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> PartitionSnapshot {
        let remaining = self
            .current
            .map_or(SimDuration::ZERO, |(_, _, end)| end.saturating_since(now));
        PartitionSnapshot {
            size: self.size,
            queued_work_ns: self.queued_work.as_nanos(),
            remaining_current_ns: remaining.as_nanos(),
        }
    }

    /// Appends a query to the local queue with its execution estimate.
    pub fn enqueue(&mut self, query: Query, estimate: SimDuration) {
        self.queued_work += estimate;
        self.queue.push_back(QueuedQuery { query, estimate });
    }

    /// Begins executing `query` at `now` for `duration`. Returns the
    /// completion time the caller must schedule.
    ///
    /// # Panics
    ///
    /// Panics if the worker is already executing a query.
    pub fn begin(&mut self, query: Query, now: SimTime, duration: SimDuration) -> SimTime {
        assert!(self.current.is_none(), "worker already busy");
        let end = now + duration;
        self.current = Some((query, now, end));
        self.busy.add_busy_ns(duration.as_nanos());
        end
    }

    /// Pops the next queued query (front of the local FIFO), adjusting the
    /// queued-work accounting.
    pub fn pop_next(&mut self) -> Option<(Query, SimDuration)> {
        let q = self.queue.pop_front()?;
        self.queued_work = self.queued_work.saturating_sub(q.estimate);
        Some((q.query, q.estimate))
    }

    /// Completes the current query at `now`, returning it and its start
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the worker is idle.
    pub fn finish(&mut self, now: SimTime) -> (Query, SimTime) {
        let (query, started, _) = self.current.take().expect("no query executing");
        self.idle_since = now;
        (query, started)
    }

    /// Aborts the currently executing query at `now` — a fault killed the
    /// partition mid-execution — returning the query so the caller can
    /// requeue it elsewhere. The busy time [`begin`](Self::begin) charged
    /// up front for the unserved remainder is refunded. `None` if nothing
    /// was executing.
    pub fn abort(&mut self, now: SimTime) -> Option<Query> {
        let (query, _started, end) = self.current.take()?;
        self.busy
            .remove_busy_ns(end.saturating_since(now).as_nanos());
        self.idle_since = now;
        Some(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryId;

    fn query(id: u64, batch: usize) -> Query {
        Query {
            id: QueryId(id),
            batch,
            arrival: SimTime::ZERO,
            dispatched: SimTime::ZERO,
        }
    }

    #[test]
    fn fresh_worker_is_idle_with_zero_snapshot() {
        let w = PartitionWorker::new(ProfileSize::G2);
        assert!(w.is_idle());
        let s = w.snapshot(SimTime::from_nanos(500));
        assert_eq!(s.wait_ns(), 0);
        assert_eq!(s.size, ProfileSize::G2);
    }

    #[test]
    fn snapshot_tracks_remaining_execution() {
        let mut w = PartitionWorker::new(ProfileSize::G1);
        let end = w.begin(
            query(1, 4),
            SimTime::from_nanos(100),
            SimDuration::from_nanos(1_000),
        );
        assert_eq!(end, SimTime::from_nanos(1_100));
        let s = w.snapshot(SimTime::from_nanos(600));
        assert_eq!(s.remaining_current_ns, 500);
        // Past the end, remaining clamps to zero.
        assert_eq!(
            w.snapshot(SimTime::from_nanos(2_000)).remaining_current_ns,
            0
        );
    }

    #[test]
    fn queue_accounting_balances() {
        let mut w = PartitionWorker::new(ProfileSize::G3);
        w.enqueue(query(1, 2), SimDuration::from_nanos(300));
        w.enqueue(query(2, 8), SimDuration::from_nanos(700));
        assert_eq!(w.snapshot(SimTime::ZERO).queued_work_ns, 1_000);
        let (q, est) = w.pop_next().unwrap();
        assert_eq!(q.id, QueryId(1));
        assert_eq!(est, SimDuration::from_nanos(300));
        assert_eq!(w.snapshot(SimTime::ZERO).queued_work_ns, 700);
    }

    #[test]
    fn queue_is_fifo() {
        let mut w = PartitionWorker::new(ProfileSize::G1);
        for i in 0..5 {
            w.enqueue(query(i, 1), SimDuration::from_nanos(10));
        }
        for i in 0..5 {
            assert_eq!(w.pop_next().unwrap().0.id, QueryId(i));
        }
        assert!(w.pop_next().is_none());
    }

    #[test]
    fn finish_restores_idle_and_stamps_idle_since() {
        let mut w = PartitionWorker::new(ProfileSize::G1);
        w.begin(
            query(7, 1),
            SimTime::from_nanos(50),
            SimDuration::from_nanos(100),
        );
        assert!(!w.is_idle());
        let (q, started) = w.finish(SimTime::from_nanos(150));
        assert_eq!(q.id, QueryId(7));
        assert_eq!(started, SimTime::from_nanos(50));
        assert!(w.is_idle());
        assert_eq!(w.idle_since(), SimTime::from_nanos(150));
    }

    #[test]
    fn busy_time_accumulates_per_execution() {
        let mut w = PartitionWorker::new(ProfileSize::G1);
        w.begin(query(1, 1), SimTime::ZERO, SimDuration::from_nanos(400));
        w.finish(SimTime::from_nanos(400));
        w.begin(
            query(2, 1),
            SimTime::from_nanos(500),
            SimDuration::from_nanos(100),
        );
        w.finish(SimTime::from_nanos(600));
        assert_eq!(w.busy_ns(), 500);
    }

    #[test]
    fn abort_returns_the_query_and_refunds_unserved_busy_time() {
        let mut w = PartitionWorker::new(ProfileSize::G2);
        w.begin(query(3, 2), SimTime::ZERO, SimDuration::from_nanos(1_000));
        // Killed 400 ns in: 600 ns of the up-front charge come back.
        let q = w.abort(SimTime::from_nanos(400)).expect("was executing");
        assert_eq!(q.id, QueryId(3));
        assert_eq!(w.busy_ns(), 400);
        assert!(w.busy_until().is_none());
        assert_eq!(w.idle_since(), SimTime::from_nanos(400));
        // Idle worker: nothing to abort.
        assert!(w.abort(SimTime::from_nanos(500)).is_none());
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_begin_panics() {
        let mut w = PartitionWorker::new(ProfileSize::G1);
        w.begin(query(1, 1), SimTime::ZERO, SimDuration::from_nanos(10));
        w.begin(query(2, 1), SimTime::ZERO, SimDuration::from_nanos(10));
    }
}
