//! The six design points of the paper's evaluation (§VI) and the Table I
//! testbed configurations.

use std::fmt;

use dnn_zoo::ModelKind;
use inference_workload::BatchDistribution;
use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
use paris_core::{
    homogeneous_plan, random_plan, ElsaConfig, GpcBudget, KneeRule, Paris, PartitionPlan,
    PlanError, ProfileTable,
};

use crate::server::{InferenceServer, SchedulerKind, ServerConfig};
use crate::sweep::{capacity_hint_qps, search_latency_bounded_throughput, SweepConfig};

/// One of the evaluated server designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesignPoint {
    /// `GPU(N)+FIFS`: homogeneous partitioning, first-idle first-serve.
    HomogeneousFifs(ProfileSize),
    /// `Random+FIFS`: random heterogeneous partitioning, FIFS.
    RandomFifs {
        /// Seed for the random partitioner.
        seed: u64,
    },
    /// `Random+ELSA`: random heterogeneous partitioning, ELSA.
    RandomElsa {
        /// Seed for the random partitioner.
        seed: u64,
    },
    /// `PARIS+FIFS`: PARIS partitioning, FIFS scheduling.
    ParisFifs,
    /// `PARIS+ELSA`: the paper's full proposal.
    ParisElsa,
}

impl DesignPoint {
    /// Whether this design schedules with ELSA.
    #[must_use]
    pub fn uses_elsa(&self) -> bool {
        matches!(
            self,
            DesignPoint::RandomElsa { .. } | DesignPoint::ParisElsa
        )
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignPoint::HomogeneousFifs(size) => write!(f, "{size}+FIFS"),
            DesignPoint::RandomFifs { .. } => f.write_str("Random+FIFS"),
            DesignPoint::RandomElsa { .. } => f.write_str("Random+ELSA"),
            DesignPoint::ParisFifs => f.write_str("PARIS+FIFS"),
            DesignPoint::ParisElsa => f.write_str("PARIS+ELSA"),
        }
    }
}

/// Table I GPC budgets: `(heterogeneous/GPU(1,2,3) budget, GPU(7) budget)`.
///
/// The GPU(7) homogeneous servers get the closest GPC count that divides by
/// 7 (§V): MobileNet-class models use 28 GPCs (4×7g), ResNet-class 56
/// (8×7g), BERT 42 (6×7g). PARIS always uses the (smaller or equal)
/// heterogeneous budget, making its wins conservative.
#[must_use]
pub fn paper_budgets(model: ModelKind) -> (GpcBudget, GpcBudget) {
    match model {
        ModelKind::ShuffleNet | ModelKind::MobileNet => {
            (GpcBudget::new(24, 4), GpcBudget::new(28, 4))
        }
        ModelKind::ResNet50 | ModelKind::Conformer => {
            (GpcBudget::new(48, 8), GpcBudget::new(56, 8))
        }
        ModelKind::BertBase => (GpcBudget::new(42, 6), GpcBudget::new(42, 6)),
    }
}

/// A fully specified evaluation testbed for one model: profiling table,
/// workload distribution, budgets and SLA — everything needed to realize
/// each [`DesignPoint`] as a runnable server.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_server::{DesignPoint, Testbed};
///
/// let bed = Testbed::paper_default(ModelKind::MobileNet);
/// let paris = bed.server(DesignPoint::ParisElsa)?;
/// // PARIS on MobileNet yields a heterogeneous small-leaning mix.
/// assert!(paris.partitions().len() > 4);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Testbed {
    model: ModelKind,
    table: ProfileTable,
    dist: BatchDistribution,
    budget: GpcBudget,
    gpu7_budget: GpcBudget,
    sla_multiplier: f64,
    knee_rule: KneeRule,
    server_config_base: ServerConfig,
}

impl Testbed {
    /// The paper's default setup for `model`: A100 device model, log-normal
    /// batches 1–32 (σ = 0.9), Table I budgets, SLA = 1.5×.
    #[must_use]
    pub fn paper_default(model: ModelKind) -> Self {
        Self::with_distribution(model, BatchDistribution::paper_default())
    }

    /// A testbed with a custom batch distribution (sensitivity studies);
    /// the profiling table covers the distribution's batch range.
    #[must_use]
    pub fn with_distribution(model: ModelKind, dist: BatchDistribution) -> Self {
        let graph = model.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let max_batch = dist.max_batch().max(BatchDistribution::DEFAULT_MAX_BATCH);
        let table = ProfileTable::profile(&graph, &perf, &ProfileSize::ALL, max_batch);
        let (budget, gpu7_budget) = paper_budgets(model);
        Testbed {
            model,
            table,
            dist,
            budget,
            gpu7_budget,
            sla_multiplier: 1.5,
            knee_rule: KneeRule::default(),
            server_config_base: ServerConfig::new(SchedulerKind::Fifs),
        }
    }

    /// Overrides the SLA multiplier `N` (§V; default 1.5).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not positive and finite.
    #[must_use]
    pub fn with_sla_multiplier(mut self, n: f64) -> Self {
        assert!(n.is_finite() && n > 0.0, "SLA multiplier must be positive");
        self.sla_multiplier = n;
        self
    }

    /// Overrides the PARIS knee rule (ablation D1).
    #[must_use]
    pub fn with_knee_rule(mut self, rule: KneeRule) -> Self {
        self.knee_rule = rule;
        self
    }

    /// Overrides the GPC budgets.
    #[must_use]
    pub fn with_budgets(mut self, budget: GpcBudget, gpu7_budget: GpcBudget) -> Self {
        self.budget = budget;
        self.gpu7_budget = gpu7_budget;
        self
    }

    /// Overrides the base server configuration (frontend overhead, noise…).
    /// The scheduler field is replaced per design point.
    #[must_use]
    pub fn with_server_config(mut self, config: ServerConfig) -> Self {
        self.server_config_base = config;
        self
    }

    /// The model under test.
    #[must_use]
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The profiling table (shared by PARIS, ELSA and the simulator).
    #[must_use]
    pub fn table(&self) -> &ProfileTable {
        &self.table
    }

    /// The workload's batch-size distribution.
    #[must_use]
    pub fn distribution(&self) -> &BatchDistribution {
        &self.dist
    }

    /// The SLA target in nanoseconds (§V: `N ×` the max-batch latency on
    /// the largest partition).
    #[must_use]
    pub fn sla_ns(&self) -> u64 {
        self.table.sla_target_ns(self.sla_multiplier)
    }

    /// The GPC budget a design point draws from (GPU(7) uses its divisible
    /// budget; everything else the heterogeneous one).
    #[must_use]
    pub fn budget_for(&self, design: DesignPoint) -> GpcBudget {
        match design {
            DesignPoint::HomogeneousFifs(ProfileSize::G7) => self.gpu7_budget,
            _ => self.budget,
        }
    }

    /// Builds the partition plan of a design point.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the underlying partitioner.
    pub fn plan(&self, design: DesignPoint) -> Result<PartitionPlan, PlanError> {
        let budget = self.budget_for(design);
        match design {
            DesignPoint::HomogeneousFifs(size) => homogeneous_plan(size, budget),
            DesignPoint::RandomFifs { seed } | DesignPoint::RandomElsa { seed } => {
                random_plan(budget, seed)
            }
            DesignPoint::ParisFifs | DesignPoint::ParisElsa => Paris::new(&self.table, &self.dist)
                .with_knee_rule(self.knee_rule)
                .plan(budget),
        }
    }

    /// Builds the runnable server of a design point.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the underlying partitioner.
    pub fn server(&self, design: DesignPoint) -> Result<InferenceServer, PlanError> {
        let plan = self.plan(design)?;
        let mut config = self.server_config_base.clone();
        config.scheduler = if design.uses_elsa() {
            SchedulerKind::Elsa(ElsaConfig::new(self.sla_ns()))
        } else {
            SchedulerKind::Fifs
        };
        Ok(InferenceServer::from_plan(
            &plan,
            self.table.clone(),
            config,
        ))
    }

    /// Measures the latency-bounded throughput of a design point.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from the underlying partitioner.
    pub fn latency_bounded_qps(
        &self,
        design: DesignPoint,
        sweep: &SweepConfig,
    ) -> Result<f64, PlanError> {
        let server = self.server(design)?;
        let hint = capacity_hint_qps(&server, &self.dist);
        Ok(
            search_latency_bounded_throughput(&server, &self.dist, sweep, (hint * 0.2).max(1.0))
                .latency_bounded_qps,
        )
    }

    /// Determines `GPU(max)`: the best-performing homogeneous design
    /// (§VI's optimistic homogeneous upper bound). Returns the winning size
    /// and its latency-bounded throughput.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] if a homogeneous plan cannot be built.
    pub fn gpu_max(&self, sweep: &SweepConfig) -> Result<(ProfileSize, f64), PlanError> {
        let candidates = [
            ProfileSize::G1,
            ProfileSize::G2,
            ProfileSize::G3,
            ProfileSize::G7,
        ];
        let mut best: Option<(ProfileSize, f64)> = None;
        for size in candidates {
            let qps = self.latency_bounded_qps(DesignPoint::HomogeneousFifs(size), sweep)?;
            if best.is_none_or(|(_, b)| qps > b) {
                best = Some((size, qps));
            }
        }
        Ok(best.expect("candidate list is non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_table1() {
        let (b, g7) = paper_budgets(ModelKind::MobileNet);
        assert_eq!((b.total_gpcs, b.num_gpus), (24, 4));
        assert_eq!((g7.total_gpcs, g7.num_gpus), (28, 4));
        let (b, g7) = paper_budgets(ModelKind::BertBase);
        assert_eq!((b.total_gpcs, b.num_gpus), (42, 6));
        assert_eq!((g7.total_gpcs, g7.num_gpus), (42, 6));
        let (b, g7) = paper_budgets(ModelKind::Conformer);
        assert_eq!((b.total_gpcs, b.num_gpus), (48, 8));
        assert_eq!((g7.total_gpcs, g7.num_gpus), (56, 8));
    }

    #[test]
    fn every_design_yields_a_server() {
        let bed = Testbed::paper_default(ModelKind::ResNet50);
        for design in [
            DesignPoint::HomogeneousFifs(ProfileSize::G1),
            DesignPoint::HomogeneousFifs(ProfileSize::G3),
            DesignPoint::HomogeneousFifs(ProfileSize::G7),
            DesignPoint::RandomFifs { seed: 1 },
            DesignPoint::RandomElsa { seed: 1 },
            DesignPoint::ParisFifs,
            DesignPoint::ParisElsa,
        ] {
            let server = bed.server(design).unwrap();
            assert!(!server.partitions().is_empty(), "{design}");
        }
    }

    #[test]
    fn gpu7_design_uses_divisible_budget() {
        let bed = Testbed::paper_default(ModelKind::MobileNet);
        let plan = bed
            .plan(DesignPoint::HomogeneousFifs(ProfileSize::G7))
            .unwrap();
        assert_eq!(plan.count(ProfileSize::G7), 4, "28 GPCs → 4×GPU(7)");
        let paris = bed.plan(DesignPoint::ParisElsa).unwrap();
        assert!(
            paris.total_gpcs_used() <= 24,
            "PARIS uses the smaller budget"
        );
    }

    #[test]
    fn elsa_designs_carry_the_sla() {
        let bed = Testbed::paper_default(ModelKind::ResNet50);
        let server = bed.server(DesignPoint::ParisElsa).unwrap();
        match &server.config().scheduler {
            SchedulerKind::Elsa(cfg) => assert_eq!(cfg.sla_ns, bed.sla_ns()),
            SchedulerKind::Fifs => panic!("ParisElsa must schedule with ELSA"),
        }
    }

    #[test]
    fn sla_multiplier_scales_target() {
        let bed = Testbed::paper_default(ModelKind::ShuffleNet);
        let tight = bed.sla_ns() as f64;
        let loose = Testbed::paper_default(ModelKind::ShuffleNet)
            .with_sla_multiplier(3.0)
            .sla_ns() as f64;
        assert!((loose / tight - 2.0).abs() < 1e-6);
    }

    #[test]
    fn design_display_names_match_paper() {
        assert_eq!(
            DesignPoint::HomogeneousFifs(ProfileSize::G3).to_string(),
            "GPU(3)+FIFS"
        );
        assert_eq!(DesignPoint::ParisElsa.to_string(), "PARIS+ELSA");
        assert_eq!(
            DesignPoint::RandomElsa { seed: 0 }.to_string(),
            "Random+ELSA"
        );
    }

    #[test]
    fn custom_distribution_extends_profile_range() {
        let dist = BatchDistribution::log_normal(64, 0.9);
        let bed = Testbed::with_distribution(ModelKind::MobileNet, dist);
        assert_eq!(bed.table().max_batch(), 64);
    }
}
