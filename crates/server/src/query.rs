//! Query identity and lifecycle records.

use std::fmt;

use des_engine::{SimDuration, SimTime};

/// Unique identifier of one inference query within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An in-flight inference query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Unique id within the run.
    pub id: QueryId,
    /// Input batch size.
    pub batch: usize,
    /// When the query reached the server frontend.
    pub arrival: SimTime,
    /// When the serial frontend handed the query to the scheduler. Carried
    /// on the query itself so completion records never need an O(trace)
    /// side table of dispatch times.
    pub dispatched: SimTime,
}

/// The full lifecycle of one completed query — the raw data behind every
/// latency/violation statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Unique id within the run.
    pub id: QueryId,
    /// Input batch size.
    pub batch: usize,
    /// Arrival at the frontend.
    pub arrival: SimTime,
    /// When the frontend handed the query to the scheduler.
    pub dispatched: SimTime,
    /// When execution began on a partition.
    pub started: SimTime,
    /// When execution finished.
    pub completed: SimTime,
    /// Index of the partition that served the query.
    pub partition: usize,
}

impl QueryRecord {
    /// End-to-end latency: completion minus arrival (what the SLA is
    /// measured against).
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.completed - self.arrival
    }

    /// Time spent waiting (frontend + queue) before execution began.
    #[must_use]
    pub fn queueing_delay(&self) -> SimDuration {
        self.started - self.arrival
    }

    /// Pure execution time on the partition.
    #[must_use]
    pub fn service_time(&self) -> SimDuration {
        self.completed - self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> QueryRecord {
        QueryRecord {
            id: QueryId(1),
            batch: 4,
            arrival: SimTime::from_nanos(100),
            dispatched: SimTime::from_nanos(150),
            started: SimTime::from_nanos(400),
            completed: SimTime::from_nanos(1_000),
            partition: 2,
        }
    }

    #[test]
    fn latency_spans_arrival_to_completion() {
        assert_eq!(record().latency(), SimDuration::from_nanos(900));
    }

    #[test]
    fn delay_plus_service_equals_latency() {
        let r = record();
        assert_eq!(r.queueing_delay() + r.service_time(), r.latency());
    }

    #[test]
    fn id_displays_compactly() {
        assert_eq!(QueryId(42).to_string(), "q42");
    }
}
