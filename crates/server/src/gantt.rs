//! Execution-trace recording and ASCII rendering (the Figure 5 / Figure 10
//! style timelines).

use std::fmt;

use des_engine::SimTime;
use mig_gpu::ProfileSize;

use crate::query::QueryId;

/// One execution interval of one query on one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Partition index.
    pub partition: usize,
    /// The executed query.
    pub query: QueryId,
    /// The query's batch size.
    pub batch: usize,
    /// Execution start.
    pub start: SimTime,
    /// Execution end.
    pub end: SimTime,
}

/// One outage interval of one partition row: the span between a fault
/// killing the instance and — for rows that come back, which killed rows
/// never do — the repair. Rendered as `×` cells so a timeline shows the
/// outage window next to the executions around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSpan {
    /// Partition (timeline row) index.
    pub partition: usize,
    /// When the fault struck.
    pub start: SimTime,
    /// When the row recovered; `None` for a row that stayed dark (the
    /// repair brought *new* instances up on their own rows).
    pub end: Option<SimTime>,
}

/// Spans per arena chunk. Chunks are fixed-size and never reallocated, so
/// pushing a span never moves previously recorded spans and a long traced
/// run costs one allocation per `CHUNK` completions instead of the
/// amortized-doubling copies of a flat `Vec`.
const CHUNK: usize = 1024;

/// A complete execution trace of a run, renderable as an ASCII timeline.
///
/// Spans live in a **chunked arena**: fixed-capacity chunks appended as
/// they fill. Long traced runs therefore stay allocation-free between
/// chunk boundaries (no doubling copies), and span storage is
/// cache-friendly for the linear scans rendering performs.
///
/// # Examples
///
/// ```
/// use des_engine::SimTime;
/// use inference_server::{Gantt, Span};
/// use inference_server::QueryId;
/// use mig_gpu::ProfileSize;
///
/// let mut gantt = Gantt::new(vec![ProfileSize::G1, ProfileSize::G7]);
/// gantt.push(Span {
///     partition: 0,
///     query: QueryId(0),
///     batch: 4,
///     start: SimTime::from_nanos(0),
///     end: SimTime::from_nanos(500),
/// });
/// assert_eq!(gantt.len(), 1);
/// let art = gantt.render_ascii(40);
/// assert!(art.contains("GPU(1)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gantt {
    partition_sizes: Vec<ProfileSize>,
    /// Arena chunks: every chunk but the last holds exactly [`CHUNK`]
    /// spans, so `chunks` comparison/indexing is well-defined.
    chunks: Vec<Vec<Span>>,
    len: usize,
    /// Fault outage windows, in marking order (few per run).
    outages: Vec<OutageSpan>,
}

impl Gantt {
    /// Creates an empty trace for the given partitions.
    #[must_use]
    pub fn new(partition_sizes: Vec<ProfileSize>) -> Self {
        Gantt {
            partition_sizes,
            chunks: Vec::new(),
            len: 0,
            outages: Vec::new(),
        }
    }

    /// Records one execution span.
    pub fn push(&mut self, span: Span) {
        if self.len % CHUNK == 0 {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        self.chunks
            .last_mut()
            .expect("chunk ensured above")
            .push(span);
        self.len += 1;
    }

    /// Appends a timeline row for a partition created mid-run (an online
    /// reconfiguration or a cluster capacity loan brought a new instance
    /// up) and returns its row index. Spans pushed for that instance must
    /// use the returned index.
    pub fn add_partition(&mut self, size: ProfileSize) -> usize {
        self.partition_sizes.push(size);
        self.partition_sizes.len() - 1
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no span has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All recorded spans, in completion order.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.chunks.iter().flatten()
    }

    /// The `i`-th recorded span (completion order), if it exists. O(1) —
    /// the arena's chunk geometry is fixed.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Span> {
        self.chunks.get(i / CHUNK)?.get(i % CHUNK)
    }

    /// The partition profile behind each timeline row.
    #[must_use]
    pub fn partition_sizes(&self) -> &[ProfileSize] {
        &self.partition_sizes
    }

    /// Marks row `partition` as killed by a fault at `start` — it renders
    /// as `×` from there on (or to [`close_outage`](Self::close_outage)).
    pub fn mark_outage(&mut self, partition: usize, start: SimTime) {
        self.outages.push(OutageSpan {
            partition,
            start,
            end: None,
        });
    }

    /// Closes the most recent open outage on `partition` at `end` (no-op
    /// if the row holds none).
    pub fn close_outage(&mut self, partition: usize, end: SimTime) {
        if let Some(o) = self
            .outages
            .iter_mut()
            .rev()
            .find(|o| o.partition == partition && o.end.is_none())
        {
            o.end = Some(end);
        }
    }

    /// The recorded fault outage windows, in marking order.
    #[must_use]
    pub fn outages(&self) -> &[OutageSpan] {
        &self.outages
    }

    /// Appends the trace to a Chrome `trace_event` writer: execution spans
    /// as `ph:"X"` slices on `(pid, tid = partition row)` and outage
    /// windows — the ASCII renderer's `×` cells — as `×outage` slices on
    /// the same rows, so chrome://tracing / Perfetto shows queries and
    /// outages on one timeline. An outage still open at the end of the
    /// trace extends to the trace horizon, mirroring
    /// [`render_ascii`](Self::render_ascii).
    pub fn write_chrome_trace(&self, w: &mut inference_obs::ChromeTraceWriter, pid: u32) {
        for span in self.iter() {
            w.complete_slice(
                &format!("q{} b{}", span.query.0, span.batch),
                "exec",
                pid,
                span.partition as u32,
                span.start.as_micros_f64(),
                (span.end.saturating_since(span.start)).as_micros_f64(),
            );
        }
        if self.outages.is_empty() {
            return;
        }
        let horizon_ns = self
            .iter()
            .map(|s| s.end.as_nanos())
            .chain(
                self.outages
                    .iter()
                    .map(|o| o.end.unwrap_or(o.start).as_nanos()),
            )
            .max()
            .unwrap_or(0);
        let horizon = SimTime::from_nanos(horizon_ns);
        for o in &self.outages {
            let end = o.end.unwrap_or(horizon).max(o.start);
            w.complete_slice(
                "\u{d7}outage",
                "outage",
                pid,
                o.partition as u32,
                o.start.as_micros_f64(),
                end.saturating_since(o.start).as_micros_f64(),
            );
        }
    }

    /// Renders the trace as one text row per partition, `width` characters
    /// of timeline. Busy cells show the last digit of the query id; idle
    /// cells show `·`.
    #[must_use]
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let horizon = self
            .iter()
            .map(|s| s.end.as_nanos())
            .chain(
                self.outages
                    .iter()
                    .map(|o| o.end.unwrap_or(o.start).as_nanos()),
            )
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for (p, size) in self.partition_sizes.iter().enumerate() {
            let mut cells = vec!['\u{b7}'; width];
            for span in self.iter().filter(|s| s.partition == p) {
                let lo = (span.start.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let hi = (span.end.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let hi = hi.clamp(lo + 1, width);
                let digit = char::from_digit((span.query.0 % 10) as u32, 10).unwrap_or('#');
                for cell in cells.iter_mut().take(hi).skip(lo.min(width - 1)) {
                    *cell = digit;
                }
            }
            for outage in self.outages.iter().filter(|o| o.partition == p) {
                let lo =
                    (outage.start.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                if lo >= width {
                    continue;
                }
                let hi = outage.end.map_or(width, |e| {
                    (e.as_nanos() as u128 * width as u128 / horizon as u128) as usize
                });
                let hi = hi.clamp(lo + 1, width);
                for cell in cells.iter_mut().take(hi).skip(lo) {
                    *cell = '\u{d7}';
                }
            }
            out.push_str(&format!("{size:>7} \u{2502}"));
            out.extend(cells);
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a Gantt {
    type Item = &'a Span;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Vec<Span>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter().flatten()
    }
}

impl fmt::Display for Gantt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii(72))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(partition: usize, id: u64, start: u64, end: u64) -> Span {
        Span {
            partition,
            query: QueryId(id),
            batch: 1,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn render_has_one_row_per_partition() {
        let mut g = Gantt::new(vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G7]);
        g.push(span(0, 1, 0, 100));
        let art = g.render_ascii(40);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("GPU(2)"));
    }

    #[test]
    fn busy_cells_show_query_digit() {
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        g.push(span(0, 7, 0, 1_000));
        let art = g.render_ascii(20);
        assert!(art.contains('7'));
    }

    #[test]
    fn empty_gantt_renders_idle_rows() {
        let g = Gantt::new(vec![ProfileSize::G3]);
        let art = g.render_ascii(10);
        assert!(art.contains('\u{b7}'));
    }

    #[test]
    fn partitions_added_mid_run_get_their_own_rows() {
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        g.push(span(0, 1, 0, 100));
        let row = g.add_partition(ProfileSize::G7);
        assert_eq!(row, 1);
        g.push(span(row, 2, 100, 300));
        let art = g.render_ascii(30);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains("GPU(7)"));
    }

    #[test]
    fn outage_windows_render_as_dead_cells() {
        let mut g = Gantt::new(vec![ProfileSize::G1, ProfileSize::G2]);
        g.push(span(0, 1, 0, 400));
        g.push(span(1, 2, 0, 1_000));
        // Row 0 dies at t=400 and never comes back.
        g.mark_outage(0, SimTime::from_nanos(400));
        assert_eq!(g.outages().len(), 1);
        assert!(g.outages()[0].end.is_none());
        let art = g.render_ascii(20);
        let row0 = art.lines().next().expect("row 0");
        assert!(row0.contains('\u{d7}'), "outage cells visible: {row0}");
        let row1 = art.lines().nth(1).expect("row 1");
        assert!(!row1.contains('\u{d7}'), "healthy row unaffected: {row1}");
        // A closed outage stops rendering at its end.
        g.close_outage(0, SimTime::from_nanos(600));
        assert_eq!(g.outages()[0].end, Some(SimTime::from_nanos(600)));
        let art = g.render_ascii(20);
        let row0 = art.lines().next().expect("row 0");
        assert!(
            row0.trim_end().ends_with('\u{b7}'),
            "idle after repair: {row0}"
        );
        // Closing a row with no open outage is a no-op.
        g.close_outage(1, SimTime::from_nanos(700));
        assert_eq!(g.outages().len(), 1);
    }

    #[test]
    fn chrome_trace_covers_spans_and_outages() {
        let mut g = Gantt::new(vec![ProfileSize::G1, ProfileSize::G2]);
        g.push(span(0, 1, 0, 400));
        g.push(span(1, 2, 0, 1_000));
        // Row 0 dies at t=400 and never recovers: the slice must extend to
        // the trace horizon (1 µs), like render_ascii's `×` cells.
        g.mark_outage(0, SimTime::from_nanos(400));
        let mut w = inference_obs::ChromeTraceWriter::new();
        g.write_chrome_trace(&mut w, 3);
        assert_eq!(w.events(), 3);
        let doc = w.finish();
        assert!(doc.contains("\"name\":\"q1 b1\""), "{doc}");
        assert!(doc.contains("\u{d7}outage"), "{doc}");
        assert!(doc.contains("\"pid\":3"), "{doc}");
        assert!(
            doc.contains("\"cat\":\"outage\",\"ph\":\"X\",\"ts\":0.4,\"dur\":0.6"),
            "open outage runs 0.4–1.0 µs: {doc}"
        );
    }

    #[test]
    fn spans_are_recorded_in_order() {
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        g.push(span(0, 1, 0, 10));
        g.push(span(0, 2, 10, 30));
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(1).unwrap().query, QueryId(2));
        assert!(g.get(2).is_none());
    }

    #[test]
    fn arena_preserves_order_and_indexing_across_chunks() {
        // Push well past one chunk: every span stays reachable in order,
        // both through the iterator and through O(1) indexing.
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        let n = 3 * CHUNK + 17;
        for i in 0..n {
            g.push(span(0, i as u64, i as u64 * 10, i as u64 * 10 + 5));
        }
        assert_eq!(g.len(), n);
        assert!(!g.is_empty());
        for (i, s) in g.iter().enumerate() {
            assert_eq!(s.query, QueryId(i as u64));
        }
        assert_eq!(g.get(CHUNK).unwrap().query, QueryId(CHUNK as u64));
        assert_eq!(g.get(n - 1).unwrap().query, QueryId(n as u64 - 1));
        assert!(g.get(n).is_none());
        assert!((&g).into_iter().count() == n);
        // The arena property itself: every chunk but the last holds
        // exactly CHUNK spans and never grew past its fixed capacity —
        // a regression to one doubling Vec would fail here.
        assert_eq!(g.chunks.len(), n.div_ceil(CHUNK));
        for (i, chunk) in g.chunks.iter().enumerate() {
            assert_eq!(chunk.capacity(), CHUNK, "chunk {i} reallocated");
            if i + 1 < g.chunks.len() {
                assert_eq!(chunk.len(), CHUNK, "interior chunk {i} not full");
            }
        }
    }
}
