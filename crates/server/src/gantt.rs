//! Execution-trace recording and ASCII rendering (the Figure 5 / Figure 10
//! style timelines).

use std::fmt;

use des_engine::SimTime;
use mig_gpu::ProfileSize;

use crate::query::QueryId;

/// One execution interval of one query on one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Partition index.
    pub partition: usize,
    /// The executed query.
    pub query: QueryId,
    /// The query's batch size.
    pub batch: usize,
    /// Execution start.
    pub start: SimTime,
    /// Execution end.
    pub end: SimTime,
}

/// A complete execution trace of a run, renderable as an ASCII timeline.
///
/// # Examples
///
/// ```
/// use des_engine::SimTime;
/// use inference_server::{Gantt, Span};
/// use inference_server::QueryId;
/// use mig_gpu::ProfileSize;
///
/// let mut gantt = Gantt::new(vec![ProfileSize::G1, ProfileSize::G7]);
/// gantt.push(Span {
///     partition: 0,
///     query: QueryId(0),
///     batch: 4,
///     start: SimTime::from_nanos(0),
///     end: SimTime::from_nanos(500),
/// });
/// let art = gantt.render_ascii(40);
/// assert!(art.contains("GPU(1)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gantt {
    partition_sizes: Vec<ProfileSize>,
    spans: Vec<Span>,
}

impl Gantt {
    /// Creates an empty trace for the given partitions.
    #[must_use]
    pub fn new(partition_sizes: Vec<ProfileSize>) -> Self {
        Gantt {
            partition_sizes,
            spans: Vec::new(),
        }
    }

    /// Records one execution span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Appends a timeline row for a partition created mid-run (an online
    /// reconfiguration or a cluster capacity loan brought a new instance
    /// up) and returns its row index. Spans pushed for that instance must
    /// use the returned index.
    pub fn add_partition(&mut self, size: ProfileSize) -> usize {
        self.partition_sizes.push(size);
        self.partition_sizes.len() - 1
    }

    /// All recorded spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The partition profile behind each timeline row.
    #[must_use]
    pub fn partition_sizes(&self) -> &[ProfileSize] {
        &self.partition_sizes
    }

    /// Renders the trace as one text row per partition, `width` characters
    /// of timeline. Busy cells show the last digit of the query id; idle
    /// cells show `·`.
    #[must_use]
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let horizon = self
            .spans
            .iter()
            .map(|s| s.end.as_nanos())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for (p, size) in self.partition_sizes.iter().enumerate() {
            let mut row = vec![b'\xb7'; 0];
            row.clear();
            let mut cells = vec!['\u{b7}'; width];
            for span in self.spans.iter().filter(|s| s.partition == p) {
                let lo = (span.start.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let hi = (span.end.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let hi = hi.clamp(lo + 1, width);
                let digit = char::from_digit((span.query.0 % 10) as u32, 10).unwrap_or('#');
                for cell in cells.iter_mut().take(hi).skip(lo.min(width - 1)) {
                    *cell = digit;
                }
            }
            out.push_str(&format!("{size:>7} \u{2502}"));
            out.extend(cells);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Gantt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii(72))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(partition: usize, id: u64, start: u64, end: u64) -> Span {
        Span {
            partition,
            query: QueryId(id),
            batch: 1,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn render_has_one_row_per_partition() {
        let mut g = Gantt::new(vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G7]);
        g.push(span(0, 1, 0, 100));
        let art = g.render_ascii(40);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("GPU(2)"));
    }

    #[test]
    fn busy_cells_show_query_digit() {
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        g.push(span(0, 7, 0, 1_000));
        let art = g.render_ascii(20);
        assert!(art.contains('7'));
    }

    #[test]
    fn empty_gantt_renders_idle_rows() {
        let g = Gantt::new(vec![ProfileSize::G3]);
        let art = g.render_ascii(10);
        assert!(art.contains('\u{b7}'));
    }

    #[test]
    fn partitions_added_mid_run_get_their_own_rows() {
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        g.push(span(0, 1, 0, 100));
        let row = g.add_partition(ProfileSize::G7);
        assert_eq!(row, 1);
        g.push(span(row, 2, 100, 300));
        let art = g.render_ascii(30);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains("GPU(7)"));
    }

    #[test]
    fn spans_are_recorded_in_order() {
        let mut g = Gantt::new(vec![ProfileSize::G1]);
        g.push(span(0, 1, 0, 10));
        g.push(span(0, 2, 10, 30));
        assert_eq!(g.spans().len(), 2);
        assert_eq!(g.spans()[1].query, QueryId(2));
    }
}
