//! The discrete-event multi-GPU inference-server simulator.
//!
//! Reproduces the runtime structure of the paper's testbed (a modified
//! DeepRecInfra frontend feeding MIG partitions): queries arrive at a
//! serial frontend, a scheduling policy (FIFS or ELSA) assigns them to
//! partitions, each partition executes its queue in FIFO order with the
//! profiled latency as service time, and every completion is recorded.
//!
//! # Hot path invariants
//!
//! [`InferenceServer::run`] is the workhorse behind every sweep, so its
//! per-query dispatch cost is engineered to be **allocation-free and
//! sub-linear in the partition count** once warm:
//!
//! * Arrivals are **streamed** into the event queue: only the next
//!   arrival's dispatch event is pending at any time, and handling it
//!   injects its successor. The queue therefore holds O(P) events (one
//!   completion per busy partition + one arrival), not O(trace), so every
//!   push/pop costs O(log P).
//! * Same-instant event order is pinned by explicit tie-break keys
//!   (dispatches first, in query order; then completions, in scheduling
//!   order) — exactly the order the original implementation produced by
//!   pre-loading the whole trace, which keeps reports **bit-for-bit
//!   reproducible** against [`InferenceServer::run_reference`].
//! * ELSA decisions use [`Elsa::place_mut`] over a persistent
//!   [`ElsaState`] (per-size buckets with incrementally maintained load)
//!   instead of snapshotting and sorting all partitions per query; FIFS
//!   keeps its idle set in a [`LoadSet`] ordered by `(idle_since, index)`.
//!   Both resolve a dispatch in O(log P).
//! * Profiled latencies come from borrowed per-partition rows
//!   ([`ProfileTable::latency_row`]), one slice index per estimate.
//! * With [`ReportDetail::Summary`], per-query records are not
//!   materialized at all: latency goes straight into a fixed-footprint
//!   [`LatencyHistogram`], making a sweep's memory O(1) in the trace
//!   length.
//!
//! The equivalence contract between the fast path and the pure reference
//! implementations is enforced by `runs_are_deterministic` /
//! `fast_path_matches_reference*` below and by the property tests in
//! `tests/properties.rs`.

use des_engine::{SimDuration, SimTime, Simulation};
use inference_workload::QuerySpec;
use mig_gpu::ProfileSize;
use paris_core::{Elsa, ElsaConfig, PartitionPlan, ProfileTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use server_metrics::{LatencyHistogram, LatencyRecorder};

use crate::dispatch::{noisy_service_duration, CoreConfig, DispatchCore, GroupSpec, ShardEvent};
use crate::gantt::{Gantt, Span};
use crate::query::{Query, QueryId, QueryRecord};
use crate::worker::PartitionWorker;

/// Which scheduling policy drives the server.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// First-idle first-serve: the baseline of Triton-style servers
    /// (§III-C). Queries wait in one central FIFO; any partition that goes
    /// idle takes the head.
    Fifs,
    /// The paper's heterogeneity-aware scheduler (Algorithm 2).
    Elsa(ElsaConfig),
}

/// How much per-query material a run keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportDetail {
    /// Keep everything: per-query [`QueryRecord`]s and exact latency
    /// samples. Memory grows O(trace).
    #[default]
    Full,
    /// Keep only aggregates: latencies go straight into the fixed-size
    /// [`LatencyHistogram`], no records are materialized, and run memory
    /// is O(partitions). The mode sweeps use.
    Summary,
}

/// Server-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// The scheduling policy.
    pub scheduler: SchedulerKind,
    /// Serial frontend service time per query (query decode + dispatch).
    /// This is what bottlenecked the paper's 48×GPU(1) MobileNet config.
    pub frontend_overhead: SimDuration,
    /// Record an execution Gantt trace (costs memory; off for sweeps).
    pub record_gantt: bool,
    /// Relative standard deviation of multiplicative service-time noise
    /// (0 = perfectly deterministic execution, the paper's observation).
    /// Service times are scaled by `1 + noise·z` with `z` standard normal,
    /// floored at 0.1× the profiled latency.
    pub service_noise: f64,
    /// Seed for the service-noise RNG.
    pub noise_seed: u64,
    /// How much per-query material [`InferenceServer::run`] keeps.
    pub detail: ReportDetail,
    /// When set, runs count SLA violations (`latency > sla_ns`) **exactly**
    /// at every detail level — including [`ReportDetail::Summary`], whose
    /// histogram alone is only bucket-accurate (≤ 1.6 % error).
    pub sla_ns: Option<u64>,
}

impl ServerConfig {
    /// A deterministic server with the given policy and a 20 µs frontend.
    #[must_use]
    pub fn new(scheduler: SchedulerKind) -> Self {
        ServerConfig {
            scheduler,
            frontend_overhead: SimDuration::from_micros(20),
            record_gantt: false,
            service_noise: 0.0,
            noise_seed: 0,
            detail: ReportDetail::Full,
            sla_ns: None,
        }
    }

    /// Overrides the frontend service time.
    #[must_use]
    pub fn with_frontend_overhead(mut self, overhead: SimDuration) -> Self {
        self.frontend_overhead = overhead;
        self
    }

    /// Enables Gantt-trace recording.
    #[must_use]
    pub fn with_gantt(mut self) -> Self {
        self.record_gantt = true;
        self
    }

    /// Sets how much per-query material runs keep.
    #[must_use]
    pub fn with_detail(mut self, detail: ReportDetail) -> Self {
        self.detail = detail;
        self
    }

    /// Sets the SLA target runs count violations against, exactly, at
    /// every detail level (see [`RunReport::sla_violations`]).
    #[must_use]
    pub fn with_sla_target(mut self, sla_ns: u64) -> Self {
        self.sla_ns = Some(sla_ns);
        self
    }

    /// Adds multiplicative service-time noise (robustness studies):
    /// `noise` is the relative standard deviation of the normally
    /// distributed scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    #[must_use]
    pub fn with_service_noise(mut self, noise: f64, seed: u64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        self.service_noise = noise;
        self.noise_seed = seed;
        self
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Detail level the run was recorded at.
    pub detail: ReportDetail,
    /// Per-query lifecycle records, completion order. Empty under
    /// [`ReportDetail::Summary`].
    pub records: Vec<QueryRecord>,
    /// Exact end-to-end latency samples. Empty under
    /// [`ReportDetail::Summary`].
    pub latency: LatencyRecorder,
    /// Fixed-footprint latency histogram, filled at every detail level.
    pub histogram: LatencyHistogram,
    /// Queue-wait (`started − dispatched`) histogram, filled at every
    /// detail level — the O(1)-memory source of
    /// [`breakdown`](Self::breakdown), tracing on or off.
    pub queue_hist: LatencyHistogram,
    /// Service-time (`completed − started`) histogram, filled at every
    /// detail level.
    pub service_hist: LatencyHistogram,
    /// Time from first arrival to last completion.
    pub makespan: SimDuration,
    /// Completed queries divided by the makespan.
    pub achieved_qps: f64,
    /// Busy fraction of every partition over the makespan.
    pub partition_utilization: Vec<f64>,
    /// Execution trace, when requested via [`ServerConfig::with_gantt`].
    pub gantt: Option<Gantt>,
    /// High-water mark of the DES event queue — O(partitions) for the
    /// streaming fast path, O(trace) for the pre-loaded reference path.
    pub peak_pending_events: usize,
    /// The SLA target exact violation counting ran against, if one was
    /// configured ([`ServerConfig::with_sla_target`] or the `sla_ns`
    /// argument of [`InferenceServer::run_stream_sla`]).
    pub sla_ns: Option<u64>,
    /// Exact number of queries whose latency exceeded [`sla_ns`](Self::sla_ns)
    /// (0 when no target was configured). Counted per completion, so it is
    /// exact even under [`ReportDetail::Summary`].
    pub sla_violations: u64,
}

impl RunReport {
    /// Number of queries that completed.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.histogram.count()
    }

    /// The paper's headline metric: p95 tail latency in milliseconds
    /// (exact under [`ReportDetail::Full`], bucket-accurate under
    /// [`ReportDetail::Summary`]).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        match self.detail {
            ReportDetail::Full => self.latency.p95_ms(),
            ReportDetail::Summary => self.histogram.p95_ms(),
        }
    }

    /// Mean partition utilization.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.partition_utilization.is_empty() {
            return 0.0;
        }
        self.partition_utilization.iter().sum::<f64>() / self.partition_utilization.len() as f64
    }

    /// Where latency came from: queue-wait vs service-time percentiles,
    /// computed from the always-on decomposition histograms (single-server
    /// runs never reconfigure, so the reconfig component is 0).
    #[must_use]
    pub fn breakdown(&self) -> server_metrics::LatencyBreakdown {
        server_metrics::LatencyBreakdown::from_histograms(&self.queue_hist, &self.service_hist, 0)
    }

    /// Fraction of queries whose latency exceeded `sla_ns`.
    ///
    /// Exact whenever possible: if the run counted violations against this
    /// very target (see [`sla_violations`](Self::sla_violations)) or kept
    /// exact samples ([`ReportDetail::Full`]), the rate is exact; only a
    /// [`ReportDetail::Summary`] run queried at a *different* target falls
    /// back to histogram-bucket accuracy (≤ 1.6 % error).
    #[must_use]
    pub fn sla_violation_rate(&self, sla_ns: u64) -> f64 {
        if self.sla_ns == Some(sla_ns) {
            let n = self.completed();
            return if n == 0 {
                0.0
            } else {
                self.sla_violations as f64 / n as f64
            };
        }
        match self.detail {
            ReportDetail::Full => self.latency.violation_rate(sla_ns),
            ReportDetail::Summary => self.histogram.violation_rate(sla_ns),
        }
    }
}

/// Events driving the pre-loaded reference simulation
/// ([`InferenceServer::run_reference`]). The fast path shares
/// [`ShardEvent`] with every other layer through the unified
/// [`DispatchCore`].
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The frontend finished preparing a query; the scheduler places it.
    Dispatch(Query),
    /// A partition finished its current query.
    Complete { partition: usize },
}

/// A simulated multi-GPU inference server: a set of MIG partitions, a
/// profiled latency table and a scheduling policy.
///
/// `run` is `&self` and rebuilds all mutable state, so one server value can
/// evaluate many traces (and many threads can share it).
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::{BatchDistribution, TraceGenerator};
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::ProfileTable;
/// use inference_server::{InferenceServer, SchedulerKind, ServerConfig};
///
/// let model = ModelKind::MobileNet.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
///
/// let server = InferenceServer::new(
///     vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G3],
///     table,
///     ServerConfig::new(SchedulerKind::Fifs),
/// );
/// let trace = TraceGenerator::new(300.0, BatchDistribution::paper_default(), 1)
///     .generate_for(0.5);
/// let report = server.run(&trace);
/// assert_eq!(report.records.len(), trace.len());
/// ```
#[derive(Debug, Clone)]
pub struct InferenceServer {
    partitions: Vec<ProfileSize>,
    table: ProfileTable,
    config: ServerConfig,
}

impl InferenceServer {
    /// Creates a server over an explicit partition list.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    #[must_use]
    pub fn new(partitions: Vec<ProfileSize>, table: ProfileTable, config: ServerConfig) -> Self {
        assert!(
            !partitions.is_empty(),
            "server needs at least one partition"
        );
        InferenceServer {
            partitions,
            table,
            config,
        }
    }

    /// Creates a server hosting the instances of a [`PartitionPlan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan contains no instances.
    #[must_use]
    pub fn from_plan(plan: &PartitionPlan, table: ProfileTable, config: ServerConfig) -> Self {
        Self::new(plan.partitions(), table, config)
    }

    /// The partition profiles, in scheduler iteration order.
    #[must_use]
    pub fn partitions(&self) -> &[ProfileSize] {
        &self.partitions
    }

    /// The profiled latency table the server schedules with.
    #[must_use]
    pub fn table(&self) -> &ProfileTable {
        &self.table
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Simulates the server over a query trace until every query completes,
    /// at the configured [`ReportDetail`].
    #[must_use]
    pub fn run(&self, trace: &[QuerySpec]) -> RunReport {
        self.run_with_detail(trace, self.config.detail)
    }

    /// Simulates the server over a query trace at an explicit detail level.
    #[must_use]
    pub fn run_with_detail(&self, trace: &[QuerySpec], detail: ReportDetail) -> RunReport {
        self.run_stream(trace.iter().copied(), detail)
    }

    /// Simulates the server over a *streamed* arrival sequence (ascending
    /// arrival times) without ever materializing the trace: together with
    /// [`ReportDetail::Summary`] this makes a whole measurement O(1) in
    /// memory regardless of how many queries flow through.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnn_zoo::ModelKind;
    /// use inference_workload::{BatchDistribution, TraceGenerator};
    /// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    /// use paris_core::ProfileTable;
    /// use inference_server::{InferenceServer, ReportDetail, SchedulerKind, ServerConfig};
    ///
    /// let model = ModelKind::MobileNet.build();
    /// let perf = PerfModel::new(DeviceSpec::a100());
    /// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    /// let server = InferenceServer::new(
    ///     vec![ProfileSize::G2; 2],
    ///     table,
    ///     ServerConfig::new(SchedulerKind::Fifs),
    /// );
    /// let gen = TraceGenerator::new(200.0, BatchDistribution::paper_default(), 9);
    /// let report = server.run_stream(gen.stream_for(0.5), ReportDetail::Summary);
    /// assert!(report.completed() > 0);
    /// assert!(report.records.is_empty(), "summary keeps no records");
    /// ```
    #[must_use]
    pub fn run_stream<I>(&self, arrivals: I, detail: ReportDetail) -> RunReport
    where
        I: IntoIterator<Item = QuerySpec>,
    {
        self.run_stream_sla(arrivals, detail, self.config.sla_ns)
    }

    /// [`run_stream`](Self::run_stream) with an explicit SLA target for
    /// exact violation counting, overriding [`ServerConfig::sla_ns`]. This
    /// is how sweeps get exact violation rates out of
    /// [`ReportDetail::Summary`] runs without a per-point server rebuild.
    ///
    /// The run is the **identity instantiation** of the unified
    /// [`DispatchCore`]: one group holding every partition, driven by the
    /// same streamed event loop as the multi-model and cluster layers, so
    /// there is exactly one dispatch/complete/drain implementation in the
    /// codebase. Bit-for-bit equality with
    /// [`run_reference`](Self::run_reference) is still enforced by the
    /// unit and property suites.
    #[must_use]
    pub fn run_stream_sla<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        sla_ns: Option<u64>,
    ) -> RunReport
    where
        I: IntoIterator<Item = QuerySpec>,
    {
        let mut arrivals = arrivals.into_iter();
        let n = self.partitions.len();
        // Steady state: ≤ one completion per partition + the next
        // streamed arrival.
        let mut sim: Simulation<ShardEvent> = Simulation::with_capacity(n + 2);
        let mut core = DispatchCore::new(
            vec![GroupSpec {
                name: "server",
                table: &self.table,
                scheduler: self.config.scheduler.clone(),
                sla_ns,
            }],
            std::slice::from_ref(&self.partitions),
            CoreConfig {
                frontend_overhead: self.config.frontend_overhead,
                service_noise: self.config.service_noise,
                noise_seed: self.config.noise_seed,
                detail,
                record_gantt: self.config.record_gantt,
                degrade_visible: true,
            },
        );
        if let Some(spec) = arrivals.next() {
            core.offer(0, spec, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        // One-slot deferred-push register: each handler's *last* schedule
        // is held back and fused with the next pop (`Simulation::push_pop`)
        // — order-preserving, since a later schedule flushes the held one
        // first. Nothing reads the queue between a handler's schedules and
        // the next pop, so the deferral is invisible.
        let mut held: Option<(SimTime, u64, ShardEvent)> = None;
        loop {
            let next = match held.take() {
                Some((t, k, e)) => Some(sim.push_pop(t, k, e)),
                None => sim.next_event(),
            };
            let Some((now, event)) = next else { break };
            // Keep the pipeline primed: handling a dispatch is the moment
            // its successor enters the queue, so pending stays O(P).
            if matches!(event, ShardEvent::Dispatch(..)) {
                if let Some(spec) = arrivals.next() {
                    core.offer(0, spec, &mut |t, k, e| {
                        if let Some((pt, pk, pe)) = held.replace((t, k, e)) {
                            sim.schedule_at_keyed(pt, pk, pe);
                        }
                    });
                }
            }
            core.handle(now, event, &mut |t, k, e| {
                if let Some((pt, pk, pe)) = held.replace((t, k, e)) {
                    sim.schedule_at_keyed(pt, pk, pe);
                }
            });
        }
        core.finish_single(sim.peak_pending())
    }

    /// The pre-rearchitecture implementation, kept as the semantic
    /// reference: the whole trace is loaded into the event queue up front,
    /// every ELSA decision snapshots all partitions and runs the pure
    /// [`Elsa::place`], and every per-query record is materialized.
    ///
    /// Reports are bit-for-bit identical to [`run`](Self::run) with
    /// [`ReportDetail::Full`] — this is what the determinism tests and
    /// property suite cross-check the fast path against. It exists for
    /// validation and as the baseline in `bench_server`; sweeps should use
    /// `run`.
    #[must_use]
    pub fn run_reference(&self, trace: &[QuerySpec]) -> RunReport {
        let mut sim: Simulation<Event> = Simulation::new();
        let mut workers: Vec<PartitionWorker> = self
            .partitions
            .iter()
            .map(|&size| PartitionWorker::new(size))
            .collect();
        let mut central: std::collections::VecDeque<Query> = std::collections::VecDeque::new();
        let elsa = match &self.config.scheduler {
            SchedulerKind::Fifs => None,
            SchedulerKind::Elsa(cfg) => Some(Elsa::new(*cfg)),
        };
        let mut noise_rng = StdRng::seed_from_u64(self.config.noise_seed);
        let mut gantt = self
            .config
            .record_gantt
            .then(|| Gantt::new(self.partitions.clone()));

        // The frontend is a serial FIFO server: query i's dispatch time is
        // max(arrival, previous dispatch) + overhead.
        let mut frontend_free = SimTime::ZERO;
        for (i, spec) in trace.iter().enumerate() {
            let arrival = SimTime::from_nanos(spec.arrival_ns);
            let begin = arrival.max(frontend_free);
            let dispatched = begin + self.config.frontend_overhead;
            frontend_free = dispatched;
            sim.schedule_at(
                dispatched,
                Event::Dispatch(Query {
                    id: QueryId(i as u64),
                    batch: spec.batch,
                    arrival,
                    dispatched,
                }),
            );
        }

        let mut records: Vec<QueryRecord> = Vec::with_capacity(trace.len());
        let mut latency = LatencyRecorder::new();
        let mut histogram = LatencyHistogram::new();
        let mut queue_hist = LatencyHistogram::new();
        let mut service_hist = LatencyHistogram::new();
        let mut sla_violations = 0u64;

        while let Some((now, event)) = sim.next_event() {
            match event {
                Event::Dispatch(query) => match &elsa {
                    Some(elsa) => {
                        let snapshots: Vec<_> = workers.iter().map(|w| w.snapshot(now)).collect();
                        let p = elsa.place(query.batch, &self.table, &snapshots).partition();
                        if workers[p].is_idle() {
                            self.begin_reference(
                                &mut workers[p],
                                p,
                                query,
                                now,
                                &mut sim,
                                &mut noise_rng,
                            );
                        } else {
                            let est = SimDuration::from_nanos(
                                self.table.latency_ns(workers[p].size(), query.batch),
                            );
                            workers[p].enqueue(query, est);
                        }
                    }
                    None => {
                        // FIFS: the partition idle the longest takes the
                        // query; otherwise it waits in the central queue.
                        let idle = (0..workers.len())
                            .filter(|&i| workers[i].is_idle())
                            .min_by_key(|&i| (workers[i].idle_since(), i));
                        match idle {
                            Some(p) => {
                                self.begin_reference(
                                    &mut workers[p],
                                    p,
                                    query,
                                    now,
                                    &mut sim,
                                    &mut noise_rng,
                                );
                            }
                            None => central.push_back(query),
                        }
                    }
                },
                Event::Complete { partition } => {
                    let (query, started) = workers[partition].finish(now);
                    let record = QueryRecord {
                        id: query.id,
                        batch: query.batch,
                        arrival: query.arrival,
                        dispatched: query.dispatched,
                        started,
                        completed: now,
                        partition,
                    };
                    latency.record(record.latency().as_nanos());
                    histogram.record(record.latency().as_nanos());
                    queue_hist.record((started - query.dispatched).as_nanos());
                    service_hist.record((now - started).as_nanos());
                    if let Some(sla) = self.config.sla_ns {
                        sla_violations += u64::from(record.latency().as_nanos() > sla);
                    }
                    if let Some(g) = &mut gantt {
                        g.push(Span {
                            partition,
                            query: query.id,
                            batch: query.batch,
                            start: started,
                            end: now,
                        });
                    }
                    records.push(record);

                    let next = match &elsa {
                        Some(_) => workers[partition].pop_next().map(|(q, _)| q),
                        None => central.pop_front(),
                    };
                    if let Some(q) = next {
                        self.begin_reference(
                            &mut workers[partition],
                            partition,
                            q,
                            now,
                            &mut sim,
                            &mut noise_rng,
                        );
                    }
                }
            }
        }

        let makespan = sim.now().saturating_since(SimTime::ZERO);
        let makespan_s = makespan.as_secs_f64();
        let achieved_qps = if makespan_s > 0.0 {
            records.len() as f64 / makespan_s
        } else {
            0.0
        };
        let partition_utilization = workers
            .iter()
            .map(|w| {
                if makespan.as_nanos() == 0 {
                    0.0
                } else {
                    (w.busy_ns() as f64 / makespan.as_nanos() as f64).min(1.0)
                }
            })
            .collect();

        RunReport {
            detail: ReportDetail::Full,
            records,
            latency,
            histogram,
            queue_hist,
            service_hist,
            makespan,
            achieved_qps,
            partition_utilization,
            gantt,
            peak_pending_events: sim.peak_pending(),
            sla_ns: self.config.sla_ns,
            sla_violations,
        }
    }

    /// Turns a profiled latency of `base_ns` nanoseconds into the actual
    /// service time, applying the configured multiplicative normal noise.
    /// Shared by the fast path and `run_reference` so their noise streams
    /// stay aligned draw-for-draw.
    fn service_duration(&self, base_ns: u64, noise_rng: &mut StdRng) -> SimDuration {
        noisy_service_duration(self.config.service_noise, base_ns, noise_rng)
    }

    /// Reference-path begin: starts `query` on worker `p` at `now` and
    /// schedules its completion with a plain (FIFO-tie-break) push.
    fn begin_reference(
        &self,
        worker: &mut PartitionWorker,
        p: usize,
        query: Query,
        now: SimTime,
        sim: &mut Simulation<Event>,
        noise_rng: &mut StdRng,
    ) {
        let base = self.table.latency_ns(worker.size(), query.batch);
        let duration = self.service_duration(base, noise_rng);
        let end = worker.begin(query, now, duration);
        sim.schedule_at(end, Event::Complete { partition: p });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use inference_workload::{BatchDistribution, TraceGenerator};
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn trace(rate: f64, seed: u64, secs: f64) -> Vec<QuerySpec> {
        TraceGenerator::new(rate, BatchDistribution::paper_default(), seed).generate_for(secs)
    }

    fn fifs_server(kind: ModelKind, partitions: Vec<ProfileSize>) -> InferenceServer {
        InferenceServer::new(
            partitions,
            table(kind),
            ServerConfig::new(SchedulerKind::Fifs),
        )
    }

    fn elsa_server(kind: ModelKind, partitions: Vec<ProfileSize>) -> InferenceServer {
        let t = table(kind);
        let sla = t.sla_target_ns(1.5);
        InferenceServer::new(
            partitions,
            t,
            ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))),
        )
    }

    fn assert_reports_identical(a: &RunReport, b: &RunReport) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.queue_hist, b.queue_hist);
        assert_eq!(a.service_hist, b.service_hist);
        assert_eq!(a.breakdown(), b.breakdown());
        assert_eq!(a.partition_utilization, b.partition_utilization);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.achieved_qps, b.achieved_qps);
        assert_eq!(a.sla_ns, b.sla_ns);
        assert_eq!(a.sla_violations, b.sla_violations);
    }

    #[test]
    fn every_query_completes_exactly_once() {
        let server = fifs_server(
            ModelKind::MobileNet,
            vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G3],
        );
        let tr = trace(400.0, 3, 1.0);
        let report = server.run(&tr);
        assert_eq!(report.records.len(), tr.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tr.len(), "no duplicate completions");
    }

    #[test]
    fn lifecycle_timestamps_are_ordered() {
        let server = elsa_server(
            ModelKind::ResNet50,
            vec![ProfileSize::G1, ProfileSize::G3, ProfileSize::G7],
        );
        let tr = trace(150.0, 5, 1.0);
        let report = server.run(&tr);
        for r in &report.records {
            assert!(r.arrival <= r.dispatched, "{r:?}");
            assert!(r.dispatched <= r.started, "{r:?}");
            assert!(r.started < r.completed, "{r:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let server = elsa_server(ModelKind::ResNet50, vec![ProfileSize::G2, ProfileSize::G7]);
        let tr = trace(200.0, 7, 1.0);
        let a = server.run(&tr);
        let b = server.run(&tr);
        assert_eq!(a.records, b.records);
        assert_eq!(a.partition_utilization, b.partition_utilization);
        // The streamed fast path must also reproduce the pre-loaded
        // reference implementation bit-for-bit.
        let reference = server.run_reference(&tr);
        assert_reports_identical(&a, &reference);
    }

    #[test]
    fn fast_path_matches_reference_for_fifs() {
        let server = fifs_server(
            ModelKind::MobileNet,
            vec![
                ProfileSize::G1,
                ProfileSize::G1,
                ProfileSize::G2,
                ProfileSize::G3,
            ],
        );
        for (rate, seed) in [(100.0, 1u64), (800.0, 2), (3_000.0, 3)] {
            let tr = trace(rate, seed, 0.5);
            assert_reports_identical(&server.run(&tr), &server.run_reference(&tr));
        }
    }

    #[test]
    fn fast_path_matches_reference_for_elsa_under_overload() {
        // Overload exercises Step B fallbacks and deep local queues.
        let server = elsa_server(
            ModelKind::ResNet50,
            vec![
                ProfileSize::G1,
                ProfileSize::G2,
                ProfileSize::G2,
                ProfileSize::G7,
            ],
        );
        for (rate, seed) in [(50.0, 11u64), (500.0, 12), (4_000.0, 13)] {
            let tr = trace(rate, seed, 0.3);
            assert_reports_identical(&server.run(&tr), &server.run_reference(&tr));
        }
    }

    #[test]
    fn fast_path_matches_reference_with_noise() {
        let t = table(ModelKind::ShuffleNet);
        let server = InferenceServer::new(
            vec![ProfileSize::G2, ProfileSize::G3],
            t,
            ServerConfig::new(SchedulerKind::Fifs).with_service_noise(0.15, 77),
        );
        let tr = trace(300.0, 21, 0.5);
        assert_reports_identical(&server.run(&tr), &server.run_reference(&tr));
    }

    #[test]
    fn streaming_keeps_event_queue_small() {
        let server = fifs_server(ModelKind::MobileNet, vec![ProfileSize::G2; 4]);
        let tr = trace(2_000.0, 5, 0.5);
        assert!(tr.len() > 100, "need a non-trivial trace");
        let fast = server.run(&tr);
        let reference = server.run_reference(&tr);
        assert!(
            fast.peak_pending_events <= server.partitions().len() + 2,
            "streamed queue stays O(partitions), got {}",
            fast.peak_pending_events
        );
        assert!(
            reference.peak_pending_events >= tr.len(),
            "reference pre-loads the whole trace"
        );
    }

    #[test]
    fn summary_matches_full_statistics() {
        let server = elsa_server(
            ModelKind::MobileNet,
            vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G7],
        );
        let tr = trace(600.0, 17, 0.5);
        let full = server.run_with_detail(&tr, ReportDetail::Full);
        let summary = server.run_with_detail(&tr, ReportDetail::Summary);
        assert!(summary.records.is_empty());
        assert!(summary.latency.is_empty());
        assert_eq!(summary.completed(), tr.len() as u64);
        assert_eq!(summary.completed(), full.completed());
        assert_eq!(summary.makespan, full.makespan);
        assert_eq!(summary.achieved_qps, full.achieved_qps);
        assert_eq!(summary.partition_utilization, full.partition_utilization);
        // Histogram percentiles are bucket-accurate (≤ 1.6 % error).
        let exact = full.p95_ms();
        let approx = summary.p95_ms();
        assert!(
            (approx / exact - 1.0).abs() < 0.016,
            "p95 {approx} vs exact {exact}"
        );
        let sla = server.table().sla_target_ns(1.5);
        assert!(
            (summary.sla_violation_rate(sla) - full.sla_violation_rate(sla)).abs() < 0.02,
            "violation rates within bucket accuracy"
        );
    }

    #[test]
    fn summary_counts_sla_violations_exactly() {
        // The ROADMAP "exact summary violations" item: with the SLA
        // threaded into the run, a Summary run's violation count equals
        // the reference count computed from exact per-query latencies —
        // not a histogram-bucket approximation.
        let t = table(ModelKind::ResNet50);
        let sla = t.sla_target_ns(1.5);
        let server = InferenceServer::new(
            vec![ProfileSize::G1, ProfileSize::G2],
            t,
            ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))).with_sla_target(sla),
        );
        // Load the two small partitions enough to violate.
        let tr = trace(600.0, 41, 0.5);
        let summary = server.run_with_detail(&tr, ReportDetail::Summary);
        let reference = server.run_reference(&tr);
        let exact = reference
            .records
            .iter()
            .filter(|r| r.latency().as_nanos() > sla)
            .count() as u64;
        assert!(exact > 0, "workload must produce violations");
        assert_eq!(reference.sla_violations, exact);
        assert_eq!(summary.sla_violations, exact, "summary count is exact");
        assert_eq!(summary.sla_ns, Some(sla));
        assert_eq!(
            summary.sla_violation_rate(sla),
            exact as f64 / tr.len() as f64
        );
        // Querying a *different* target still answers (bucket-accurate).
        let other = summary.sla_violation_rate(sla * 2);
        assert!((0.0..=1.0).contains(&other));
    }

    #[test]
    fn run_stream_equals_run_on_materialized_trace() {
        let server = elsa_server(ModelKind::BertBase, vec![ProfileSize::G3, ProfileSize::G7]);
        let gen = TraceGenerator::new(150.0, BatchDistribution::paper_default(), 23);
        let tr = gen.generate_for(0.5);
        let from_slice = server.run(&tr);
        let from_stream = server.run_stream(gen.stream_for(0.5), ReportDetail::Full);
        assert_reports_identical(&from_slice, &from_stream);
    }

    #[test]
    fn fifs_prefers_longest_idle_partition() {
        // Two idle partitions: the one that has been idle longer (lower
        // idle_since, i.e. never used → index order) gets the query.
        let server = fifs_server(ModelKind::MobileNet, vec![ProfileSize::G1, ProfileSize::G1]);
        let tr = vec![
            QuerySpec {
                arrival_ns: 0,
                batch: 1,
            },
            QuerySpec {
                arrival_ns: 1_000,
                batch: 1,
            },
        ];
        let report = server.run(&tr);
        let partitions: Vec<usize> = report.records.iter().map(|r| r.partition).collect();
        assert!(partitions.contains(&0) && partitions.contains(&1));
    }

    #[test]
    fn elsa_routes_small_batches_to_small_partitions_under_light_load() {
        let server = elsa_server(ModelKind::MobileNet, vec![ProfileSize::G1, ProfileSize::G7]);
        // A single tiny query: must land on the small partition.
        let tr = vec![QuerySpec {
            arrival_ns: 0,
            batch: 1,
        }];
        let report = server.run(&tr);
        assert_eq!(report.records[0].partition, 0);
    }

    #[test]
    fn service_time_matches_profiled_latency_without_noise() {
        let server = fifs_server(ModelKind::BertBase, vec![ProfileSize::G7]);
        let tr = vec![QuerySpec {
            arrival_ns: 0,
            batch: 8,
        }];
        let report = server.run(&tr);
        let expected = server.table().latency_ns(ProfileSize::G7, 8);
        assert_eq!(report.records[0].service_time().as_nanos(), expected);
    }

    #[test]
    fn frontend_serializes_dispatch() {
        // Two simultaneous arrivals: the second is dispatched one frontend
        // overhead after the first.
        let server = fifs_server(ModelKind::MobileNet, vec![ProfileSize::G1, ProfileSize::G1]);
        let tr = vec![
            QuerySpec {
                arrival_ns: 0,
                batch: 1,
            },
            QuerySpec {
                arrival_ns: 0,
                batch: 1,
            },
        ];
        let report = server.run(&tr);
        let overhead = server.config().frontend_overhead.as_nanos();
        let mut dispatched: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.dispatched.as_nanos())
            .collect();
        dispatched.sort_unstable();
        assert_eq!(dispatched[0], overhead);
        assert_eq!(dispatched[1], 2 * overhead);
    }

    #[test]
    fn utilization_in_unit_range_and_nonzero_under_load() {
        let server = fifs_server(ModelKind::ResNet50, vec![ProfileSize::G3, ProfileSize::G3]);
        let report = server.run(&trace(100.0, 9, 1.0));
        assert!(report.mean_utilization() > 0.0);
        for &u in &report.partition_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn overload_grows_latency() {
        let server = fifs_server(ModelKind::BertBase, vec![ProfileSize::G1]);
        let light = server.run(&trace(5.0, 11, 1.0));
        let heavy = server.run(&trace(500.0, 11, 1.0));
        assert!(heavy.p95_ms() > 5.0 * light.p95_ms());
    }

    #[test]
    fn gantt_recording_captures_all_queries() {
        let t = table(ModelKind::MobileNet);
        let server = InferenceServer::new(
            vec![ProfileSize::G1, ProfileSize::G2],
            t,
            ServerConfig::new(SchedulerKind::Fifs).with_gantt(),
        );
        let tr = trace(200.0, 13, 0.2);
        let report = server.run(&tr);
        let g = report.gantt.expect("gantt requested");
        assert_eq!(g.len(), tr.len());
    }

    #[test]
    fn service_noise_perturbs_but_preserves_count() {
        let t = table(ModelKind::ResNet50);
        let noisy = InferenceServer::new(
            vec![ProfileSize::G3],
            t.clone(),
            ServerConfig::new(SchedulerKind::Fifs).with_service_noise(0.2, 99),
        );
        let clean = InferenceServer::new(
            vec![ProfileSize::G3],
            t,
            ServerConfig::new(SchedulerKind::Fifs),
        );
        let tr = trace(50.0, 15, 0.5);
        let a = noisy.run(&tr);
        let b = clean.run(&tr);
        assert_eq!(a.records.len(), b.records.len());
        assert_ne!(
            a.records[0].service_time(),
            b.records[0].service_time(),
            "noise should change service times"
        );
    }

    #[test]
    fn service_noise_scale_tracks_configured_stddev() {
        // The doc promises `noise` is the *relative standard deviation* of
        // the service-time scale factor; check the sampled factors.
        let t = table(ModelKind::ResNet50);
        let noise = 0.2;
        let server = InferenceServer::new(
            vec![ProfileSize::G3],
            t.clone(),
            ServerConfig::new(SchedulerKind::Fifs).with_service_noise(noise, 4242),
        );
        let tr = trace(40.0, 31, 5.0);
        let report = server.run(&tr);
        let factors: Vec<f64> = report
            .records
            .iter()
            .map(|r| {
                let base = t.latency_ns(ProfileSize::G3, r.batch) as f64;
                r.service_time().as_nanos() as f64 / base
            })
            .collect();
        let n = factors.len() as f64;
        let mean = factors.iter().sum::<f64>() / n;
        let var = factors.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 1.0).abs() < 0.05, "mean factor {mean}");
        assert!(
            (var.sqrt() / noise - 1.0).abs() < 0.2,
            "sampled stddev {} vs configured {noise}",
            var.sqrt()
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partition_list_panics() {
        let _ = InferenceServer::new(
            vec![],
            table(ModelKind::MobileNet),
            ServerConfig::new(SchedulerKind::Fifs),
        );
    }
}
