//! The discrete-event multi-GPU inference-server simulator.
//!
//! Reproduces the runtime structure of the paper's testbed (a modified
//! DeepRecInfra frontend feeding MIG partitions): queries arrive at a
//! serial frontend, a scheduling policy (FIFS or ELSA) assigns them to
//! partitions, each partition executes its queue in FIFO order with the
//! profiled latency as service time, and every completion is recorded.

use des_engine::{SimDuration, SimTime, Simulation};
use inference_workload::QuerySpec;
use mig_gpu::ProfileSize;
use paris_core::{Elsa, ElsaConfig, PartitionPlan, ProfileTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server_metrics::LatencyRecorder;

use crate::gantt::{Gantt, Span};
use crate::query::{Query, QueryId, QueryRecord};
use crate::worker::PartitionWorker;

/// Which scheduling policy drives the server.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// First-idle first-serve: the baseline of Triton-style servers
    /// (§III-C). Queries wait in one central FIFO; any partition that goes
    /// idle takes the head.
    Fifs,
    /// The paper's heterogeneity-aware scheduler (Algorithm 2).
    Elsa(ElsaConfig),
}

/// Server-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// The scheduling policy.
    pub scheduler: SchedulerKind,
    /// Serial frontend service time per query (query decode + dispatch).
    /// This is what bottlenecked the paper's 48×GPU(1) MobileNet config.
    pub frontend_overhead: SimDuration,
    /// Record an execution Gantt trace (costs memory; off for sweeps).
    pub record_gantt: bool,
    /// Relative standard deviation of multiplicative service-time noise
    /// (0 = perfectly deterministic execution, the paper's observation).
    pub service_noise: f64,
    /// Seed for the service-noise RNG.
    pub noise_seed: u64,
}

impl ServerConfig {
    /// A deterministic server with the given policy and a 20 µs frontend.
    #[must_use]
    pub fn new(scheduler: SchedulerKind) -> Self {
        ServerConfig {
            scheduler,
            frontend_overhead: SimDuration::from_micros(20),
            record_gantt: false,
            service_noise: 0.0,
            noise_seed: 0,
        }
    }

    /// Overrides the frontend service time.
    #[must_use]
    pub fn with_frontend_overhead(mut self, overhead: SimDuration) -> Self {
        self.frontend_overhead = overhead;
        self
    }

    /// Enables Gantt-trace recording.
    #[must_use]
    pub fn with_gantt(mut self) -> Self {
        self.record_gantt = true;
        self
    }

    /// Adds multiplicative service-time noise (robustness studies).
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    #[must_use]
    pub fn with_service_noise(mut self, noise: f64, seed: u64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        self.service_noise = noise;
        self.noise_seed = seed;
        self
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-query lifecycle records, completion order.
    pub records: Vec<QueryRecord>,
    /// End-to-end latency samples.
    pub latency: LatencyRecorder,
    /// Time from first arrival to last completion.
    pub makespan: SimDuration,
    /// Completed queries divided by the makespan.
    pub achieved_qps: f64,
    /// Busy fraction of every partition over the makespan.
    pub partition_utilization: Vec<f64>,
    /// Execution trace, when requested via [`ServerConfig::with_gantt`].
    pub gantt: Option<Gantt>,
}

impl RunReport {
    /// The paper's headline metric: p95 tail latency in milliseconds.
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.latency.p95_ms()
    }

    /// Mean partition utilization.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.partition_utilization.is_empty() {
            return 0.0;
        }
        self.partition_utilization.iter().sum::<f64>() / self.partition_utilization.len() as f64
    }

    /// Fraction of queries whose latency exceeded `sla_ns`.
    #[must_use]
    pub fn sla_violation_rate(&self, sla_ns: u64) -> f64 {
        self.latency.violation_rate(sla_ns)
    }
}

/// Events driving the server simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The frontend finished preparing a query; the scheduler places it.
    Dispatch(Query),
    /// A partition finished its current query.
    Complete { partition: usize },
}

/// A simulated multi-GPU inference server: a set of MIG partitions, a
/// profiled latency table and a scheduling policy.
///
/// `run` is `&self` and rebuilds all mutable state, so one server value can
/// evaluate many traces (and many threads can share it).
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::{BatchDistribution, TraceGenerator};
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::ProfileTable;
/// use inference_server::{InferenceServer, SchedulerKind, ServerConfig};
///
/// let model = ModelKind::MobileNet.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
///
/// let server = InferenceServer::new(
///     vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G3],
///     table,
///     ServerConfig::new(SchedulerKind::Fifs),
/// );
/// let trace = TraceGenerator::new(300.0, BatchDistribution::paper_default(), 1)
///     .generate_for(0.5);
/// let report = server.run(&trace);
/// assert_eq!(report.records.len(), trace.len());
/// ```
#[derive(Debug, Clone)]
pub struct InferenceServer {
    partitions: Vec<ProfileSize>,
    table: ProfileTable,
    config: ServerConfig,
}

impl InferenceServer {
    /// Creates a server over an explicit partition list.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    #[must_use]
    pub fn new(partitions: Vec<ProfileSize>, table: ProfileTable, config: ServerConfig) -> Self {
        assert!(!partitions.is_empty(), "server needs at least one partition");
        InferenceServer {
            partitions,
            table,
            config,
        }
    }

    /// Creates a server hosting the instances of a [`PartitionPlan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan contains no instances.
    #[must_use]
    pub fn from_plan(plan: &PartitionPlan, table: ProfileTable, config: ServerConfig) -> Self {
        Self::new(plan.partitions(), table, config)
    }

    /// The partition profiles, in scheduler iteration order.
    #[must_use]
    pub fn partitions(&self) -> &[ProfileSize] {
        &self.partitions
    }

    /// The profiled latency table the server schedules with.
    #[must_use]
    pub fn table(&self) -> &ProfileTable {
        &self.table
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Simulates the server over a query trace until every query completes.
    #[must_use]
    pub fn run(&self, trace: &[QuerySpec]) -> RunReport {
        let mut sim: Simulation<Event> = Simulation::new();
        let mut workers: Vec<PartitionWorker> = self
            .partitions
            .iter()
            .map(|&size| PartitionWorker::new(size))
            .collect();
        let mut central: std::collections::VecDeque<Query> = std::collections::VecDeque::new();
        let elsa = match &self.config.scheduler {
            SchedulerKind::Fifs => None,
            SchedulerKind::Elsa(cfg) => Some(Elsa::new(*cfg)),
        };
        let mut noise_rng = StdRng::seed_from_u64(self.config.noise_seed);
        let mut gantt = self
            .config
            .record_gantt
            .then(|| Gantt::new(self.partitions.clone()));

        // The frontend is a serial FIFO server: query i's dispatch time is
        // max(arrival, previous dispatch) + overhead.
        let mut dispatch_times: Vec<SimTime> = Vec::with_capacity(trace.len());
        let mut frontend_free = SimTime::ZERO;
        for (i, spec) in trace.iter().enumerate() {
            let arrival = SimTime::from_nanos(spec.arrival_ns);
            let begin = arrival.max(frontend_free);
            let dispatched = begin + self.config.frontend_overhead;
            frontend_free = dispatched;
            dispatch_times.push(dispatched);
            sim.schedule_at(
                dispatched,
                Event::Dispatch(Query {
                    id: QueryId(i as u64),
                    batch: spec.batch,
                    arrival,
                }),
            );
        }

        let mut records: Vec<QueryRecord> = Vec::with_capacity(trace.len());
        let mut latency = LatencyRecorder::new();

        while let Some((now, event)) = sim.next_event() {
            match event {
                Event::Dispatch(query) => match &elsa {
                    Some(elsa) => {
                        let snapshots: Vec<_> =
                            workers.iter().map(|w| w.snapshot(now)).collect();
                        let p = elsa.place(query.batch, &self.table, &snapshots).partition();
                        if workers[p].is_idle() {
                            self.begin(&mut workers[p], p, query, now, &mut sim, &mut noise_rng);
                        } else {
                            let est = SimDuration::from_nanos(
                                self.table.latency_ns(workers[p].size(), query.batch),
                            );
                            workers[p].enqueue(query, est);
                        }
                    }
                    None => {
                        // FIFS: the partition idle the longest takes the
                        // query; otherwise it waits in the central queue.
                        let idle = (0..workers.len())
                            .filter(|&i| workers[i].is_idle())
                            .min_by_key(|&i| (workers[i].idle_since(), i));
                        match idle {
                            Some(p) => {
                                self.begin(
                                    &mut workers[p],
                                    p,
                                    query,
                                    now,
                                    &mut sim,
                                    &mut noise_rng,
                                );
                            }
                            None => central.push_back(query),
                        }
                    }
                },
                Event::Complete { partition } => {
                    let (query, started) = workers[partition].finish(now);
                    let record = QueryRecord {
                        id: query.id,
                        batch: query.batch,
                        arrival: query.arrival,
                        dispatched: dispatch_times[query.id.0 as usize],
                        started,
                        completed: now,
                        partition,
                    };
                    latency.record(record.latency().as_nanos());
                    if let Some(g) = &mut gantt {
                        g.push(Span {
                            partition,
                            query: query.id,
                            batch: query.batch,
                            start: started,
                            end: now,
                        });
                    }
                    records.push(record);

                    let next = match &elsa {
                        Some(_) => workers[partition].pop_next().map(|(q, _)| q),
                        None => central.pop_front(),
                    };
                    if let Some(q) = next {
                        self.begin(
                            &mut workers[partition],
                            partition,
                            q,
                            now,
                            &mut sim,
                            &mut noise_rng,
                        );
                    }
                }
            }
        }

        let makespan = sim.now().saturating_since(SimTime::ZERO);
        let makespan_s = makespan.as_secs_f64();
        let achieved_qps = if makespan_s > 0.0 {
            records.len() as f64 / makespan_s
        } else {
            0.0
        };
        let partition_utilization = workers
            .iter()
            .map(|w| {
                if makespan.as_nanos() == 0 {
                    0.0
                } else {
                    (w.busy_ns() as f64 / makespan.as_nanos() as f64).min(1.0)
                }
            })
            .collect();

        RunReport {
            records,
            latency,
            makespan,
            achieved_qps,
            partition_utilization,
            gantt,
        }
    }

    /// Starts `query` on worker `p` at `now` and schedules its completion.
    fn begin(
        &self,
        worker: &mut PartitionWorker,
        p: usize,
        query: Query,
        now: SimTime,
        sim: &mut Simulation<Event>,
        noise_rng: &mut StdRng,
    ) {
        let base = self.table.latency_ns(worker.size(), query.batch);
        let duration_ns = if self.config.service_noise > 0.0 {
            let z: f64 = noise_rng.sample(rand::distributions::Standard);
            let factor = (1.0 + self.config.service_noise * (2.0 * z - 1.0)).max(0.1);
            (base as f64 * factor).round() as u64
        } else {
            base
        };
        let end = worker.begin(query, now, SimDuration::from_nanos(duration_ns));
        sim.schedule_at(end, Event::Complete { partition: p });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use inference_workload::{BatchDistribution, TraceGenerator};
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn trace(rate: f64, seed: u64, secs: f64) -> Vec<QuerySpec> {
        TraceGenerator::new(rate, BatchDistribution::paper_default(), seed).generate_for(secs)
    }

    fn fifs_server(kind: ModelKind, partitions: Vec<ProfileSize>) -> InferenceServer {
        InferenceServer::new(
            partitions,
            table(kind),
            ServerConfig::new(SchedulerKind::Fifs),
        )
    }

    fn elsa_server(kind: ModelKind, partitions: Vec<ProfileSize>) -> InferenceServer {
        let t = table(kind);
        let sla = t.sla_target_ns(1.5);
        InferenceServer::new(
            partitions,
            t,
            ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))),
        )
    }

    #[test]
    fn every_query_completes_exactly_once() {
        let server = fifs_server(
            ModelKind::MobileNet,
            vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G3],
        );
        let tr = trace(400.0, 3, 1.0);
        let report = server.run(&tr);
        assert_eq!(report.records.len(), tr.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tr.len(), "no duplicate completions");
    }

    #[test]
    fn lifecycle_timestamps_are_ordered() {
        let server = elsa_server(
            ModelKind::ResNet50,
            vec![ProfileSize::G1, ProfileSize::G3, ProfileSize::G7],
        );
        let tr = trace(150.0, 5, 1.0);
        let report = server.run(&tr);
        for r in &report.records {
            assert!(r.arrival <= r.dispatched, "{r:?}");
            assert!(r.dispatched <= r.started, "{r:?}");
            assert!(r.started < r.completed, "{r:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let server = elsa_server(
            ModelKind::ResNet50,
            vec![ProfileSize::G2, ProfileSize::G7],
        );
        let tr = trace(200.0, 7, 1.0);
        let a = server.run(&tr);
        let b = server.run(&tr);
        assert_eq!(a.records, b.records);
        assert_eq!(a.partition_utilization, b.partition_utilization);
    }

    #[test]
    fn fifs_prefers_longest_idle_partition() {
        // Two idle partitions: the one that has been idle longer (lower
        // idle_since, i.e. never used → index order) gets the query.
        let server = fifs_server(ModelKind::MobileNet, vec![ProfileSize::G1, ProfileSize::G1]);
        let tr = vec![
            QuerySpec { arrival_ns: 0, batch: 1 },
            QuerySpec { arrival_ns: 1_000, batch: 1 },
        ];
        let report = server.run(&tr);
        let partitions: Vec<usize> = report.records.iter().map(|r| r.partition).collect();
        assert!(partitions.contains(&0) && partitions.contains(&1));
    }

    #[test]
    fn elsa_routes_small_batches_to_small_partitions_under_light_load() {
        let server = elsa_server(
            ModelKind::MobileNet,
            vec![ProfileSize::G1, ProfileSize::G7],
        );
        // A single tiny query: must land on the small partition.
        let tr = vec![QuerySpec { arrival_ns: 0, batch: 1 }];
        let report = server.run(&tr);
        assert_eq!(report.records[0].partition, 0);
    }

    #[test]
    fn service_time_matches_profiled_latency_without_noise() {
        let server = fifs_server(ModelKind::BertBase, vec![ProfileSize::G7]);
        let tr = vec![QuerySpec { arrival_ns: 0, batch: 8 }];
        let report = server.run(&tr);
        let expected = server.table().latency_ns(ProfileSize::G7, 8);
        assert_eq!(report.records[0].service_time().as_nanos(), expected);
    }

    #[test]
    fn frontend_serializes_dispatch() {
        // Two simultaneous arrivals: the second is dispatched one frontend
        // overhead after the first.
        let server = fifs_server(ModelKind::MobileNet, vec![ProfileSize::G1, ProfileSize::G1]);
        let tr = vec![
            QuerySpec { arrival_ns: 0, batch: 1 },
            QuerySpec { arrival_ns: 0, batch: 1 },
        ];
        let report = server.run(&tr);
        let overhead = server.config().frontend_overhead.as_nanos();
        let mut dispatched: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.dispatched.as_nanos())
            .collect();
        dispatched.sort_unstable();
        assert_eq!(dispatched[0], overhead);
        assert_eq!(dispatched[1], 2 * overhead);
    }

    #[test]
    fn utilization_in_unit_range_and_nonzero_under_load() {
        let server = fifs_server(ModelKind::ResNet50, vec![ProfileSize::G3, ProfileSize::G3]);
        let report = server.run(&trace(100.0, 9, 1.0));
        assert!(report.mean_utilization() > 0.0);
        for &u in &report.partition_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn overload_grows_latency() {
        let server = fifs_server(ModelKind::BertBase, vec![ProfileSize::G1]);
        let light = server.run(&trace(5.0, 11, 1.0));
        let heavy = server.run(&trace(500.0, 11, 1.0));
        assert!(heavy.p95_ms() > 5.0 * light.p95_ms());
    }

    #[test]
    fn gantt_recording_captures_all_queries() {
        let t = table(ModelKind::MobileNet);
        let server = InferenceServer::new(
            vec![ProfileSize::G1, ProfileSize::G2],
            t,
            ServerConfig::new(SchedulerKind::Fifs).with_gantt(),
        );
        let tr = trace(200.0, 13, 0.2);
        let report = server.run(&tr);
        let g = report.gantt.expect("gantt requested");
        assert_eq!(g.spans().len(), tr.len());
    }

    #[test]
    fn service_noise_perturbs_but_preserves_count() {
        let t = table(ModelKind::ResNet50);
        let noisy = InferenceServer::new(
            vec![ProfileSize::G3],
            t.clone(),
            ServerConfig::new(SchedulerKind::Fifs).with_service_noise(0.2, 99),
        );
        let clean = InferenceServer::new(
            vec![ProfileSize::G3],
            t,
            ServerConfig::new(SchedulerKind::Fifs),
        );
        let tr = trace(50.0, 15, 0.5);
        let a = noisy.run(&tr);
        let b = clean.run(&tr);
        assert_eq!(a.records.len(), b.records.len());
        assert_ne!(
            a.records[0].service_time(),
            b.records[0].service_time(),
            "noise should change service times"
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partition_list_panics() {
        let _ = InferenceServer::new(
            vec![],
            table(ModelKind::MobileNet),
            ServerConfig::new(SchedulerKind::Fifs),
        );
    }
}
