//! The **one** dispatch engine behind every serving layer.
//!
//! [`DispatchCore`] is the generic dispatch/complete/drain core that used
//! to exist twice — once as the single-model `Engine` inside `server.rs`
//! and once as the multi-model engine inside `multi.rs`. It is
//! parameterized over a *worker → group* mapping: every worker slot
//! belongs to exactly one group, each group owns its scheduler state (an
//! ELSA incremental state or a FIFS idle set + central queue), and
//! arrivals are offered with a group index. The single-model server is the
//! identity instantiation (one group holding every partition); the
//! multi-model [`ShardEngine`](crate::ShardEngine) is one group per model;
//! the cluster hosts many cores inside one shared DES.
//!
//! The core also owns **reconfiguration execution**: it consumes a
//! [`ReconfigSchedule`] — per-group [`PlanDiff`](paris_core::PlanDiff)s cut
//! into sequential steps by a [`ReconfigMode`](paris_core::ReconfigMode) —
//! quiescing each step's removals, draining them in simulated time,
//! charging the step's driver downtime, bringing its additions online, and
//! only then advancing to the next step. All-at-once schedules reproduce
//! the historical single-outage behavior bit-for-bit; rolling schedules
//! bound the capacity offline at any instant to one GPU's worth.
//!
//! # Hot-path invariants
//!
//! The per-query path is allocation-free and O(log P) once warm, exactly
//! as the PR-1 contract demands: streamed arrivals (the driver injects the
//! next arrival while handling a dispatch), keyed same-instant event order
//! (dispatches by query id strictly before completions in scheduling
//! order), incremental ELSA state, borrowed per-slot latency rows, and
//! summary-detail runs that materialize nothing per query. The semantic
//! oracle remains [`InferenceServer::run_reference`]
//! (crate::InferenceServer::run_reference): the equivalence suites in
//! `server.rs`, `multi.rs` and `tests/properties.rs` pin every layer to
//! it, bit for bit.

use std::collections::VecDeque;

use des_engine::{SimDuration, SimTime};
use inference_obs::{FlightRecorder, ObsSink, TraceEvent, TraceSink, ANNOTATION_KEY};
use inference_workload::QuerySpec;
use mig_gpu::ProfileSize;
use paris_core::{
    scale_ns, Elsa, ElsaState, LoadSet, ProfileTable, ReconfigSchedule, ReconfigStep,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server_metrics::{LatencyHistogram, LatencyRecorder};

use crate::gantt::{Gantt, Span};
use crate::multi::{ModelReport, MultiRunReport, ReconfigEvent};
use crate::query::{Query, QueryId, QueryRecord};
use crate::server::{ReportDetail, RunReport, SchedulerKind};
use crate::worker::PartitionWorker;

/// Events driving one dispatch core.
///
/// Public so an external driver can own the event loop: a cluster hosting
/// many shards inside one DES wraps each core's events with its shard
/// index and routes them back to the owning engine. The single-server
/// drivers are [`InferenceServer::run_stream`](crate::InferenceServer::run_stream)
/// and [`MultiModelServer::run_stream`](crate::MultiModelServer::run_stream).
#[derive(Debug, Clone, Copy)]
pub enum ShardEvent {
    /// The frontend finished preparing a query for the group with this
    /// index.
    Dispatch(Query, usize),
    /// A partition finished its current query.
    Complete {
        /// The worker-slot index within the core (indexes the report's
        /// partition vectors).
        worker: usize,
    },
    /// One reconfiguration step's drain + reslice finished: bring its new
    /// instances online and advance the schedule. The epoch stamps which
    /// transition armed the event: a transition aborted mid-flight (a
    /// fault landed on it) leaves its already-scheduled ready event in the
    /// DES, and the stamp is how the core recognizes it as stale — a
    /// *newer* transition's ready can legitimately fire at the very same
    /// instant, so "ignore the next one" counting would misfire.
    ReconfigReady {
        /// The arming transition's epoch ([`DispatchCore`]-local,
        /// monotonic).
        epoch: u64,
    },
}

/// Same-instant ordering: all dispatches (by query id) strictly before all
/// completions (by scheduling order) — the order the pre-loaded seed
/// implementation produced through its FIFO sequence numbers. A
/// reconfiguration step completion goes last.
const COMPLETE_KEY_BASE: u64 = 1 << 63;
const RECONFIG_KEY: u64 = u64::MAX;

/// Turns a profiled latency of `base_ns` nanoseconds into a service time
/// under multiplicative normal noise of relative stddev `noise`. One
/// shared implementation keeps the noise stream aligned draw-for-draw
/// across the dispatch core and `run_reference`.
pub(crate) fn noisy_service_duration(
    noise: f64,
    base_ns: u64,
    noise_rng: &mut StdRng,
) -> SimDuration {
    if noise > 0.0 {
        // Box–Muller: two uniforms → one standard normal draw. The
        // second uniform is always consumed so the stream stays aligned
        // across implementations.
        let u1: f64 = noise_rng.gen();
        let u2: f64 = noise_rng.gen();
        let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let factor = (1.0 + noise * z).max(0.1);
        SimDuration::from_nanos((base_ns as f64 * factor).round() as u64)
    } else {
        SimDuration::from_nanos(base_ns)
    }
}

/// Everything one group (one model's partition set, or the whole server in
/// the single-model identity case) needs from its owner.
#[derive(Debug, Clone)]
pub struct GroupSpec<'a> {
    /// Group name, surfaced in per-group reports.
    pub name: &'a str,
    /// The profiled latency table the group schedules with.
    pub table: &'a ProfileTable,
    /// The group's scheduling policy.
    pub scheduler: SchedulerKind,
    /// SLA target for exact per-group violation counting, if any.
    pub sla_ns: Option<u64>,
}

/// Run-level knobs of a dispatch core (the policy-free subset of
/// `ServerConfig` / `MultiModelConfig`).
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Serial frontend service time per query.
    pub frontend_overhead: SimDuration,
    /// Relative stddev of multiplicative service-time noise (0 = exact).
    pub service_noise: f64,
    /// Seed for the service-noise RNG.
    pub noise_seed: u64,
    /// How much per-query material the run keeps.
    pub detail: ReportDetail,
    /// Record a per-instance execution Gantt trace.
    pub record_gantt: bool,
    /// Whether schedulers *see* per-slot degrade factors
    /// ([`DispatchCore::set_degrade`]): when `true` (the default
    /// everywhere), ELSA's estimates are inflated on slow slots so
    /// placement steers around sick hardware; when `false` the scheduler
    /// plans with clean profiles while execution still runs slow — the
    /// degradation-blind ablation a resilience bench compares against.
    /// Physical service times are scaled either way.
    pub degrade_visible: bool,
}

/// One partition's identity and lifecycle within a run.
#[derive(Debug)]
struct WorkerSlot {
    worker: PartitionWorker,
    group: usize,
    /// Index within the owning group's member list (meaningless while
    /// retiring/retired).
    local: usize,
    /// Quiesced by a reconfiguration step: finishes in-flight work,
    /// accepts nothing.
    retiring: bool,
    /// Killed by a fault: permanently dark, its stale `Complete` event (if
    /// one was in flight) is a tombstone the core ignores.
    dead: bool,
    /// Physical service-time multiplier (≥ 1.0; 1.0 = healthy). Set by
    /// [`DispatchCore::set_degrade`] when the GPU under this slot slows
    /// down; scales every *future* execution begun on the slot (work
    /// already in flight keeps its scheduled completion).
    degrade: f64,
}

/// Per-group scheduler runtime over the group's member partitions.
struct GroupRuntime {
    /// Global worker indices of the active members.
    members: Vec<usize>,
    /// ELSA runtime (decision core + incremental state over *local*
    /// member indices), when the group schedules with ELSA.
    elsa: Option<(Elsa, ElsaState)>,
    /// FIFS idle set, keyed `(idle_since, local index)`.
    fifs_idle: LoadSet,
    /// FIFS central queue.
    central: VecDeque<Query>,
    /// Queries that arrived while the group had no active members
    /// (mid-reconfiguration); dispatched when instances come online.
    stash: VecDeque<Query>,
}

/// An in-flight reconfiguration: the remaining schedule plus the current
/// step's drain/downtime/addition state. Steps execute strictly in order,
/// so all retiring slots at any instant belong to the current step.
struct ReconfigRun {
    triggered_at: SimTime,
    schedule: ReconfigSchedule,
    /// This transition's epoch — stamped into every [`ShardEvent::ReconfigReady`]
    /// it arms, so an abort can leave stale events behind safely.
    epoch: u64,
    /// Current step: busy retiring workers still draining.
    draining: usize,
    /// Current step: the charged driver downtime.
    step_downtime: SimDuration,
    /// Current step: instances to create when its reslice completes.
    pending_added: Vec<(usize, ProfileSize)>,
    /// Current step: slots quiesced by it (not yet permanently destroyed —
    /// an abort revives the survivors among them).
    step_retired: usize,
    /// Whole-transition totals for the final [`ReconfigEvent`].
    destroyed: usize,
    created: usize,
    /// Instances actually destroyed/created by *completed* steps — what an
    /// aborted transition reports instead of the schedule totals.
    destroyed_done: usize,
    created_done: usize,
    charged: SimDuration,
    steps_done: usize,
}

struct GroupAccum {
    completed: u64,
    histogram: LatencyHistogram,
    sla_violations: u64,
}

/// The unified dispatch engine: worker slots, per-group scheduler state,
/// the streamed frontend, measurement accumulators, and the step-wise
/// reconfiguration executor. See the module documentation for the layering
/// and invariants.
pub struct DispatchCore<'a> {
    specs: Vec<GroupSpec<'a>>,
    config: CoreConfig,
    slots: Vec<WorkerSlot>,
    /// Borrowed latency row and max batch per slot (from the owning
    /// group's table) — one slice index per estimate.
    rows: Vec<&'a [u64]>,
    max_batch: Vec<usize>,
    groups: Vec<GroupRuntime>,
    reconfig: Option<ReconfigRun>,
    reconfigs: Vec<ReconfigEvent>,
    noise_rng: StdRng,
    gantt: Option<Gantt>,
    records: Vec<QueryRecord>,
    record_groups: Vec<usize>,
    latency: LatencyRecorder,
    histogram: LatencyHistogram,
    /// Queue-wait decomposition (`started − dispatched`), recorded for
    /// every completion regardless of detail or tracing — O(1) memory, the
    /// source of the report's `queue_ns_p50/p99` summary fields.
    queue_hist: LatencyHistogram,
    /// Service-time decomposition (`completed − started`), same contract.
    service_hist: LatencyHistogram,
    per_group: Vec<GroupAccum>,
    /// Attached observability sink (flight recorder, online telemetry
    /// lane, or both); `None` (the default) is the zero-cost disabled path
    /// — every hook is a single `Option` discriminant test. Recording
    /// never touches RNG streams, event keys, or report state (invariant
    /// 12: zero observer effect).
    trace: Option<Box<ObsSink>>,
    /// Instant of the most recent completion — the makespan endpoint. The
    /// DES clock itself can outlive it (a trailing `ReconfigReady` fires
    /// one reslice delay after the last drain), and charging that idle
    /// tail to the makespan would bias throughput/utilization against
    /// re-planning runs.
    last_completion: SimTime,
    frontend_free: SimTime,
    next_query_id: u64,
    next_complete_key: u64,
    /// Epoch of the next transition to begin (see
    /// [`ShardEvent::ReconfigReady`]).
    next_epoch: u64,
}

impl<'a> DispatchCore<'a> {
    /// Builds a core hosting `layouts[g]` partitions for each group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, `layouts` does not match it one-to-one,
    /// or any group is empty.
    #[must_use]
    pub fn new(
        specs: Vec<GroupSpec<'a>>,
        layouts: &[Vec<ProfileSize>],
        config: CoreConfig,
    ) -> Self {
        assert!(!specs.is_empty(), "core needs at least one group");
        assert_eq!(specs.len(), layouts.len(), "one layout per group");
        assert!(
            layouts.iter().all(|g| !g.is_empty()),
            "every group needs at least one partition"
        );
        let mut slots = Vec::new();
        let mut rows = Vec::new();
        let mut max_batch = Vec::new();
        let mut groups = Vec::new();
        for (g, sizes) in layouts.iter().enumerate() {
            let table = specs[g].table;
            let mut members = Vec::with_capacity(sizes.len());
            for &size in sizes {
                members.push(slots.len());
                slots.push(WorkerSlot {
                    worker: PartitionWorker::new(size),
                    group: g,
                    local: 0,
                    retiring: false,
                    dead: false,
                    degrade: 1.0,
                });
                rows.push(table.latency_row(size));
                max_batch.push(table.max_batch());
            }
            groups.push(GroupRuntime {
                members,
                elsa: None,
                fifs_idle: LoadSet::new(),
                central: VecDeque::new(),
                stash: VecDeque::new(),
            });
        }
        let gantt = config
            .record_gantt
            .then(|| Gantt::new(slots.iter().map(|s| s.worker.size()).collect()));
        let per_group = specs
            .iter()
            .map(|_| GroupAccum {
                completed: 0,
                histogram: LatencyHistogram::new(),
                sla_violations: 0,
            })
            .collect();
        let mut core = DispatchCore {
            noise_rng: StdRng::seed_from_u64(config.noise_seed),
            specs,
            config,
            slots,
            rows,
            max_batch,
            groups,
            reconfig: None,
            reconfigs: Vec::new(),
            gantt,
            records: Vec::new(),
            record_groups: Vec::new(),
            latency: LatencyRecorder::new(),
            histogram: LatencyHistogram::new(),
            queue_hist: LatencyHistogram::new(),
            service_hist: LatencyHistogram::new(),
            per_group,
            trace: None,
            last_completion: SimTime::ZERO,
            frontend_free: SimTime::ZERO,
            next_query_id: 0,
            next_complete_key: COMPLETE_KEY_BASE,
            next_epoch: 0,
        };
        for g in 0..core.groups.len() {
            core.rebuild_group(g);
        }
        core
    }

    /// Rebuilds group `g`'s scheduler state from its current members'
    /// worker occupancy. O(group · log group); called only at construction
    /// and at reconfiguration edges, never on the per-query path.
    ///
    /// `ElsaState` is pure derived state — replaying each member's current
    /// execution (`begin`) and queued estimates (`enqueue`) reconstructs
    /// it exactly, so surviving partitions keep serving across a re-plan
    /// with their queues intact.
    fn rebuild_group(&mut self, g: usize) {
        let members = self.groups[g].members.clone();
        for (local, &w) in members.iter().enumerate() {
            self.slots[w].local = local;
        }
        let sizes: Vec<ProfileSize> = members
            .iter()
            .map(|&w| self.slots[w].worker.size())
            .collect();
        match &self.specs[g].scheduler {
            SchedulerKind::Elsa(cfg) => {
                let mut state = ElsaState::new(&sizes);
                for (local, &w) in members.iter().enumerate() {
                    let worker = &self.slots[w].worker;
                    if let Some(end) = worker.busy_until() {
                        state.begin(local, end.as_nanos());
                        for est in worker.queued_estimates() {
                            state.enqueue(local, est.as_nanos());
                        }
                    }
                    // Re-apply per-slot degrade factors so a rebuilt state
                    // keeps steering around slow hardware (skipped when
                    // blind or healthy, preserving the fast path).
                    if self.config.degrade_visible && self.slots[w].degrade != 1.0 {
                        state.set_factor(local, self.slots[w].degrade);
                    }
                }
                self.groups[g].elsa = Some((Elsa::new(*cfg), state));
            }
            SchedulerKind::Fifs => {
                let mut idle = LoadSet::with_capacity(members.len());
                for (local, &w) in members.iter().enumerate() {
                    let worker = &self.slots[w].worker;
                    if worker.is_idle() {
                        idle.insert((worker.idle_since().as_nanos(), local as u32));
                    }
                }
                self.groups[g].fifs_idle = idle;
            }
        }
    }

    /// The *scheduler-visible* execution estimate for `batch` on slot `w`:
    /// the profiled latency, inflated by the slot's degrade factor when
    /// the configuration makes degradation visible. This is the value the
    /// per-group scheduler state books (so ELSA's queued-work sums stay
    /// consistent with its placement-time estimates).
    #[inline]
    fn estimate_ns(&self, w: usize, batch: usize) -> u64 {
        let base = self.rows[w][batch.clamp(1, self.max_batch[w]) - 1];
        if self.config.degrade_visible {
            scale_ns(base, self.slots[w].degrade)
        } else {
            base
        }
    }

    /// The *physical* execution time for `batch` on slot `w` (before
    /// service noise): the profiled latency scaled by the slot's degrade
    /// factor, always — slow silicon is slow whether or not the scheduler
    /// is allowed to know.
    #[inline]
    fn service_ns(&self, w: usize, batch: usize) -> u64 {
        scale_ns(
            self.rows[w][batch.clamp(1, self.max_batch[w]) - 1],
            self.slots[w].degrade,
        )
    }

    /// Attaches a flight recorder; every lifecycle and annotation event
    /// from here on lands in its buffer. Attach before driving any events
    /// so the trace's conservation invariant (one arrival, one terminal)
    /// holds.
    pub fn set_trace(&mut self, recorder: FlightRecorder) {
        self.set_sink(ObsSink::trace_only(recorder));
    }

    /// Detaches and returns the flight recorder, if one was attached.
    /// Call before [`finish`](DispatchCore::finish) (which drops it).
    pub fn take_trace(&mut self) -> Option<FlightRecorder> {
        self.take_sink().and_then(|s| s.trace)
    }

    /// Attaches an observability sink — a flight recorder, an online
    /// telemetry lane, or both halves at once. Empty sinks are dropped so
    /// the hooks stay on the zero-cost disabled path.
    pub fn set_sink(&mut self, sink: ObsSink) {
        self.trace = (!sink.is_empty()).then(|| Box::new(sink));
    }

    /// Detaches and returns the observability sink, if one was attached.
    pub fn take_sink(&mut self) -> Option<ObsSink> {
        self.trace.take().map(|b| *b)
    }

    /// Offers one arrival for group `group` to the serial frontend,
    /// scheduling its [`ShardEvent::Dispatch`] through `sched`. Arrivals
    /// must be offered in non-decreasing arrival order.
    pub fn offer(
        &mut self,
        group: usize,
        spec: QuerySpec,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let arrival = SimTime::from_nanos(spec.arrival_ns);
        let begin = arrival.max(self.frontend_free);
        let dispatched = begin + self.config.frontend_overhead;
        self.frontend_free = dispatched;
        let id = self.next_query_id;
        self.next_query_id += 1;
        if let Some(tr) = &mut self.trace {
            tr.record(
                arrival,
                id,
                TraceEvent::Arrival {
                    query: id,
                    group,
                    batch: spec.batch,
                    dispatched_ns: dispatched.as_nanos(),
                    sla_ns: self.specs[group].sla_ns.unwrap_or(0),
                },
            );
        }
        sched(
            dispatched,
            id,
            ShardEvent::Dispatch(
                Query {
                    id: QueryId(id),
                    batch: spec.batch,
                    arrival,
                    dispatched,
                },
                group,
            ),
        );
    }

    /// Handles one popped event. The driver must pass every event this
    /// core scheduled (and only those) back in pop order.
    pub fn handle(
        &mut self,
        now: SimTime,
        event: ShardEvent,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        match event {
            ShardEvent::Dispatch(query, group) => self.route(query, group, now, sched),
            ShardEvent::Complete { worker } => self.on_complete(worker, now, sched),
            ShardEvent::ReconfigReady { epoch } => self.on_reconfig_ready(epoch, now, sched),
        }
    }

    /// Queries offered to the frontend but not yet completed — the
    /// outstanding-load signal a join-shortest-queue cluster router
    /// balances on.
    #[must_use]
    pub fn outstanding_queries(&self) -> u64 {
        self.next_query_id - self.histogram.count()
    }

    /// Whether a reconfiguration is currently mid-schedule (draining a
    /// step or waiting out its reslice).
    #[must_use]
    pub fn reconfig_in_flight(&self) -> bool {
        self.reconfig.is_some()
    }

    /// The **live** layout of every group: the sizes of its currently
    /// active (non-retiring) members. During a reconfiguration this
    /// reflects exactly the instances still serving — what a loan
    /// controller's demand estimator should normalize efficiency against,
    /// rather than the initial plan.
    #[must_use]
    pub fn live_groups(&self) -> Vec<Vec<ProfileSize>> {
        self.groups
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|&w| self.slots[w].worker.size())
                    .collect()
            })
            .collect()
    }

    /// Starts `query` on slot `w` at `now` and schedules its completion.
    /// Active slots also update their group's scheduler state; retiring
    /// slots are outside every group and only drain.
    fn begin(
        &mut self,
        w: usize,
        query: Query,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let base = self.service_ns(w, query.batch);
        let duration = noisy_service_duration(self.config.service_noise, base, &mut self.noise_rng);
        if let Some(tr) = &mut self.trace {
            let clean = self.rows[w][query.batch.clamp(1, self.max_batch[w]) - 1];
            tr.record(
                now,
                query.id.0,
                TraceEvent::ServiceStart {
                    query: query.id.0,
                    worker: w,
                    gpcs: self.slots[w].worker.size().gpcs() as u32,
                    clean_ns: clean,
                    base_ns: base,
                    actual_ns: duration.as_nanos(),
                },
            );
        }
        let end = self.slots[w].worker.begin(query, now, duration);
        if !self.slots[w].retiring {
            let (g, local) = (self.slots[w].group, self.slots[w].local);
            if let Some((_, state)) = &mut self.groups[g].elsa {
                state.begin(local, end.as_nanos());
            }
        }
        let key = self.next_complete_key;
        self.next_complete_key += 1;
        sched(end, key, ShardEvent::Complete { worker: w });
    }

    /// Routes `query` to group `g` — the O(log P) decision path, against
    /// per-group scheduler state.
    fn route(
        &mut self,
        query: Query,
        g: usize,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        if self.groups[g].members.is_empty() {
            // Mid-reconfiguration with the whole group quiesced: hold the
            // query until new instances come online.
            if let Some(tr) = &mut self.trace {
                tr.record(
                    now,
                    query.id.0,
                    TraceEvent::Stash {
                        query: query.id.0,
                        group: g,
                    },
                );
            }
            self.groups[g].stash.push_back(query);
            return;
        }
        if self.groups[g].elsa.is_some() {
            let local = {
                let table = self.specs[g].table;
                let (elsa, state) = self.groups[g].elsa.as_mut().expect("elsa mode");
                elsa.place_mut(query.batch, table, state, now.as_nanos())
                    .partition()
            };
            let w = self.groups[g].members[local];
            if self.slots[w].worker.is_idle() {
                self.begin(w, query, now, sched);
            } else {
                let est = self.estimate_ns(w, query.batch);
                if let Some(tr) = &mut self.trace {
                    tr.record(
                        now,
                        query.id.0,
                        TraceEvent::Enqueue {
                            query: query.id.0,
                            group: g,
                        },
                    );
                }
                self.slots[w]
                    .worker
                    .enqueue(query, SimDuration::from_nanos(est));
                self.groups[g]
                    .elsa
                    .as_mut()
                    .expect("elsa mode")
                    .1
                    .enqueue(local, est);
            }
        } else {
            match self.groups[g].fifs_idle.first() {
                Some((idle_since, local)) => {
                    self.groups[g].fifs_idle.remove((idle_since, local));
                    let w = self.groups[g].members[local as usize];
                    self.begin(w, query, now, sched);
                }
                None => {
                    if let Some(tr) = &mut self.trace {
                        tr.record(
                            now,
                            query.id.0,
                            TraceEvent::Enqueue {
                                query: query.id.0,
                                group: g,
                            },
                        );
                    }
                    self.groups[g].central.push_back(query);
                }
            }
        }
    }

    fn on_complete(
        &mut self,
        w: usize,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        if self.slots[w].dead {
            // Tombstone: the slot was killed by a fault mid-execution and
            // its query was aborted and requeued — this completion never
            // physically happened.
            return;
        }
        self.last_completion = now;
        let g = self.slots[w].group;
        let (query, started) = self.slots[w].worker.finish(now);
        let latency_ns = (now - query.arrival).as_nanos();
        self.histogram.record(latency_ns);
        self.queue_hist
            .record((started - query.dispatched).as_nanos());
        self.service_hist.record((now - started).as_nanos());
        if let Some(tr) = &mut self.trace {
            tr.record(
                now,
                query.id.0,
                TraceEvent::Complete {
                    query: query.id.0,
                    worker: w,
                    latency_ns,
                },
            );
        }
        let accum = &mut self.per_group[g];
        accum.completed += 1;
        accum.histogram.record(latency_ns);
        if let Some(sla) = self.specs[g].sla_ns {
            accum.sla_violations += u64::from(latency_ns > sla);
        }
        if self.config.detail == ReportDetail::Full {
            self.latency.record(latency_ns);
            self.records.push(QueryRecord {
                id: query.id,
                batch: query.batch,
                arrival: query.arrival,
                dispatched: query.dispatched,
                started,
                completed: now,
                partition: w,
            });
            self.record_groups.push(g);
        }
        if let Some(gantt) = &mut self.gantt {
            gantt.push(Span {
                partition: w,
                query: query.id,
                batch: query.batch,
                start: started,
                end: now,
            });
        }

        if self.slots[w].retiring {
            // A quiesced partition serves out its own local queue, then
            // goes dark; the last drained partition starts the step's
            // reslice.
            if let Some((q, _est)) = self.slots[w].worker.pop_next() {
                self.begin(w, q, now, sched);
            } else {
                let rc = self
                    .reconfig
                    .as_mut()
                    .expect("retiring implies a reconfig in flight");
                rc.draining -= 1;
                if rc.draining == 0 {
                    let (delay, epoch) = (rc.step_downtime, rc.epoch);
                    sched(
                        now + delay,
                        RECONFIG_KEY,
                        ShardEvent::ReconfigReady { epoch },
                    );
                }
            }
            return;
        }

        let local = self.slots[w].local;
        if self.groups[g].elsa.is_some() {
            self.groups[g]
                .elsa
                .as_mut()
                .expect("elsa mode")
                .1
                .finish(local);
            if let Some((q, est)) = self.slots[w].worker.pop_next() {
                self.groups[g]
                    .elsa
                    .as_mut()
                    .expect("elsa mode")
                    .1
                    .dequeue(local, est.as_nanos());
                self.begin(w, q, now, sched);
            }
        } else {
            match self.groups[g].central.pop_front() {
                Some(q) => self.begin(w, q, now, sched),
                None => self.groups[g]
                    .fifs_idle
                    .insert((now.as_nanos(), local as u32)),
            }
        }
    }

    /// Kills the given worker slots **immediately** — a fault, not a
    /// drain: each slot's in-flight query is aborted and its local queue
    /// emptied, and every orphaned query re-enters the normal dispatch
    /// path at `now` (surviving group members, or the group's stash when
    /// the kill left the group dark). Dead slots never serve again; a
    /// repair brings *new* instances up through the ordinary
    /// reconfiguration path. Returns how many queries were requeued.
    ///
    /// Killing a slot that is draining for an in-flight reconfiguration
    /// step counts as that drain completing — the hardware is gone, there
    /// is nothing left to wait for — so a schedule never deadlocks on a
    /// dead drainer. Already-dead and out-of-range indices are skipped.
    pub fn kill_workers(
        &mut self,
        workers: &[usize],
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> u64 {
        let mut orphans: Vec<(usize, Query)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for &w in workers {
            if w >= self.slots.len() || self.slots[w].dead {
                continue;
            }
            let g = self.slots[w].group;
            let was_retiring = self.slots[w].retiring;
            let was_busy = self.slots[w].worker.busy_until().is_some();
            if let Some(q) = self.slots[w].worker.abort(now) {
                if let Some(tr) = &mut self.trace {
                    tr.record(
                        now,
                        q.id.0,
                        TraceEvent::ServiceAbort {
                            query: q.id.0,
                            worker: w,
                        },
                    );
                }
                orphans.push((g, q));
            }
            while let Some((q, _est)) = self.slots[w].worker.pop_next() {
                orphans.push((g, q));
            }
            self.slots[w].dead = true;
            self.slots[w].retiring = true;
            if was_retiring {
                // A retiring slot that is busy has not yet reported its
                // drain (it decrements `draining` when it goes idle);
                // its death is that report.
                if was_busy {
                    let rc = self
                        .reconfig
                        .as_mut()
                        .expect("retiring implies a reconfig in flight");
                    rc.draining -= 1;
                    if rc.draining == 0 {
                        let (delay, epoch) = (rc.step_downtime, rc.epoch);
                        sched(
                            now + delay,
                            RECONFIG_KEY,
                            ShardEvent::ReconfigReady { epoch },
                        );
                    }
                }
            } else {
                self.groups[g].members.retain(|&x| x != w);
                if !touched.contains(&g) {
                    touched.push(g);
                }
            }
            if let Some(gantt) = &mut self.gantt {
                gantt.mark_outage(w, now);
            }
        }
        for &g in &touched {
            self.rebuild_group(g);
        }
        let requeued = orphans.len() as u64;
        // Orphans re-enter in kill order (in-flight before queued, lower
        // slots first) — deterministic, and their original ids/arrivals
        // survive, so the outage shows up as latency, never as loss.
        for (g, q) in orphans {
            if let Some(tr) = &mut self.trace {
                tr.record(now, q.id.0, TraceEvent::Requeue { query: q.id.0 });
            }
            self.route(q, g, now, sched);
        }
        requeued
    }

    /// The live (serving, non-retiring) members of every group as
    /// `(worker index, size)` pairs — what a fault injector packs into
    /// physical-GPU bins ([`paris_core::pack_gpus`]) to decide which
    /// instances a GPU failure takes down.
    #[must_use]
    pub fn live_members(&self) -> Vec<Vec<(usize, ProfileSize)>> {
        self.groups
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|&w| (w, self.slots[w].worker.size()))
                    .collect()
            })
            .collect()
    }

    /// Sets the physical service-time multiplier of the given worker slots
    /// to `factor` (1.0 restores the clean profile) — a *slow-GPU* fault,
    /// not a kill: the slots keep serving, but every execution begun after
    /// this instant takes `factor`× the profiled time. Work already in
    /// flight keeps its scheduled completion (the throttle lands between
    /// queries, not mid-kernel).
    ///
    /// When the configuration makes degradation visible, each affected
    /// group's ELSA state is updated in place so placement immediately
    /// steers around the slow slots; a blind configuration scales only the
    /// physical times. Slots already at `factor` are skipped entirely —
    /// which is what makes a `factor == 1.0` degrade-and-restore cycle
    /// bit-for-bit identical to never degrading at all. Dead and
    /// out-of-range slots are skipped.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and ≥ 1.0.
    pub fn set_degrade(&mut self, workers: &[usize], factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "degrade factor must be finite and >= 1.0, got {factor}"
        );
        for &w in workers {
            if w >= self.slots.len() || self.slots[w].dead || self.slots[w].degrade == factor {
                continue;
            }
            self.slots[w].degrade = factor;
            if self.config.degrade_visible && !self.slots[w].retiring {
                let (g, local) = (self.slots[w].group, self.slots[w].local);
                if let Some((_, state)) = &mut self.groups[g].elsa {
                    state.set_factor(local, factor);
                }
            }
        }
    }

    /// Total GPC-weighted busy nanoseconds accumulated by every slot that
    /// ever existed — the measured-utilization signal behind the cluster's
    /// `LoanDemandModel::MeasuredBusy` (demand in GPU equivalents is the
    /// rate of change of this quantity divided by
    /// [`mig_gpu::COMPUTE_SLICES`]).
    #[must_use]
    pub fn busy_gpc_ns(&self) -> u128 {
        self.slots
            .iter()
            .map(|s| u128::from(s.worker.busy_ns()) * s.worker.size().gpcs() as u128)
            .sum()
    }

    /// Begins executing a reconfiguration schedule: quiesces the first
    /// step's removals and arms its reslice. Returns `false` — leaving
    /// serving untouched — when the schedule is empty or another
    /// reconfiguration is still in flight.
    pub fn begin_transition(
        &mut self,
        mut schedule: ReconfigSchedule,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        if self.reconfig.is_some() {
            return false;
        }
        let (destroyed, created) = (schedule.destroyed(), schedule.created());
        let Some(first) = schedule.next() else {
            return false;
        };
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.reconfig = Some(ReconfigRun {
            triggered_at: now,
            destroyed,
            created,
            schedule,
            epoch,
            draining: 0,
            step_downtime: SimDuration::ZERO,
            pending_added: Vec::new(),
            step_retired: 0,
            destroyed_done: 0,
            created_done: 0,
            charged: SimDuration::ZERO,
            steps_done: 0,
        });
        self.start_step(first, now, sched);
        true
    }

    /// Aborts an in-flight reconfiguration — the escape hatch a fault
    /// handler pulls when a failure lands on hardware the transition is
    /// mid-way through rearranging (the stale schedule would otherwise
    /// keep executing against a layout that no longer exists, and the
    /// recovery re-plan would defer behind it).
    ///
    /// The remaining schedule is dropped; the current step's quiesced
    /// survivors rejoin their groups with their queues intact (a drain is
    /// reversible right up until the reslice destroys the instance); its
    /// never-created additions simply never exist; stashed dark-group
    /// arrivals re-enter dispatch wherever members survive. Any
    /// already-armed [`ShardEvent::ReconfigReady`] is left in the DES and
    /// dies as a stale epoch. The transition is recorded as a
    /// [`ReconfigEvent`] with `aborted: true`, counting only what its
    /// completed steps actually destroyed/created.
    ///
    /// Returns `false` (a no-op) when no reconfiguration is in flight.
    pub fn abort_transition(
        &mut self,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) -> bool {
        let Some(rc) = self.reconfig.take() else {
            return false;
        };
        let mut touched: Vec<usize> = Vec::new();
        let mut destroyed_by_death = 0usize;
        // Steps execute strictly in order, so every retiring slot belongs
        // to the aborted step. Dead ones stay dead (the hardware is gone
        // whether or not a reslice was coming); survivors revive.
        for w in 0..self.slots.len() {
            if !self.slots[w].retiring {
                continue;
            }
            if self.slots[w].dead {
                destroyed_by_death += 1;
                continue;
            }
            self.slots[w].retiring = false;
            let g = self.slots[w].group;
            self.groups[g].members.push(w);
            if !touched.contains(&g) {
                touched.push(g);
            }
        }
        for &g in &touched {
            self.rebuild_group(g);
        }
        // Arrivals stashed while a group was dark re-enter dispatch now
        // that the revival (or an earlier step's additions) gave it
        // members again; a still-dark group keeps its stash for the
        // recovery re-plan that follows an abort.
        for g in 0..self.groups.len() {
            while !self.groups[g].members.is_empty() {
                let Some(q) = self.groups[g].stash.pop_front() else {
                    break;
                };
                self.route(q, g, now, sched);
            }
        }
        if let Some(tr) = &mut self.trace {
            tr.record(
                now,
                ANNOTATION_KEY,
                TraceEvent::ReconfigDone {
                    steps: rc.steps_done,
                    aborted: true,
                },
            );
        }
        self.reconfigs.push(ReconfigEvent {
            triggered_at: rc.triggered_at,
            completed_at: now,
            destroyed: rc.destroyed_done + destroyed_by_death,
            created: rc.created_done,
            reslice_delay: rc.charged,
            steps: rc.steps_done,
            aborted: true,
        });
        true
    }

    /// Quiesces one step's removals (per group and size, the
    /// highest-indexed members first — deterministic), stages its
    /// additions, and arms the reslice if nothing needs draining.
    fn start_step(
        &mut self,
        step: ReconfigStep,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        let mut draining = 0usize;
        let mut retired = 0usize;
        let mut added: Vec<(usize, ProfileSize)> = Vec::new();
        for (g, diff) in &step.diffs {
            let g = *g;
            for (&size, &count) in &diff.removed {
                let mut to_retire = count;
                let members = self.groups[g].members.clone();
                for &w in members.iter().rev() {
                    if to_retire == 0 {
                        break;
                    }
                    if self.slots[w].worker.size() == size {
                        self.slots[w].retiring = true;
                        self.groups[g].members.retain(|&x| x != w);
                        if self.slots[w].worker.is_idle() {
                            // Nothing in flight: drained on the spot.
                        } else {
                            draining += 1;
                        }
                        retired += 1;
                        to_retire -= 1;
                    }
                }
            }
            for (&size, &count) in &diff.added {
                added.extend(std::iter::repeat_n((g, size), count));
            }
            // Only this group's membership changed; untouched groups keep
            // their incrementally maintained state (rebuilding them is a
            // semantic no-op, so skipping it saves S×G work per rolling
            // schedule without changing behavior).
            self.rebuild_group(g);
        }
        let rc = self.reconfig.as_mut().expect("step implies a reconfig");
        rc.draining = draining;
        rc.step_downtime = SimDuration::from_nanos(step.downtime_ns);
        rc.pending_added = added;
        rc.step_retired = retired;
        if let Some(tr) = &mut self.trace {
            tr.record(
                now,
                ANNOTATION_KEY,
                TraceEvent::ReconfigStep {
                    step: rc.steps_done,
                    downtime_ns: step.downtime_ns,
                },
            );
        }
        if draining == 0 {
            sched(
                now + rc.step_downtime,
                RECONFIG_KEY,
                ShardEvent::ReconfigReady { epoch: rc.epoch },
            );
        }
    }

    /// One step's reslice finished: create its instances, refresh
    /// scheduler state, serve anything that queued up during the partial
    /// outage, then either start the next step or complete the
    /// reconfiguration.
    fn on_reconfig_ready(
        &mut self,
        epoch: u64,
        now: SimTime,
        sched: &mut impl FnMut(SimTime, u64, ShardEvent),
    ) {
        // A stale ready event — its transition was aborted (and possibly
        // replaced) between arming and firing — is dead air.
        let Some(rc) = self.reconfig.as_mut().filter(|rc| rc.epoch == epoch) else {
            return;
        };
        let added = std::mem::take(&mut rc.pending_added);
        rc.charged += rc.step_downtime;
        rc.steps_done += 1;
        rc.destroyed_done += rc.step_retired;
        rc.step_retired = 0;
        rc.created_done += added.len();
        for &(g, size) in &added {
            let w = self.slots.len();
            // New silicon comes up clean: degrade follows the hardware
            // that was hot, not the slot number.
            self.slots.push(WorkerSlot {
                worker: PartitionWorker::new(size),
                group: g,
                local: 0,
                retiring: false,
                dead: false,
                degrade: 1.0,
            });
            self.rows.push(self.specs[g].table.latency_row(size));
            self.max_batch.push(self.specs[g].table.max_batch());
            self.groups[g].members.push(w);
            if let Some(gantt) = &mut self.gantt {
                let row = gantt.add_partition(size);
                debug_assert_eq!(row, w, "gantt rows track worker slots");
            }
        }
        // Only groups that gained instances have new capacity to rebuild
        // around and backlog to flush; removal-only groups were rebuilt at
        // quiesce time and groups outside the step are untouched.
        let mut touched: Vec<usize> = added.iter().map(|&(g, _)| g).collect();
        touched.dedup();
        for g in touched {
            self.rebuild_group(g);
            // FIFS groups may have central backlog and fresh idle
            // instances: work-conservation demands they meet.
            while !self.groups[g].central.is_empty() {
                let Some((idle_since, local)) = self.groups[g].fifs_idle.first() else {
                    break;
                };
                self.groups[g].fifs_idle.remove((idle_since, local));
                let w = self.groups[g].members[local as usize];
                let q = self.groups[g]
                    .central
                    .pop_front()
                    .expect("checked non-empty");
                self.begin(w, q, now, sched);
            }
            // Queries that arrived while the group was dark re-enter the
            // normal dispatch path, in arrival order — but only once the
            // group has members again (a rolling schedule may bring this
            // group's additions online in a later step).
            while !self.groups[g].members.is_empty() {
                let Some(q) = self.groups[g].stash.pop_front() else {
                    break;
                };
                self.route(q, g, now, sched);
            }
        }
        let rc = self.reconfig.as_mut().expect("still mid-transition");
        match rc.schedule.next() {
            Some(step) => self.start_step(step, now, sched),
            None => {
                let rc = self.reconfig.take().expect("checked above");
                if let Some(tr) = &mut self.trace {
                    tr.record(
                        now,
                        ANNOTATION_KEY,
                        TraceEvent::ReconfigDone {
                            steps: rc.steps_done,
                            aborted: false,
                        },
                    );
                }
                self.reconfigs.push(ReconfigEvent {
                    triggered_at: rc.triggered_at,
                    completed_at: now,
                    destroyed: rc.destroyed,
                    created: rc.created,
                    reslice_delay: rc.charged,
                    steps: rc.steps_done,
                    aborted: false,
                });
            }
        }
    }

    /// Consumes the core into the multi-group run report.
    /// `peak_pending_events` is the driver's event-queue high-water mark (a
    /// shared cluster DES reports the same fleet-wide value to every
    /// shard).
    #[must_use]
    pub fn finish(self, peak_pending_events: usize) -> MultiRunReport {
        let makespan = self.last_completion.saturating_since(SimTime::ZERO);
        let makespan_s = makespan.as_secs_f64();
        let completed = self.histogram.count();
        let achieved_qps = if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        };
        let partition_utilization: Vec<f64> = self
            .slots
            .iter()
            .map(|s| {
                if makespan.as_nanos() == 0 {
                    0.0
                } else {
                    (s.worker.busy_ns() as f64 / makespan.as_nanos() as f64).min(1.0)
                }
            })
            .collect();

        MultiRunReport {
            detail: self.config.detail,
            records: self.records,
            record_models: self.record_groups,
            latency: self.latency,
            histogram: self.histogram,
            queue_hist: self.queue_hist,
            service_hist: self.service_hist,
            per_model: self
                .specs
                .iter()
                .zip(self.per_group)
                .map(|(spec, acc)| ModelReport {
                    name: spec.name.to_owned(),
                    completed: acc.completed,
                    histogram: acc.histogram,
                    sla_ns: spec.sla_ns,
                    sla_violations: acc.sla_violations,
                })
                .collect(),
            makespan,
            achieved_qps,
            partition_utilization,
            partition_sizes: self.slots.iter().map(|s| s.worker.size()).collect(),
            partition_models: self.slots.iter().map(|s| s.group).collect(),
            reconfigs: self.reconfigs,
            gantt: self.gantt,
            peak_pending_events,
        }
    }

    /// Consumes the core into a single-group [`RunReport`] — the identity
    /// instantiation behind
    /// [`InferenceServer::run_stream`](crate::InferenceServer::run_stream).
    ///
    /// # Panics
    ///
    /// Panics if the core hosts more than one group.
    #[must_use]
    pub fn finish_single(self, peak_pending_events: usize) -> RunReport {
        assert_eq!(
            self.specs.len(),
            1,
            "single-group report of a multi-group core"
        );
        let sla_ns = self.specs[0].sla_ns;
        let sla_violations = self.per_group[0].sla_violations;
        let multi = self.finish(peak_pending_events);
        RunReport {
            detail: multi.detail,
            records: multi.records,
            latency: multi.latency,
            histogram: multi.histogram,
            queue_hist: multi.queue_hist,
            service_hist: multi.service_hist,
            makespan: multi.makespan,
            achieved_qps: multi.achieved_qps,
            partition_utilization: multi.partition_utilization,
            gantt: multi.gantt,
            peak_pending_events,
            sla_ns,
            sla_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des_engine::Simulation;
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel};
    use paris_core::{plan_diff, ReconfigMode};

    #[test]
    fn dispatch_core_is_send() {
        // Lane workers in the cluster crate carry a whole dispatch stack
        // to another thread every window; the core (and everything it
        // embeds) must stay `Send`.
        fn assert_send<T: Send>() {}
        assert_send::<DispatchCore<'static>>();
    }

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn core_config() -> CoreConfig {
        CoreConfig {
            frontend_overhead: SimDuration::from_micros(20),
            service_noise: 0.0,
            noise_seed: 0,
            detail: ReportDetail::Full,
            record_gantt: false,
            degrade_visible: true,
        }
    }

    /// Drives `queries` evenly spaced arrivals (alternating groups)
    /// through a two-group core, starting a transition from `current` to
    /// `target` under `mode` once `trigger_after` dispatches have been
    /// handled. Returns the final live layouts and the run report.
    fn run_with_transition(
        tables: &[ProfileTable; 2],
        current: &[Vec<ProfileSize>],
        target: &[Vec<ProfileSize>],
        mode: ReconfigMode,
        queries: usize,
        trigger_after: usize,
    ) -> (Vec<Vec<ProfileSize>>, MultiRunReport) {
        let specs = vec![
            GroupSpec {
                name: "g0",
                table: &tables[0],
                scheduler: SchedulerKind::Fifs,
                sla_ns: None,
            },
            GroupSpec {
                name: "g1",
                table: &tables[1],
                scheduler: SchedulerKind::Fifs,
                sla_ns: None,
            },
        ];
        let mut core = DispatchCore::new(specs, current, core_config());
        let mut sim: Simulation<ShardEvent> = Simulation::new();
        let cost = mig_gpu::ResliceCostModel::a100_default();

        let arrivals: Vec<(usize, QuerySpec)> = (0..queries)
            .map(|i| {
                (
                    i % 2,
                    QuerySpec {
                        arrival_ns: i as u64 * 300_000, // 300 µs apart
                        batch: 1 + (i % 8),
                    },
                )
            })
            .collect();
        let mut next = 0usize;
        let mut dispatched = 0usize;
        let mut transitioned = false;
        let (g, spec) = arrivals[next];
        next += 1;
        core.offer(g, spec, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        while let Some((now, event)) = sim.next_event() {
            if matches!(event, ShardEvent::Dispatch(..)) {
                if next < arrivals.len() {
                    let (g, spec) = arrivals[next];
                    next += 1;
                    core.offer(g, spec, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
                }
                dispatched += 1;
                if dispatched == trigger_after && !transitioned {
                    transitioned = true;
                    let live = core.live_groups();
                    let diffs: Vec<_> = live
                        .iter()
                        .zip(target)
                        .map(|(c, t)| plan_diff(c, t))
                        .collect();
                    let schedule = ReconfigSchedule::new(&diffs, mode, &cost, 0);
                    assert!(core.begin_transition(schedule, now, &mut |t, k, e| {
                        sim.schedule_at_keyed(t, k, e)
                    }));
                }
            }
            core.handle(now, event, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        assert!(transitioned, "trace too short to reach the trigger");
        assert!(!core.reconfig_in_flight(), "schedule ran to completion");
        let live = core.live_groups();
        (live, core.finish(sim.peak_pending()))
    }

    fn sorted(mut g: Vec<ProfileSize>) -> Vec<ProfileSize> {
        g.sort();
        g
    }

    /// The rolling ≡ all-at-once final-state contract on an empty-overlap
    /// diff: when the target layout shares no instance size with the
    /// current one (every instance is destroyed and rebuilt), both modes
    /// must land on exactly the target layout, conserve every query, and
    /// report one reconfiguration — rolling merely cuts it into more
    /// steps.
    #[test]
    fn rolling_equals_all_at_once_final_state_on_empty_overlap_diff() {
        let tables = [table(ModelKind::MobileNet), table(ModelKind::ResNet50)];
        // Group 0: one G7 → G2+G3; group 1: two G3 → one G7. No size
        // survives in either group (empty overlap).
        let current = vec![
            vec![ProfileSize::G7],
            vec![ProfileSize::G3, ProfileSize::G3],
        ];
        let target = vec![
            vec![ProfileSize::G2, ProfileSize::G3],
            vec![ProfileSize::G7],
        ];
        for (c, t) in current.iter().zip(&target) {
            assert_eq!(plan_diff(c, t).kept_count(), 0, "overlap must be empty");
        }
        let n = 400;
        let (live_all, rep_all) =
            run_with_transition(&tables, &current, &target, ReconfigMode::AllAtOnce, n, 120);
        let (live_roll, rep_roll) =
            run_with_transition(&tables, &current, &target, ReconfigMode::Rolling, n, 120);

        for m in 0..2 {
            assert_eq!(sorted(live_all[m].clone()), sorted(target[m].clone()));
            assert_eq!(sorted(live_roll[m].clone()), sorted(live_all[m].clone()));
        }
        for rep in [&rep_all, &rep_roll] {
            assert_eq!(rep.records.len(), n, "nothing dropped");
            let mut ids: Vec<u64> = rep.records.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), n, "nothing double-served");
            assert_eq!(rep.reconfigs.len(), 1);
        }
        assert_eq!(rep_all.reconfigs[0].steps, 1);
        assert!(
            rep_roll.reconfigs[0].steps > 1,
            "a two-GPU empty-overlap edit must roll out in stages, got {}",
            rep_roll.reconfigs[0].steps
        );
        assert_eq!(
            rep_all.reconfigs[0].destroyed,
            rep_roll.reconfigs[0].destroyed
        );
        assert_eq!(rep_all.reconfigs[0].created, rep_roll.reconfigs[0].created);
        // Rolling pays the per-step fixed driver overhead, so its summed
        // charged downtime is at least the all-at-once charge.
        assert!(rep_roll.reconfigs[0].reslice_delay >= rep_all.reconfigs[0].reslice_delay);
    }

    /// A fault kill is not a drain: the killed worker's in-flight query
    /// and local queue re-enter the dispatch path at the kill instant,
    /// nothing is lost or double-served, and the stale completion event is
    /// a tombstone.
    #[test]
    fn fault_kill_requeues_inflight_and_queued_work() {
        let t = table(ModelKind::MobileNet);
        let specs = vec![GroupSpec {
            name: "m",
            table: &t,
            scheduler: SchedulerKind::Fifs,
            sla_ns: None,
        }];
        let layouts = vec![vec![ProfileSize::G3, ProfileSize::G3]];
        let mut core = DispatchCore::new(specs, &layouts, core_config());
        let mut sim: Simulation<ShardEvent> = Simulation::new();

        let n = 300usize;
        let arrivals: Vec<QuerySpec> = (0..n)
            .map(|i| QuerySpec {
                arrival_ns: i as u64 * 150_000, // 150 µs apart: queues build
                batch: 1 + (i % 8),
            })
            .collect();
        let mut next = 0usize;
        let mut dispatched = 0usize;
        let mut killed_at = None;
        core.offer(0, arrivals[next], &mut |t, k, e| {
            sim.schedule_at_keyed(t, k, e)
        });
        next += 1;
        while let Some((now, event)) = sim.next_event() {
            if matches!(event, ShardEvent::Dispatch(..)) {
                if next < arrivals.len() {
                    core.offer(0, arrivals[next], &mut |t, k, e| {
                        sim.schedule_at_keyed(t, k, e)
                    });
                    next += 1;
                }
                dispatched += 1;
                if dispatched == 80 && killed_at.is_none() {
                    killed_at = Some(now);
                    let requeued =
                        core.kill_workers(&[0], now, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
                    // The worker was mid-query with a backlog: something
                    // must have been orphaned and requeued.
                    assert!(requeued > 0, "kill found no work to requeue");
                    assert_eq!(core.live_members()[0].len(), 1, "one survivor");
                    // Killing again is a no-op.
                    assert_eq!(
                        core.kill_workers(&[0], now, &mut |t, k, e| sim.schedule_at_keyed(t, k, e)),
                        0
                    );
                }
            }
            core.handle(now, event, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        let killed_at = killed_at.expect("trace reached the kill");
        let rep = core.finish(sim.peak_pending());
        assert_eq!(rep.records.len(), n, "nothing dropped");
        let mut ids: Vec<u64> = rep.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "nothing double-served");
        // Nothing executed on the dead slot after the kill.
        for r in &rep.records {
            if r.partition == 0 {
                assert!(r.completed <= killed_at, "dead slot served {r:?}");
            }
            assert!(r.arrival <= r.dispatched && r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
        assert!(
            rep.records.iter().any(|r| r.partition == 1),
            "survivor picked up the requeued work"
        );
    }

    /// Aborting a rolling transition mid-step revives the quiesced
    /// survivors, conserves every query, records the aborted event, and
    /// leaves the stale armed `ReconfigReady` harmless.
    #[test]
    fn abort_mid_rolling_step_revives_quiesced_and_conserves() {
        let tables = [table(ModelKind::MobileNet), table(ModelKind::MobileNet)];
        let current = vec![
            vec![ProfileSize::G7, ProfileSize::G7],
            vec![ProfileSize::G2, ProfileSize::G2, ProfileSize::G3],
        ];
        let target = vec![vec![ProfileSize::G3; 4], vec![ProfileSize::G7]];
        let specs = vec![
            GroupSpec {
                name: "g0",
                table: &tables[0],
                scheduler: SchedulerKind::Fifs,
                sla_ns: None,
            },
            GroupSpec {
                name: "g1",
                table: &tables[1],
                scheduler: SchedulerKind::Fifs,
                sla_ns: None,
            },
        ];
        let mut core = DispatchCore::new(specs, &current, core_config());
        let mut sim: Simulation<ShardEvent> = Simulation::new();
        let cost = mig_gpu::ResliceCostModel::a100_default();

        let n = 600usize;
        let arrivals: Vec<(usize, QuerySpec)> = (0..n)
            .map(|i| {
                (
                    i % 2,
                    QuerySpec {
                        arrival_ns: i as u64 * 300_000,
                        batch: 1 + (i % 8),
                    },
                )
            })
            .collect();
        let mut next = 0usize;
        let mut dispatched = 0usize;
        let mut aborted = false;
        let (g, spec) = arrivals[next];
        next += 1;
        core.offer(g, spec, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        while let Some((now, event)) = sim.next_event() {
            if matches!(event, ShardEvent::Dispatch(..)) {
                if next < arrivals.len() {
                    let (g, spec) = arrivals[next];
                    next += 1;
                    core.offer(g, spec, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
                }
                dispatched += 1;
                if dispatched == 200 {
                    let live = core.live_groups();
                    let diffs: Vec<_> = live
                        .iter()
                        .zip(&target)
                        .map(|(c, t)| plan_diff(c, t))
                        .collect();
                    let schedule = ReconfigSchedule::new(&diffs, ReconfigMode::Rolling, &cost, 0);
                    assert!(core.begin_transition(schedule, now, &mut |t, k, e| {
                        sim.schedule_at_keyed(t, k, e)
                    }));
                }
                if dispatched == 210 && core.reconfig_in_flight() && !aborted {
                    aborted = true;
                    assert!(core
                        .abort_transition(now, &mut |t, k, e| { sim.schedule_at_keyed(t, k, e) }));
                    assert!(!core.reconfig_in_flight());
                    // Aborting again is a no-op.
                    assert!(!core
                        .abort_transition(now, &mut |t, k, e| { sim.schedule_at_keyed(t, k, e) }));
                    // Every slot that is not permanently destroyed serves
                    // again: the revived layout hosts both groups.
                    let live = core.live_groups();
                    assert!(
                        live.iter().all(|g| !g.is_empty()),
                        "revival left a dark group"
                    );
                }
            }
            core.handle(now, event, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        }
        assert!(aborted, "trace too short to reach the abort");
        let rep = core.finish(sim.peak_pending());
        assert_eq!(rep.records.len(), n, "nothing dropped");
        let mut ids: Vec<u64> = rep.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "nothing double-served");
        for r in &rep.records {
            assert!(r.arrival <= r.dispatched && r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
        assert_eq!(rep.reconfigs.len(), 1);
        assert!(rep.reconfigs[0].aborted, "the abort is recorded");
    }

    /// Slot degradation scales physical service times (and, visible,
    /// steers placement), while a factor-1.0 degrade/restore cycle is
    /// bit-for-bit the untouched run.
    #[test]
    fn degrade_slows_service_and_unit_factor_is_bit_identical() {
        let t = table(ModelKind::MobileNet);
        let run = |factors: &[(usize, f64)]| {
            let specs = vec![GroupSpec {
                name: "m",
                table: &t,
                scheduler: SchedulerKind::Fifs,
                sla_ns: None,
            }];
            let layouts = vec![vec![ProfileSize::G3, ProfileSize::G3]];
            let mut core = DispatchCore::new(specs, &layouts, core_config());
            let mut sim: Simulation<ShardEvent> = Simulation::new();
            for &(w, f) in factors {
                core.set_degrade(&[w], f);
            }
            let n = 200usize;
            let arrivals: Vec<QuerySpec> = (0..n)
                .map(|i| QuerySpec {
                    arrival_ns: i as u64 * 200_000,
                    batch: 1 + (i % 8),
                })
                .collect();
            let mut next = 0usize;
            core.offer(0, arrivals[next], &mut |t, k, e| {
                sim.schedule_at_keyed(t, k, e)
            });
            next += 1;
            while let Some((now, event)) = sim.next_event() {
                if matches!(event, ShardEvent::Dispatch(..)) && next < arrivals.len() {
                    core.offer(0, arrivals[next], &mut |t, k, e| {
                        sim.schedule_at_keyed(t, k, e)
                    });
                    next += 1;
                }
                core.handle(now, event, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
            }
            core.finish(sim.peak_pending())
        };
        let clean = run(&[]);
        let unit = run(&[(0, 1.0)]);
        // Unit factor: bit-for-bit the clean run.
        assert_eq!(unit.records, clean.records);
        assert_eq!(unit.makespan, clean.makespan);
        let slow = run(&[(0, 3.0)]);
        assert_eq!(slow.records.len(), clean.records.len(), "conserved");
        assert!(
            slow.makespan > clean.makespan,
            "a 3x-slow slot must stretch the run"
        );
        // Visible degradation steers work toward the healthy slot.
        let served_on = |rep: &MultiRunReport, w: usize| {
            rep.records.iter().filter(|r| r.partition == w).count()
        };
        assert!(
            served_on(&slow, 1) > served_on(&clean, 1),
            "placement should shift load off the slow slot"
        );
    }

    /// Conservation at every step of a rolling schedule: quiesced
    /// instances drain their queues, stashed arrivals are served once
    /// capacity returns, lifecycle timestamps stay ordered throughout.
    #[test]
    fn rolling_schedule_conserves_queries_at_every_step() {
        let tables = [table(ModelKind::MobileNet), table(ModelKind::MobileNet)];
        let current = vec![
            vec![ProfileSize::G7, ProfileSize::G7],
            vec![ProfileSize::G2, ProfileSize::G2, ProfileSize::G3],
        ];
        let target = vec![vec![ProfileSize::G3; 4], vec![ProfileSize::G7]];
        let n = 600;
        let (live, rep) =
            run_with_transition(&tables, &current, &target, ReconfigMode::Rolling, n, 200);
        for m in 0..2 {
            assert_eq!(sorted(live[m].clone()), sorted(target[m].clone()));
        }
        assert_eq!(rep.records.len(), n);
        let mut ids: Vec<u64> = rep.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        for r in &rep.records {
            assert!(r.arrival <= r.dispatched);
            assert!(r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
        assert_eq!(rep.reconfigs.len(), 1);
        assert!(rep.reconfigs[0].steps > 1);
        // Every instance that ever existed is accounted for in the report.
        assert_eq!(
            rep.partition_sizes.len(),
            current.iter().map(Vec::len).sum::<usize>() + rep.reconfigs[0].created
        );
    }
}
