//! # inference-faults — fault injection & recovery scenarios
//!
//! The scenario engine over the cluster's fault machinery: production
//! multi-GPU serving systems treat hardware failure and degraded-capacity
//! operation as first-class, and a *reconfigurable* server is uniquely
//! positioned to **re-plan around** lost hardware instead of merely
//! failing over. This crate turns that into measurable scenarios:
//!
//! * [`FaultPlan`] — a deterministic, seedable fault schedule built from
//!   explicit outage windows ([`GpuOutage`], [`ShardOutage`]) and/or
//!   MTTF/MTTR-sampled GPU failures
//!   ([`sample_gpu_mttf`](FaultPlan::sample_gpu_mttf), exponential
//!   up/down times per GPU lane). Every outage carries its repair, so a
//!   compiled plan can never strand a query in a dark group forever.
//! * [`run_with_faults`] — compiles the plan to an executable
//!   [`FaultTimeline`] and drives the cluster through it: GPU failures
//!   kill the instances packed on the failing GPU (in-flight + queued
//!   work requeues through the dispatch drain path) and PARIS re-plans
//!   the survivor budget; shard failures drain out of the routing
//!   rotation; with a [`LoanPolicy`](inference_cluster::LoanPolicy) the
//!   batch pool backfills lost capacity immediately.
//!   [`run_with_faults_windowed`] is the same run with an explicit
//!   [`SyncWindow`] mode and lane thread count (bit-for-bit invariant
//!   under threads — ARCHITECTURE.md invariant 11).
//! * [`FaultReport`] — the run's [`ClusterReport`] plus the availability
//!   accounting: base availability (GPU-time online / GPU-time owned),
//!   effective availability (crediting batch-pool backfill), and the
//!   degraded/healthy worst-window tail split
//!   ([`server_metrics::WindowedTail`]).
//!
//! # Contracts
//!
//! An **empty plan is bit-for-bit the fault-free run** (pinned by tests
//! here and in the cluster crate), and **failure conservation** holds for
//! any plan: fail → drain/requeue → re-plan never drops or double-serves
//! a query (ARCHITECTURE.md invariant 9; enforced by the property suite).
//!
//! # Examples
//!
//! ```
//! use dnn_zoo::ModelKind;
//! use inference_cluster::{Cluster, RouterPolicy};
//! use inference_faults::{run_with_faults, FaultPlan};
//! use inference_server::{ModelSpec, MultiModelConfig, MultiModelServer, ReportDetail};
//! use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
//! use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
//! use paris_core::{GpcBudget, ProfileTable};
//!
//! let perf = PerfModel::new(DeviceSpec::a100());
//! let dist = BatchDistribution::paper_default();
//! let table = ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
//! let shard = MultiModelServer::new(
//!     vec![ModelSpec::new("mobilenet", table, dist.clone())],
//!     GpcBudget::new(14, 2),
//!     MultiModelConfig::new(),
//! )?;
//! let cluster = Cluster::new(vec![shard], RouterPolicy::JoinShortestQueue);
//! let trace = MultiTraceGenerator::new(vec![PhaseSpec::new(1.0, vec![(400.0, dist)])], 7);
//! // One GPU down from 0.3 s to 0.7 s.
//! let plan = FaultPlan::new().with_gpu_outage(0, 0, 0.3, 0.7);
//! let report = run_with_faults(
//!     &cluster,
//!     trace.generate().into_iter().map(|tq| (None, tq)),
//!     ReportDetail::Full,
//!     &plan,
//! );
//! assert!(report.base_availability < 1.0);
//! assert_eq!(report.cluster.faults.len(), 2); // the fail and the repair
//! # Ok::<(), paris_core::PlanError>(())
//! ```

use des_engine::SimTime;
use inference_cluster::{
    Cluster, ClusterReport, FaultEvent, FaultTimeline, PinnedQuery, SyncWindow,
};
use inference_server::ReportDetail;
use mig_gpu::ResliceCostModel;
use paris_core::ReconfigMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server_metrics::WindowedTail;

/// One GPU's outage window: the GPU fails abruptly at `fail_at` and
/// returns at `repair_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuOutage {
    /// The shard losing the GPU.
    pub shard: usize,
    /// The failing GPU slot within the shard's budget.
    pub gpu: usize,
    /// When the GPU dies (instances on it are killed, work requeues).
    pub fail_at: SimTime,
    /// When it returns (the shard re-plans onto the restored budget).
    pub repair_at: SimTime,
}

/// One whole shard's outage window: the shard leaves the routing rotation
/// at `fail_at` (draining what it holds) and rejoins at `repair_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutage {
    /// The failing shard.
    pub shard: usize,
    /// When the router stops sending it traffic.
    pub fail_at: SimTime,
    /// When it rejoins (and re-plans for the traffic it now sees).
    pub repair_at: SimTime,
}

/// One GPU's partial-degradation window: thermal throttling or ECC-retired
/// memory slows (does not kill) the instances packed on the GPU by
/// `factor` between `degrade_at` and `restore_at`. The dispatch core
/// scales those instances' service times; with degradation-aware placement
/// (the default) ELSA/FIFS also see the inflated estimates and steer new
/// queries around the sick hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuDegrade {
    /// The shard owning the slow GPU.
    pub shard: usize,
    /// The degraded GPU slot within the shard's budget.
    pub gpu: usize,
    /// Service-time multiplier while degraded (≥ 1.0; 1.0 = no-op).
    pub factor: f64,
    /// When throttling begins.
    pub degrade_at: SimTime,
    /// When the clean profile returns.
    pub restore_at: SimTime,
}

/// A named failure domain: the set of GPUs and whole shards that fail
/// *together* when the domain (a rack, a power feed, a top-of-rack
/// switch) goes out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDomain {
    /// Human-readable domain name (`"rack0"`, `"pdu-b"`, ...).
    pub name: String,
    /// `(shard, gpu)` lanes the domain powers.
    pub gpus: Vec<(usize, usize)>,
    /// Whole shards the domain takes out (routing-level failure).
    pub shards: Vec<usize>,
}

/// Maps GPUs/shards to rack/power failure domains, so correlated events
/// can be expressed once and expanded to simultaneous per-GPU/per-shard
/// timelines through the ordinary injection path.
///
/// # Examples
///
/// ```
/// use inference_faults::{FaultPlan, FaultTopology};
///
/// // Two shards of 2 GPUs each, racked pairwise: rack0 = shard 0,
/// // rack1 = shard 1.
/// let topo = FaultTopology::racks(&[2, 2], 2);
/// assert_eq!(topo.domains().len(), 2);
/// let plan = FaultPlan::new().with_domain_outage(&topo, "rack0", 0.5, 1.5);
/// assert_eq!(plan.gpu_outages().len(), 2); // both of rack0's GPUs die together
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultTopology {
    domains: Vec<FaultDomain>,
}

impl FaultTopology {
    /// An empty topology.
    #[must_use]
    pub fn new() -> Self {
        FaultTopology::default()
    }

    /// Adds a named domain covering the given GPU lanes and whole shards.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or the domain is empty.
    #[must_use]
    pub fn with_domain(mut self, name: &str, gpus: &[(usize, usize)], shards: &[usize]) -> Self {
        assert!(
            self.domains.iter().all(|d| d.name != name),
            "duplicate fault domain {name:?}"
        );
        assert!(
            !gpus.is_empty() || !shards.is_empty(),
            "fault domain {name:?} covers nothing"
        );
        self.domains.push(FaultDomain {
            name: name.to_string(),
            gpus: gpus.to_vec(),
            shards: shards.to_vec(),
        });
        self
    }

    /// The rack layout used by the resilience scenarios: shard GPU lanes
    /// are packed in order into racks of `gpus_per_rack`, named
    /// `"rack0"`, `"rack1"`, ... A rack may span shards.
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_rack` is zero.
    #[must_use]
    pub fn racks(shard_gpus: &[usize], gpus_per_rack: usize) -> Self {
        assert!(gpus_per_rack > 0, "racks need at least one GPU slot");
        let mut topo = FaultTopology::new();
        let mut current: Vec<(usize, usize)> = Vec::new();
        for (shard, &gpus) in shard_gpus.iter().enumerate() {
            for gpu in 0..gpus {
                current.push((shard, gpu));
                if current.len() == gpus_per_rack {
                    let name = format!("rack{}", topo.domains.len());
                    topo = topo.with_domain(&name, &current, &[]);
                    current.clear();
                }
            }
        }
        if !current.is_empty() {
            let name = format!("rack{}", topo.domains.len());
            topo = topo.with_domain(&name, &current, &[]);
        }
        topo
    }

    /// The domains, in insertion order.
    #[must_use]
    pub fn domains(&self) -> &[FaultDomain] {
        &self.domains
    }

    /// Looks a domain up by name.
    #[must_use]
    pub fn domain(&self, name: &str) -> Option<&FaultDomain> {
        self.domains.iter().find(|d| d.name == name)
    }
}

/// The tumbling-window width of the degraded/healthy tail split and the
/// recovery padding appended to each outage interval — matched to the
/// trajectory benches' 250 ms `reconfig_dip` window so the two spike
/// statistics stay comparable.
pub const DEGRADED_WINDOW_NS: u64 = 250_000_000;

/// A deterministic, seedable fault scenario: explicit and/or sampled
/// outage windows plus the recovery knobs. Compiles to the cluster's
/// executable [`FaultTimeline`].
///
/// Outages always come in fail/repair **pairs**, which is what makes the
/// conservation contract unconditional: a group that a failure left dark
/// stashes its arrivals, and the paired repair is the event that brings
/// instances back to serve them.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    gpu_outages: Vec<GpuOutage>,
    shard_outages: Vec<ShardOutage>,
    gpu_degrades: Vec<GpuDegrade>,
    cost: ResliceCostModel,
    mode: ReconfigMode,
}

impl FaultPlan {
    /// The empty plan (A100 recovery cost model, rolling staging — the
    /// workspace default) — a run under it is bit-for-bit the fault-free
    /// run.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan {
            gpu_outages: Vec::new(),
            shard_outages: Vec::new(),
            gpu_degrades: Vec::new(),
            cost: ResliceCostModel::a100_default(),
            mode: ReconfigMode::Rolling,
        }
    }

    /// Samples a GPU-failure scenario from exponential MTTF/MTTR:
    /// `shard_gpus[s]` is shard `s`'s GPU count, and each (shard, GPU)
    /// lane alternates Exp(`mttf_s`) up-time with Exp(`mttr_s`) repair
    /// time, independently seeded (`seed` ⊕ lane), until `horizon_s`.
    /// Fully deterministic for a given seed; repairs may land past the
    /// horizon (they still execute, so conservation holds).
    ///
    /// # Panics
    ///
    /// Panics if any of the times is not positive and finite.
    #[must_use]
    pub fn sample_gpu_mttf(
        shard_gpus: &[usize],
        mttf_s: f64,
        mttr_s: f64,
        horizon_s: f64,
        seed: u64,
    ) -> Self {
        for (name, v) in [("mttf", mttf_s), ("mttr", mttr_s), ("horizon", horizon_s)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive");
        }
        let mut plan = FaultPlan::new();
        for (shard, &gpus) in shard_gpus.iter().enumerate() {
            for gpu in 0..gpus {
                let lane = ((shard as u64) << 32) | gpu as u64;
                let mut rng = StdRng::seed_from_u64(seed ^ lane.wrapping_mul(LANE_SALT));
                let mut t = exp_sample(mttf_s, &mut rng);
                while t < horizon_s {
                    let repair = t + exp_sample(mttr_s, &mut rng);
                    plan.gpu_outages.push(GpuOutage {
                        shard,
                        gpu,
                        fail_at: secs(t),
                        repair_at: secs(repair),
                    });
                    t = repair + exp_sample(mttf_s, &mut rng);
                }
            }
        }
        plan
    }

    /// Adds one explicit GPU outage (`fail_s`/`repair_s` in simulated
    /// seconds).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fail < repair` (finite), or if the window
    /// overlaps an existing outage of the same GPU.
    #[must_use]
    pub fn with_gpu_outage(mut self, shard: usize, gpu: usize, fail_s: f64, repair_s: f64) -> Self {
        assert_window(fail_s, repair_s);
        let (fail_at, repair_at) = (secs(fail_s), secs(repair_s));
        assert!(
            !self.gpu_outages.iter().any(|o| o.shard == shard
                && o.gpu == gpu
                && fail_at < o.repair_at
                && o.fail_at < repair_at),
            "overlapping outage for shard {shard} gpu {gpu}"
        );
        self.gpu_outages.push(GpuOutage {
            shard,
            gpu,
            fail_at,
            repair_at,
        });
        self
    }

    /// Adds one explicit whole-shard outage.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fail < repair` (finite), or if the window
    /// overlaps an existing outage of the same shard.
    #[must_use]
    pub fn with_shard_outage(mut self, shard: usize, fail_s: f64, repair_s: f64) -> Self {
        assert_window(fail_s, repair_s);
        let (fail_at, repair_at) = (secs(fail_s), secs(repair_s));
        assert!(
            !self
                .shard_outages
                .iter()
                .any(|o| o.shard == shard && fail_at < o.repair_at && o.fail_at < repair_at),
            "overlapping outage for shard {shard}"
        );
        self.shard_outages.push(ShardOutage {
            shard,
            fail_at,
            repair_at,
        });
        self
    }

    /// Adds one partial-degradation window: the instances packed on
    /// `(shard, gpu)` run `factor`× slower between `from_s` and `to_s`.
    /// A factor of exactly 1.0 is a recorded no-op — the run stays
    /// bit-for-bit the fault-free run (the degenerate case the property
    /// suite pins).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ from < to` (finite) and `factor` is finite and
    /// ≥ 1.0, or if the window overlaps an existing degrade of the same
    /// GPU.
    #[must_use]
    pub fn with_gpu_degrade(
        mut self,
        shard: usize,
        gpu: usize,
        factor: f64,
        from_s: f64,
        to_s: f64,
    ) -> Self {
        assert_window(from_s, to_s);
        assert!(
            factor.is_finite() && factor >= 1.0,
            "degrade factor must be finite and >= 1.0, got {factor}"
        );
        let (degrade_at, restore_at) = (secs(from_s), secs(to_s));
        assert!(
            !self.gpu_degrades.iter().any(|d| d.shard == shard
                && d.gpu == gpu
                && degrade_at < d.restore_at
                && d.degrade_at < restore_at),
            "overlapping degrade for shard {shard} gpu {gpu}"
        );
        self.gpu_degrades.push(GpuDegrade {
            shard,
            gpu,
            factor,
            degrade_at,
            restore_at,
        });
        self
    }

    /// Adds one correlated domain outage: every GPU lane and every whole
    /// shard of `topo`'s domain `name` fails at `fail_s` and repairs at
    /// `repair_s`, simultaneously, through the ordinary per-GPU/per-shard
    /// injection path.
    ///
    /// # Panics
    ///
    /// Panics if the domain is unknown, or if any expanded window overlaps
    /// an existing outage of the same GPU/shard (domains sharing members
    /// must not be scheduled over the same interval).
    #[must_use]
    pub fn with_domain_outage(
        mut self,
        topo: &FaultTopology,
        name: &str,
        fail_s: f64,
        repair_s: f64,
    ) -> Self {
        let domain = topo
            .domain(name)
            .unwrap_or_else(|| panic!("unknown fault domain {name:?}"));
        for &(shard, gpu) in &domain.gpus {
            self = self.with_gpu_outage(shard, gpu, fail_s, repair_s);
        }
        for &shard in &domain.shards {
            self = self.with_shard_outage(shard, fail_s, repair_s);
        }
        self
    }

    /// Samples correlated domain failures from exponential MTTF/MTTR: each
    /// domain of `topo` alternates Exp(`mttf_s`) up-time with Exp(`mttr_s`)
    /// repair time on its own decorrelated lane, and every sampled window
    /// expands to the domain's full membership (all its GPUs and shards go
    /// out together). Fully deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if any of the times is not positive and finite, or if two
    /// domains sharing a member draw overlapping windows (keep sampled
    /// topologies disjoint).
    #[must_use]
    pub fn sample_domain_mttf(
        topo: &FaultTopology,
        mttf_s: f64,
        mttr_s: f64,
        horizon_s: f64,
        seed: u64,
    ) -> Self {
        for (name, v) in [("mttf", mttf_s), ("mttr", mttr_s), ("horizon", horizon_s)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive");
        }
        let mut plan = FaultPlan::new();
        for (idx, domain) in topo.domains().iter().enumerate() {
            // Domain lanes live in a separate id space from the per-GPU
            // lanes of `sample_gpu_mttf`, so mixing both samplers in one
            // scenario stays decorrelated.
            let lane = (1u64 << 48) | idx as u64;
            let mut rng = StdRng::seed_from_u64(seed ^ lane.wrapping_mul(LANE_SALT));
            let mut t = exp_sample(mttf_s, &mut rng);
            while t < horizon_s {
                let repair = t + exp_sample(mttr_s, &mut rng);
                plan = plan.with_domain_outage(topo, &domain.name, t, repair);
                t = repair + exp_sample(mttf_s, &mut rng);
            }
        }
        plan
    }

    /// Overrides the recovery reslice cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: ResliceCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the staging mode of recovery re-plans.
    #[must_use]
    pub fn with_mode(mut self, mode: ReconfigMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpu_outages.is_empty() && self.shard_outages.is_empty() && self.gpu_degrades.is_empty()
    }

    /// The planned GPU outages, in insertion order.
    #[must_use]
    pub fn gpu_outages(&self) -> &[GpuOutage] {
        &self.gpu_outages
    }

    /// The planned shard outages, in insertion order.
    #[must_use]
    pub fn shard_outages(&self) -> &[ShardOutage] {
        &self.shard_outages
    }

    /// The planned partial-degradation windows, in insertion order.
    #[must_use]
    pub fn gpu_degrades(&self) -> &[GpuDegrade] {
        &self.gpu_degrades
    }

    /// Compiles the plan to the cluster's executable, time-sorted
    /// [`FaultTimeline`].
    #[must_use]
    pub fn compile(&self) -> FaultTimeline {
        let mut events =
            Vec::with_capacity(2 * (self.gpu_outages.len() + self.shard_outages.len()));
        for o in &self.gpu_outages {
            events.push((
                o.fail_at,
                FaultEvent::GpuFail {
                    shard: o.shard,
                    gpu: o.gpu,
                },
            ));
            events.push((
                o.repair_at,
                FaultEvent::GpuRepair {
                    shard: o.shard,
                    gpu: o.gpu,
                },
            ));
        }
        for o in &self.shard_outages {
            events.push((o.fail_at, FaultEvent::ShardFail { shard: o.shard }));
            events.push((o.repair_at, FaultEvent::ShardRepair { shard: o.shard }));
        }
        for d in &self.gpu_degrades {
            events.push((
                d.degrade_at,
                FaultEvent::GpuDegrade {
                    shard: d.shard,
                    gpu: d.gpu,
                    factor_milli: factor_milli(d.factor),
                },
            ));
            events.push((
                d.restore_at,
                FaultEvent::GpuRestore {
                    shard: d.shard,
                    gpu: d.gpu,
                },
            ));
        }
        FaultTimeline::new(events)
            .with_cost(self.cost)
            .with_mode(self.mode)
    }

    /// The degraded intervals this plan implies — each outage or
    /// slow-GPU window padded by one [`DEGRADED_WINDOW_NS`] of recovery
    /// (the reslice and backlog drain after a repair still hurt the
    /// tail), as inclusive `(start_ns, end_ns)` pairs for
    /// [`WindowedTail::worst_percentile_ms_within`].
    #[must_use]
    pub fn degraded_intervals_ns(&self) -> Vec<(u64, u64)> {
        self.gpu_outages
            .iter()
            .map(|o| (o.fail_at.as_nanos(), o.repair_at.as_nanos()))
            .chain(
                self.shard_outages
                    .iter()
                    .map(|o| (o.fail_at.as_nanos(), o.repair_at.as_nanos())),
            )
            .chain(
                self.gpu_degrades
                    .iter()
                    .map(|d| (d.degrade_at.as_nanos(), d.restore_at.as_nanos())),
            )
            .map(|(a, b)| (a, b.saturating_add(DEGRADED_WINDOW_NS)))
            .collect()
    }

    /// GPU-seconds spent in partial-degradation windows (each slow GPU
    /// counts as one GPU for its window, regardless of factor). Degraded
    /// capacity stays *online* — it never enters the availability
    /// integrals — so this is the companion statistic.
    #[must_use]
    pub fn degrade_gpu_seconds(&self) -> f64 {
        self.gpu_degrades
            .iter()
            .map(|d| (d.restore_at.as_nanos() - d.degrade_at.as_nanos()) as f64 / 1e9)
            .sum()
    }
}

/// The fixed-point encoding carried by [`FaultEvent::GpuDegrade`] (the
/// cluster event stays `Copy + Eq`): thousandths of the multiplier.
fn factor_milli(factor: f64) -> u32 {
    (factor * 1000.0).round() as u32
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

/// Splitmix-style lane multiplier decorrelating per-GPU sampling streams.
const LANE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

fn secs(s: f64) -> SimTime {
    SimTime::from_nanos((s * 1e9).round() as u64)
}

fn assert_window(fail_s: f64, repair_s: f64) {
    assert!(
        fail_s.is_finite() && repair_s.is_finite() && 0.0 <= fail_s && fail_s < repair_s,
        "need 0 <= fail < repair, got [{fail_s}, {repair_s}]"
    );
}

/// One exponential draw with the given mean (inverse-CDF over the shim's
/// uniform `[0, 1)`; `1 − u ∈ (0, 1]` keeps the log finite).
fn exp_sample(mean_s: f64, rng: &mut StdRng) -> f64 {
    -mean_s * (1.0 - rng.gen::<f64>()).ln()
}

/// Everything measured during one faulted cluster run: the ordinary
/// [`ClusterReport`] plus the availability accounting.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The underlying cluster run (per-shard reports, loans, fault log).
    pub cluster: ClusterReport,
    /// Time-averaged fraction of the fleet's **owned** serving GPUs that
    /// were online over the run (1.0 for an empty plan). A drained shard
    /// counts as offline from its fail instant — it serves backlog but
    /// takes no new traffic.
    pub base_availability: f64,
    /// Same integral, crediting batch-pool loans as backfill (capped at
    /// 1.0 per instant): **the capacity story loan-assisted recovery
    /// improves** — the pool covers the hole while the hardware is out.
    pub effective_availability: f64,
    /// GPU-seconds of owned capacity lost to outages (the raw integral
    /// behind [`base_availability`](Self::base_availability)).
    pub outage_gpu_seconds: f64,
    /// Queries faults ripped off killed instances and requeued.
    pub requeued: u64,
    /// Worst [`DEGRADED_WINDOW_NS`] tumbling-window p99 (ms) over
    /// completions in the **degraded** intervals (outages + one recovery
    /// window) — the recovery dip. `None` under
    /// [`ReportDetail::Summary`] (needs per-query completion times) or
    /// when no completion landed in a degraded window.
    pub degraded_p99_ms: Option<f64>,
    /// The healthy counterpart: worst window p99 outside every degraded
    /// interval. `None` under summary detail.
    pub healthy_p99_ms: Option<f64>,
    /// GPU-seconds spent in partial-degradation (slow-GPU) windows —
    /// capacity that stayed online but throttled, so it is *not* part of
    /// [`outage_gpu_seconds`](Self::outage_gpu_seconds).
    pub degrade_gpu_seconds: f64,
    /// Queries the brownout admission controller rejected, total. Zero
    /// without a [`ShedPolicy`](inference_cluster::ShedPolicy). Invariant
    /// 10: offered = served + shed, exactly.
    pub shed_total: u64,
    /// Shed counts bucketed by priority class (index = class; empty when
    /// the cluster has no shed policy). Class 0 is premium and is never
    /// shed, so `shed_per_class[0] == 0` always.
    pub shed_per_class: Vec<u64>,
    /// Served (admitted and completed) counts bucketed by priority class
    /// — with [`shed_per_class`](Self::shed_per_class), the per-class
    /// goodput story. Empty when the cluster has no shed policy.
    pub served_per_class: Vec<u64>,
}

impl FaultReport {
    /// Worst per-shard × model exact SLA violation rate — under failure,
    /// the headline SLA number.
    #[must_use]
    pub fn worst_violation_rate(&self) -> f64 {
        self.cluster.worst_violation_rate()
    }

    /// Goodput: queries actually served per second of makespan (shed
    /// queries do not count).
    #[must_use]
    pub fn goodput_qps(&self) -> f64 {
        self.cluster.achieved_qps
    }
}

/// Runs `cluster` over `arrivals` (optionally shard-pinned — see
/// [`PinnedQuery`]) under `plan`, and computes the availability and
/// degraded-tail statistics. An empty plan reproduces
/// [`Cluster::run_stream`] bit-for-bit with availability 1.0.
#[must_use]
pub fn run_with_faults<I>(
    cluster: &Cluster,
    arrivals: I,
    detail: ReportDetail,
    plan: &FaultPlan,
) -> FaultReport
where
    I: IntoIterator<Item = PinnedQuery>,
{
    let timeline = plan.compile();
    let report = cluster.run_scenario(arrivals, detail, &timeline);
    assemble_fault_report(cluster, report, detail, plan)
}

/// [`run_with_faults`] with an explicit [`SyncWindow`] mode and lane
/// worker thread count — the entry point scenario benches use to compare
/// per-event and lookahead synchronization, or to pin a thread count
/// independent of `CLUSTER_THREADS`. For a fixed window mode the result
/// is bit-for-bit identical at any thread count (invariant 11).
#[must_use]
pub fn run_with_faults_windowed<I>(
    cluster: &Cluster,
    arrivals: I,
    detail: ReportDetail,
    plan: &FaultPlan,
    window: SyncWindow,
    threads: usize,
) -> FaultReport
where
    I: IntoIterator<Item = PinnedQuery>,
{
    let timeline = plan.compile();
    let report = cluster.run_windowed(arrivals, detail, &timeline, window, threads);
    assemble_fault_report(cluster, report, detail, plan)
}

/// [`run_with_faults`] with the flight recorder attached: the run also
/// returns the merged [`QueryTrace`](inference_obs::QueryTrace) covering
/// every query lifecycle plus the routing, loan and fault annotations.
///
/// Invariant 12 (zero observer effect): the [`FaultReport`] is bit-for-bit
/// the untraced one — the availability assembly is pure post-processing of
/// an identical cluster run.
#[must_use]
pub fn run_with_faults_traced<I>(
    cluster: &Cluster,
    arrivals: I,
    detail: ReportDetail,
    plan: &FaultPlan,
) -> (FaultReport, inference_obs::QueryTrace)
where
    I: IntoIterator<Item = PinnedQuery>,
{
    run_with_faults_windowed_traced(
        cluster,
        arrivals,
        detail,
        plan,
        SyncWindow::PerEvent,
        inference_cluster::cluster_threads_from_env(),
    )
}

/// [`run_with_faults_windowed`] with the flight recorder attached — the
/// traced twin, with an explicit [`SyncWindow`] mode and thread count.
#[must_use]
pub fn run_with_faults_windowed_traced<I>(
    cluster: &Cluster,
    arrivals: I,
    detail: ReportDetail,
    plan: &FaultPlan,
    window: SyncWindow,
    threads: usize,
) -> (FaultReport, inference_obs::QueryTrace)
where
    I: IntoIterator<Item = PinnedQuery>,
{
    let timeline = plan.compile();
    let (report, trace) = cluster.run_windowed_traced(arrivals, detail, &timeline, window, threads);
    (assemble_fault_report(cluster, report, detail, plan), trace)
}

/// [`run_with_faults_windowed`] with the **online telemetry plane**
/// attached: the run also returns the live
/// [`MetricRegistry`](inference_obs::MetricRegistry) streamed on a
/// `online_window_ns` grid — no trace retention. Invariants 12 and 13
/// both hold: the report is bit-for-bit the unobserved one, and the
/// registry equals `MetricRegistry::from_trace` of the same run's trace.
#[must_use]
pub fn run_with_faults_windowed_observed<I>(
    cluster: &Cluster,
    arrivals: I,
    detail: ReportDetail,
    plan: &FaultPlan,
    window: SyncWindow,
    threads: usize,
    online_window_ns: u64,
) -> (FaultReport, inference_obs::MetricRegistry)
where
    I: IntoIterator<Item = PinnedQuery>,
{
    let timeline = plan.compile();
    let (report, registry) = cluster.run_windowed_observed(
        arrivals,
        detail,
        &timeline,
        window,
        threads,
        online_window_ns,
    );
    (
        assemble_fault_report(cluster, report, detail, plan),
        registry,
    )
}

/// [`run_with_faults_windowed`] with **both** observability planes
/// attached — the entry point `trace_report --slo` and the invariant-13
/// checks use to compare the live registry against the trace oracle and
/// to pair fired alerts with causal attribution.
#[must_use]
pub fn run_with_faults_windowed_instrumented<I>(
    cluster: &Cluster,
    arrivals: I,
    detail: ReportDetail,
    plan: &FaultPlan,
    window: SyncWindow,
    threads: usize,
    online_window_ns: u64,
) -> (
    FaultReport,
    inference_obs::QueryTrace,
    inference_obs::MetricRegistry,
)
where
    I: IntoIterator<Item = PinnedQuery>,
{
    let timeline = plan.compile();
    let (report, trace, registry) = cluster.run_windowed_instrumented(
        arrivals,
        detail,
        &timeline,
        window,
        threads,
        online_window_ns,
    );
    (
        assemble_fault_report(cluster, report, detail, plan),
        trace,
        registry,
    )
}

/// The availability / degraded-tail / per-class post-processing shared by
/// every fault entry point: pure bookkeeping over an already-finished
/// cluster run, so the sync mode that produced the run cannot affect it.
fn assemble_fault_report(
    cluster: &Cluster,
    report: ClusterReport,
    detail: ReportDetail,
    plan: &FaultPlan,
) -> FaultReport {
    let shard_gpus: Vec<usize> = cluster
        .shards()
        .iter()
        .map(|s| s.budget().num_gpus)
        .collect();
    let total_base: usize = shard_gpus.iter().sum();
    let horizon_ns = report.makespan.as_nanos();

    let loans: Vec<(u64, i64)> = report
        .loans
        .iter()
        .map(|l| (l.at.as_nanos(), l.gpus_delta))
        .collect();
    let (base_online, effective_online) = capacity_integrals(&shard_gpus, horizon_ns, plan, &loans);
    let denom = total_base as f64 * horizon_ns as f64;
    let (base_availability, effective_availability, outage_gpu_seconds) = if denom > 0.0 {
        (
            base_online as f64 / denom,
            effective_online as f64 / denom,
            (denom - base_online as f64) / 1e9,
        )
    } else {
        (1.0, 1.0, 0.0)
    };

    let degraded = plan.degraded_intervals_ns();
    let (degraded_p99_ms, healthy_p99_ms) = if detail == ReportDetail::Full {
        let mut tail = WindowedTail::new(DEGRADED_WINDOW_NS);
        for r in report.per_shard.iter().flat_map(|s| &s.records) {
            tail.record(r.completed.as_nanos(), r.latency().as_nanos());
        }
        let d = tail.worst_percentile_ms_within(0.99, 1, &degraded);
        let h = tail.worst_percentile_ms_outside(0.99, 1, &degraded);
        ((d > 0.0).then_some(d), Some(h))
    } else {
        (None, None)
    };

    let requeued = report.faults.iter().map(|f| f.requeued).sum();
    let shed_total = report.shed_per_model.iter().sum();
    let (shed_per_class, served_per_class) = match cluster.shed() {
        Some(policy) => {
            let classes = policy.classes();
            let n_classes = classes.iter().copied().max().unwrap_or(0) + 1;
            let mut shed = vec![0u64; n_classes];
            let mut served = vec![0u64; n_classes];
            for (m, &class) in classes.iter().enumerate() {
                shed[class] += report.shed_per_model.get(m).copied().unwrap_or(0);
                served[class] += report
                    .per_shard
                    .iter()
                    .map(|s| s.per_model.get(m).map_or(0, |pm| pm.completed))
                    .sum::<u64>();
            }
            (shed, served)
        }
        None => (Vec::new(), Vec::new()),
    };
    FaultReport {
        cluster: report,
        base_availability,
        effective_availability,
        outage_gpu_seconds,
        requeued,
        degraded_p99_ms,
        healthy_p99_ms,
        degrade_gpu_seconds: plan.degrade_gpu_seconds(),
        shed_total,
        shed_per_class,
        served_per_class,
    }
}

/// One capacity-changing instant of the availability sweep.
enum CapEvent {
    GpuDown(usize),
    GpuUp(usize),
    ShardDown(usize),
    ShardUp(usize),
    Loan(i64),
}

/// Integrals of online serving capacity over `[0, horizon_ns]`, exact
/// per shard: a drained shard's GPUs count offline **once**, whether or
/// not some of them are also individually failed (GPU and shard outages
/// on the same shard compose by max, never by sum). Returns
/// `(base, effective)` where the effective side adds batch-pool loans,
/// clamped to `[0, total]` (backfill does not raise availability past 1,
/// and capacity is never negative).
fn capacity_integrals(
    shard_gpus: &[usize],
    horizon_ns: u64,
    plan: &FaultPlan,
    loans: &[(u64, i64)],
) -> (u128, u128) {
    let total = shard_gpus.iter().sum::<usize>() as i64;
    let mut events: Vec<(u64, CapEvent)> = Vec::new();
    for o in plan.gpu_outages() {
        events.push((o.fail_at.as_nanos(), CapEvent::GpuDown(o.shard)));
        events.push((o.repair_at.as_nanos(), CapEvent::GpuUp(o.shard)));
    }
    for o in plan.shard_outages() {
        events.push((o.fail_at.as_nanos(), CapEvent::ShardDown(o.shard)));
        events.push((o.repair_at.as_nanos(), CapEvent::ShardUp(o.shard)));
    }
    for &(t, d) in loans {
        events.push((t, CapEvent::Loan(d)));
    }
    // Same-instant ordering is irrelevant to an integral (zero width).
    events.sort_by_key(|&(t, _)| t);

    let mut failed = vec![0usize; shard_gpus.len()];
    let mut down = vec![0usize; shard_gpus.len()]; // nested shard outages tolerated
    let mut borrowed = 0i64;
    let mut prev = 0u64;
    let (mut base, mut effective) = (0u128, 0u128);
    let mut add_segment =
        |until: u64, prev: &mut u64, failed: &[usize], down: &[usize], borrowed: i64| {
            let until = until.min(horizon_ns);
            if until <= *prev {
                return;
            }
            let offline: usize = shard_gpus
                .iter()
                .zip(failed.iter().zip(down))
                .map(|(&gpus, (&f, &d))| if d > 0 { gpus } else { f.min(gpus) })
                .sum();
            let online = total - offline as i64;
            let width = u128::from(until - *prev);
            base += width * online.clamp(0, total) as u128;
            effective += width * (online + borrowed).clamp(0, total) as u128;
            *prev = until;
        };
    for (t, ev) in events {
        add_segment(t, &mut prev, &failed, &down, borrowed);
        match ev {
            CapEvent::GpuDown(s) => {
                if let Some(f) = failed.get_mut(s) {
                    *f += 1;
                }
            }
            CapEvent::GpuUp(s) => {
                if let Some(f) = failed.get_mut(s) {
                    *f = f.saturating_sub(1);
                }
            }
            CapEvent::ShardDown(s) => {
                if let Some(d) = down.get_mut(s) {
                    *d += 1;
                }
            }
            CapEvent::ShardUp(s) => {
                if let Some(d) = down.get_mut(s) {
                    *d = d.saturating_sub(1);
                }
            }
            CapEvent::Loan(d) => borrowed += d,
        }
    }
    add_segment(horizon_ns, &mut prev, &failed, &down, borrowed);
    (base, effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use inference_cluster::{LoanPolicy, RouterPolicy};
    use inference_server::{ModelSpec, MultiModelConfig, MultiModelServer, MultiRunReport};
    use inference_workload::{
        BatchDistribution, DriftDetectorConfig, MultiTraceGenerator, PhaseSpec, TaggedQuerySpec,
    };
    use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    use paris_core::{GpcBudget, ProfileTable};

    fn table() -> ProfileTable {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn shard(gpus: usize, table: &ProfileTable, dist: &BatchDistribution) -> MultiModelServer {
        MultiModelServer::new(
            vec![ModelSpec::new("mobilenet", table.clone(), dist.clone())],
            GpcBudget::new(gpus * 7, gpus),
            MultiModelConfig::new(),
        )
        .expect("plan builds")
    }

    /// The offered rate loading roughly `demand_gpus` full-GPU
    /// equivalents of this shard at planned efficiency.
    fn rate_for_demand(server: &MultiModelServer, demand_gpus: f64) -> f64 {
        demand_gpus * server.capacity_hint_qps() / server.budget().num_gpus as f64
    }

    fn steady_trace(
        server: &MultiModelServer,
        demand: f64,
        secs: f64,
        seed: u64,
    ) -> Vec<TaggedQuerySpec> {
        let dist = BatchDistribution::paper_default();
        MultiTraceGenerator::new(
            vec![PhaseSpec::new(
                secs,
                vec![(rate_for_demand(server, demand), dist)],
            )],
            seed,
        )
        .generate()
    }

    fn unpinned(trace: &[TaggedQuerySpec]) -> impl Iterator<Item = PinnedQuery> + '_ {
        trace.iter().copied().map(|tq| (None, tq))
    }

    fn assert_conserved(report: &ClusterReport, trace: &[TaggedQuerySpec]) {
        let completed: usize = report.per_shard.iter().map(|r| r.records.len()).sum();
        assert_eq!(completed, trace.len(), "nothing dropped, nothing invented");
        for (s, shard_report) in report.per_shard.iter().enumerate() {
            let mut ids: Vec<u64> = shard_report.records.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                shard_report.records.len(),
                "shard {s} double-served a query"
            );
        }
    }

    fn assert_shard_reports_identical(a: &MultiRunReport, b: &MultiRunReport) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.record_models, b.record_models);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.partition_utilization, b.partition_utilization);
        assert_eq!(a.partition_sizes, b.partition_sizes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.achieved_qps, b.achieved_qps);
        assert_eq!(a.reconfigs, b.reconfigs);
    }

    #[test]
    fn empty_plan_reproduces_the_fault_free_run_bit_for_bit() {
        let t = table();
        let dist = BatchDistribution::paper_default();
        let cluster = Cluster::new(
            vec![shard(2, &t, &dist), shard(1, &t, &dist)],
            RouterPolicy::JoinShortestQueue,
        );
        let s0 = &cluster.shards()[0];
        let trace = steady_trace(s0, 1.2, 1.0, 17);
        let plain = cluster.run_stream(trace.iter().copied(), ReportDetail::Full);
        let faulted = run_with_faults(
            &cluster,
            unpinned(&trace),
            ReportDetail::Full,
            &FaultPlan::new(),
        );
        assert_eq!(faulted.base_availability, 1.0);
        assert_eq!(faulted.effective_availability, 1.0);
        assert_eq!(faulted.outage_gpu_seconds, 0.0);
        assert_eq!(faulted.requeued, 0);
        assert!(
            faulted.degraded_p99_ms.is_none(),
            "no degraded window exists"
        );
        assert!(faulted.cluster.faults.is_empty());
        assert_eq!(faulted.cluster.routed, plain.routed);
        assert_eq!(faulted.cluster.makespan, plain.makespan);
        for (a, b) in faulted.cluster.per_shard.iter().zip(&plain.per_shard) {
            assert_shard_reports_identical(a, b);
        }
    }

    #[test]
    fn gpu_outage_degrades_availability_and_conserves_queries() {
        let t = table();
        let dist = BatchDistribution::paper_default();
        let cluster = Cluster::new(vec![shard(2, &t, &dist)], RouterPolicy::JoinShortestQueue);
        let trace = steady_trace(&cluster.shards()[0], 1.2, 3.0, 19);
        let plan = FaultPlan::new().with_gpu_outage(0, 0, 0.5, 1.5);
        let report = run_with_faults(&cluster, unpinned(&trace), ReportDetail::Full, &plan);
        assert_conserved(&report.cluster, &trace);
        // One of two GPUs out for ~1 s of a ~3 s run: availability ≈ 5/6.
        assert!(
            (0.75..0.95).contains(&report.base_availability),
            "{}",
            report.base_availability
        );
        assert!(report.outage_gpu_seconds > 0.9 && report.outage_gpu_seconds < 1.1);
        assert!(report.requeued > 0, "a loaded GPU had work to requeue");
        assert_eq!(report.cluster.faults.len(), 2);
        // Fail and repair each re-planned the shard.
        assert!(report.cluster.total_reconfigs() >= 2);
        // The degraded windows hold the spike; they are worse than the
        // healthy ones.
        let degraded = report
            .degraded_p99_ms
            .expect("outage windows saw completions");
        let healthy = report.healthy_p99_ms.expect("full detail");
        assert!(
            degraded > healthy,
            "outage must show up in the degraded tail: {degraded} vs {healthy}"
        );
    }

    #[test]
    fn loan_backfill_raises_effective_availability_and_cuts_violations() {
        // The headline recovery claim: under the same GPU outage, a
        // batch pool that lends replacement capacity beats the loanless
        // cluster on both availability and SLA attainment.
        let t = table();
        let dist = BatchDistribution::paper_default();
        let mk = |loan: bool| {
            let c = Cluster::new(
                vec![shard(2, &t, &dist), shard(2, &t, &dist)],
                RouterPolicy::JoinShortestQueue,
            );
            if loan {
                c.with_loan(
                    LoanPolicy::new(2, 0.25)
                        .with_detector(DriftDetectorConfig::new(0.25).with_min_observations(20)),
                )
            } else {
                c
            }
        };
        let cluster = mk(false);
        let fleet_rate = 0.65
            * cluster
                .shards()
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace = MultiTraceGenerator::new(
            vec![PhaseSpec::new(4.0, vec![(fleet_rate, dist.clone())])],
            29,
        )
        .generate();
        let plan = FaultPlan::new().with_gpu_outage(0, 0, 0.8, 3.0);
        let bare = run_with_faults(&mk(false), unpinned(&trace), ReportDetail::Full, &plan);
        let loaned = run_with_faults(&mk(true), unpinned(&trace), ReportDetail::Full, &plan);
        assert_conserved(&bare.cluster, &trace);
        assert_conserved(&loaned.cluster, &trace);
        assert!(
            !loaned.cluster.loans.is_empty(),
            "the outage must trigger a backfill loan"
        );
        assert!(
            loaned.effective_availability > bare.effective_availability,
            "backfill must raise effective availability: {} vs {}",
            loaned.effective_availability,
            bare.effective_availability
        );
        assert_eq!(
            loaned.base_availability, bare.base_availability,
            "owned-hardware availability is scenario-determined"
        );
        assert!(
            loaned.worst_violation_rate() < bare.worst_violation_rate(),
            "backfill must cut violations: {} vs {}",
            loaned.worst_violation_rate(),
            bare.worst_violation_rate()
        );
    }

    #[test]
    fn mttf_sampling_is_deterministic_and_well_formed() {
        let a = FaultPlan::sample_gpu_mttf(&[4, 2], 2.0, 0.5, 10.0, 77);
        let b = FaultPlan::sample_gpu_mttf(&[4, 2], 2.0, 0.5, 10.0, 77);
        assert_eq!(a.gpu_outages(), b.gpu_outages(), "seeded: identical plans");
        assert!(
            !a.is_empty(),
            "10 s at 2 s MTTF over 6 GPUs must fail something"
        );
        for o in a.gpu_outages() {
            assert!(o.fail_at < o.repair_at);
            assert!(o.shard < 2);
            assert!(o.gpu < 4);
        }
        // Per-lane outages never overlap (alternating up/down times).
        for (i, o1) in a.gpu_outages().iter().enumerate() {
            for o2 in &a.gpu_outages()[i + 1..] {
                if o1.shard == o2.shard && o1.gpu == o2.gpu {
                    assert!(o1.repair_at <= o2.fail_at || o2.repair_at <= o1.fail_at);
                }
            }
        }
        // A different seed gives a different draw.
        let c = FaultPlan::sample_gpu_mttf(&[4, 2], 2.0, 0.5, 10.0, 78);
        assert_ne!(a.gpu_outages(), c.gpu_outages());
    }

    #[test]
    fn availability_integral_matches_hand_computation() {
        // One shard of 4 GPUs, horizon 10 ns: one GPU out over [2, 7) →
        // 5 gpu-units lost of 40.
        let one_gpu = FaultPlan::new().with_gpu_outage(0, 0, 2e-9, 7e-9);
        let (base, eff) = capacity_integrals(&[4], 10, &one_gpu, &[]);
        assert_eq!(base, 40 - 5);
        assert_eq!(eff, base, "no loans: effective equals base");
        // Loans cap at the owned total while healthy, and backfill an
        // outage when one is live.
        let (_, eff) = capacity_integrals(&[4], 10, &FaultPlan::new(), &[(1, 2), (9, -2)]);
        assert_eq!(eff, 40);
        let (base, eff) = capacity_integrals(&[4], 10, &one_gpu, &[(3, 1), (7, -1)]);
        assert_eq!(base, 35);
        assert_eq!(eff, 40 - 1, "borrow at t=3 covers the rest of the outage");
        // Events at/after the horizon are ignored.
        let late = FaultPlan::new().with_gpu_outage(0, 0, 12e-9, 13e-9);
        assert_eq!(capacity_integrals(&[4], 10, &late, &[]).0, 40);
    }

    #[test]
    fn overlapping_gpu_and_shard_outages_never_double_count() {
        // Shards [2, 1] GPUs, horizon 10 ns. Shard 0 drains over [1, 3)
        // while its GPU 0 is also individually failed over [2, 4): during
        // the overlap the shard's 2 GPUs are offline ONCE (max, not sum).
        //   [0,1): online 3   [1,3): online 1 (shard 0 down)
        //   [3,4): online 2 (gpu 0 still failed)   [4,10): online 3
        let plan = FaultPlan::new()
            .with_gpu_outage(0, 0, 2e-9, 4e-9)
            .with_shard_outage(0, 1e-9, 3e-9);
        let (base, eff) = capacity_integrals(&[2, 1], 10, &plan, &[]);
        // 1 ns at 3 online + 2 ns at 1 + 1 ns at 2 + 6 ns at 3.
        assert_eq!(base, 3 + 2 + 2 + 18);
        assert_eq!(eff, base);
    }

    #[test]
    #[should_panic(expected = "overlapping outage")]
    fn overlapping_gpu_outages_panic() {
        let _ = FaultPlan::new()
            .with_gpu_outage(0, 0, 0.5, 1.5)
            .with_gpu_outage(0, 0, 1.0, 2.0);
    }
}
