//! Compute/memory resources owned by one MIG partition.

use std::fmt;

use crate::device::DeviceSpec;
use crate::profile_size::ProfileSize;

/// The hardware resources a MIG partition of a given profile owns.
///
/// # Examples
///
/// ```
/// use mig_gpu::{DeviceSpec, PartitionResources, ProfileSize};
///
/// let spec = DeviceSpec::a100();
/// let small = PartitionResources::new(&spec, ProfileSize::G1);
/// let large = PartitionResources::new(&spec, ProfileSize::G7);
/// assert_eq!(small.sms() * 7, large.sms());
/// assert!(large.mem_bandwidth() > small.mem_bandwidth());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionResources {
    size: ProfileSize,
    sms: usize,
    tensor_peak_flops: f64,
    cuda_peak_flops: f64,
    mem_bandwidth: f64,
}

impl PartitionResources {
    /// Derives the resources of a `size` partition on a `spec` device.
    #[must_use]
    pub fn new(spec: &DeviceSpec, size: ProfileSize) -> Self {
        let sms = size.gpcs() * spec.sms_per_gpc;
        PartitionResources {
            size,
            sms,
            tensor_peak_flops: spec.tensor_peak_flops(sms),
            cuda_peak_flops: spec.cuda_peak_flops(sms),
            mem_bandwidth: spec.bw_per_slice() * size.mem_slices() as f64,
        }
    }

    /// The MIG profile of this partition.
    #[must_use]
    pub fn size(&self) -> ProfileSize {
        self.size
    }

    /// Streaming multiprocessors owned.
    #[must_use]
    pub fn sms(&self) -> usize {
        self.sms
    }

    /// Peak dense fp16 tensor-core FLOP/s.
    #[must_use]
    pub fn tensor_peak_flops(&self) -> f64 {
        self.tensor_peak_flops
    }

    /// Peak CUDA-core FLOP/s.
    #[must_use]
    pub fn cuda_peak_flops(&self) -> f64 {
        self.cuda_peak_flops
    }

    /// DRAM bandwidth share, bytes/s.
    #[must_use]
    pub fn mem_bandwidth(&self) -> f64 {
        self.mem_bandwidth
    }
}

impl fmt::Display for PartitionResources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs, {:.0} TFLOP/s tensor, {:.0} GB/s)",
            self.size,
            self.sms,
            self.tensor_peak_flops / 1e12,
            self.mem_bandwidth / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_scale_with_gpcs() {
        let spec = DeviceSpec::a100();
        let g2 = PartitionResources::new(&spec, ProfileSize::G2);
        let g4 = PartitionResources::new(&spec, ProfileSize::G4);
        assert_eq!(g2.sms() * 2, g4.sms());
        assert!((g4.tensor_peak_flops() / g2.tensor_peak_flops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bandwidth_follows_slices_not_gpcs() {
        let spec = DeviceSpec::a100();
        let g3 = PartitionResources::new(&spec, ProfileSize::G3);
        let g4 = PartitionResources::new(&spec, ProfileSize::G4);
        // 3g and 4g both own 4 memory slices → identical bandwidth.
        assert_eq!(g3.mem_bandwidth(), g4.mem_bandwidth());
        assert!(g4.tensor_peak_flops() > g3.tensor_peak_flops());
    }

    #[test]
    fn display_mentions_profile() {
        let spec = DeviceSpec::a100();
        let r = PartitionResources::new(&spec, ProfileSize::G7);
        assert!(r.to_string().contains("GPU(7)"));
    }
}
