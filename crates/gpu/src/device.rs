//! Device-level constants of the reconfigurable GPU being modelled.

/// Physical and calibration constants of an A100-class reconfigurable GPU.
///
/// The defaults ([`DeviceSpec::a100`]) follow the published A100 SXM4-40GB
/// numbers: 7 GPCs of 14 SMs at 1.41 GHz, TF32 tensor peak of 156 TFLOP/s
/// (98 enabled SMs × 1024 FLOP/cycle — PyTorch 1.7, the paper's stack,
/// defaults to TF32 tensor cores on Ampere), fp32 CUDA-core peak of 19.5
/// TFLOP/s, 1555 GB/s of HBM2 split over 8 memory slices. The
/// efficiency/overhead fields calibrate the model to eager-mode PyTorch
/// execution: every operator is its own kernel with a launch gap, and
/// small kernels have a minimum wall-clock floor regardless of partition
/// size (the effect that makes lightweight models nearly
/// partition-size-insensitive, paper Fig. 3).
///
/// # Examples
///
/// ```
/// use mig_gpu::DeviceSpec;
///
/// let spec = DeviceSpec::a100();
/// assert_eq!(spec.gpcs, 7);
/// assert_eq!(spec.mem_slices, 8);
/// // Full-GPU TF32 tensor peak lands in the ~140 TFLOP/s range.
/// let peak = spec.tensor_peak_flops(spec.gpcs * spec.sms_per_gpc);
/// assert!((1.2e14..1.7e14).contains(&peak));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceSpec {
    /// Graphics processing clusters per GPU (A100: 7).
    pub gpcs: usize,
    /// Streaming multiprocessors per GPC (A100 MIG slice: 14).
    pub sms_per_gpc: usize,
    /// SM clock in Hz.
    pub clock_hz: f64,
    /// Tensor-core FLOPs per SM per cycle (A100 TF32: 1024).
    pub tensor_flops_per_sm_cycle: f64,
    /// CUDA-core FLOPs per SM per cycle for elementwise/fp32 work.
    pub cuda_flops_per_sm_cycle: f64,
    /// Memory slices the HBM is divided into for MIG (A100: 8).
    pub mem_slices: usize,
    /// Aggregate DRAM bandwidth of the whole GPU, bytes/s (A100: 1555 GB/s).
    pub total_mem_bw: f64,
    /// Fraction of activation traffic served from L2 rather than DRAM.
    pub l2_hit_fraction: f64,
    /// Achievable fraction of tensor-core peak on real GEMM shapes.
    pub tensor_efficiency: f64,
    /// Achievable fraction of CUDA-core peak on elementwise kernels.
    pub cuda_efficiency: f64,
    /// Per-kernel launch + inter-kernel gap, seconds (eager-mode PyTorch).
    pub kernel_overhead_s: f64,
    /// Minimum wall-clock execution time of any kernel, seconds,
    /// independent of partition size (cuDNN/eager small-kernel floor).
    pub kernel_floor_s: f64,
    /// Per-inference framework/dispatch overhead, seconds.
    pub framework_overhead_s: f64,
    /// Rows of a tensor-core thread-block tile (GEMM M-tile).
    pub tensor_tile_rows: f64,
    /// Columns of a tensor-core thread-block tile (GEMM N-tile).
    pub tensor_tile_cols: f64,
    /// Elements covered by one CUDA-core thread block.
    pub cuda_tile_elems: f64,
    /// Concurrent thread blocks per SM for tensor-core kernels.
    pub tensor_ctas_per_sm: f64,
    /// Concurrent thread blocks per SM for CUDA-core kernels.
    pub cuda_ctas_per_sm: f64,
    /// Model the staircase effect of whole thread-block waves instead of
    /// the smooth load-balanced approximation (ablation switch).
    pub wave_quantization: bool,
}

impl DeviceSpec {
    /// The A100 SXM4-40GB calibration used throughout the reproduction.
    #[must_use]
    pub fn a100() -> Self {
        DeviceSpec {
            gpcs: 7,
            sms_per_gpc: 14,
            clock_hz: 1.41e9,
            tensor_flops_per_sm_cycle: 1024.0,
            cuda_flops_per_sm_cycle: 128.0,
            mem_slices: 8,
            total_mem_bw: 1.555e12,
            l2_hit_fraction: 0.85,
            tensor_efficiency: 0.35,
            cuda_efficiency: 0.5,
            kernel_overhead_s: 10e-6,
            kernel_floor_s: 50e-6,
            framework_overhead_s: 100e-6,
            tensor_tile_rows: 64.0,
            tensor_tile_cols: 64.0,
            cuda_tile_elems: 1024.0,
            tensor_ctas_per_sm: 2.0,
            cuda_ctas_per_sm: 4.0,
            wave_quantization: false,
        }
    }

    /// Total SMs on the full GPU.
    #[must_use]
    pub fn total_sms(&self) -> usize {
        self.gpcs * self.sms_per_gpc
    }

    /// DRAM bandwidth of one memory slice, bytes/s.
    #[must_use]
    pub fn bw_per_slice(&self) -> f64 {
        self.total_mem_bw / self.mem_slices as f64
    }

    /// Peak tensor-core FLOP/s for a partition with `sms` SMs.
    #[must_use]
    pub fn tensor_peak_flops(&self, sms: usize) -> f64 {
        sms as f64 * self.tensor_flops_per_sm_cycle * self.clock_hz
    }

    /// Peak CUDA-core FLOP/s for a partition with `sms` SMs.
    #[must_use]
    pub fn cuda_peak_flops(&self, sms: usize) -> f64 {
        sms as f64 * self.cuda_flops_per_sm_cycle * self.clock_hz
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_are_published_values() {
        let s = DeviceSpec::a100();
        assert_eq!(s.total_sms(), 98);
        // 1555 GB/s over 8 slices ≈ 194 GB/s per slice.
        assert!((s.bw_per_slice() - 1.944e11).abs() / 1.944e11 < 0.01);
    }

    #[test]
    fn peaks_scale_linearly_with_sms() {
        let s = DeviceSpec::a100();
        let one = s.tensor_peak_flops(14);
        let seven = s.tensor_peak_flops(98);
        assert!((seven / one - 7.0).abs() < 1e-9);
        assert!(s.cuda_peak_flops(14) < one, "cuda pipe much slower");
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::a100());
    }
}
