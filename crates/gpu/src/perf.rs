//! The analytical GPU performance model.
//!
//! This replaces the paper's one-time profiling on real A100 hardware (see
//! DESIGN.md, substitution table). For every `(layer, batch, partition)` it
//! estimates execution time and SM occupancy from first principles:
//!
//! 1. **Parallelism** — the layer's [`WorkShape`] is tiled into thread
//!    blocks; occupancy is the fraction of the partition's concurrent
//!    block slots those tiles fill (`min(1, tiles/slots)` in the smooth,
//!    load-balanced approximation; whole-wave quantization is available as
//!    an ablation switch).
//! 2. **Roofline** — compute time is `FLOPs / (peak·efficiency·occupancy)`
//!    on the layer's pipe (tensor vs CUDA cores); memory time is
//!    DRAM-visible bytes over the partition's bandwidth share; the layer
//!    takes the max of the two, plus a kernel-launch overhead.
//! 3. **Batch amortization** — parameter traffic is paid once per kernel
//!    regardless of batch, so arithmetic intensity and occupancy both rise
//!    with batch size. This is what produces the `MaxBatch_knee` behaviour
//!    of Figures 3 and 4 that PARIS builds on.
//!
//! Every eager-mode kernel additionally has a minimum wall-clock execution
//! floor independent of partition size (tiny kernels cannot go faster on a
//! bigger GPU), which is what makes lightweight models nearly
//! partition-size-insensitive (Fig. 3's MobileNet behaviour). The reported
//! *utilization* is SM occupancy weighted by each kernel's roofline-limited
//! (useful-work) time over total kernel-active time — floor-bound time is
//! idle silicon — and *latency* additionally includes per-kernel launch
//! gaps and per-inference framework overhead (eager-mode PyTorch, per the
//! paper's software stack).

use dnn_zoo::{ComputeClass, Layer, ModelGraph};

use crate::device::DeviceSpec;
use crate::partition::PartitionResources;
use crate::profile_size::ProfileSize;

/// Which roofline term bounded a layer's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Limited by the compute pipe.
    Compute,
    /// Limited by DRAM bandwidth.
    Memory,
    /// Limited by the fixed kernel-launch overhead.
    Overhead,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Compute => f.write_str("compute"),
            Bound::Memory => f.write_str("memory"),
            Bound::Overhead => f.write_str("overhead"),
        }
    }
}

/// Timing estimate for one layer at one batch size on one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTiming {
    /// Kernel execution time excluding launch overhead, seconds.
    pub exec_s: f64,
    /// Time the kernel spends limited by compute or memory (the "real
    /// work" part of `exec_s`; the remainder is small-kernel floor).
    pub roofline_s: f64,
    /// SM occupancy (0, 1] while the kernel runs.
    pub occupancy: f64,
    /// Which resource bounded the kernel.
    pub bound: Bound,
}

/// End-to-end estimate for one inference on one partition.
///
/// Produced by [`PerfModel::inference`]; this is the raw material of the
/// paper's Figures 3 and 4 and of the PARIS profiling tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEstimate {
    /// End-to-end latency, seconds (kernels + launch gaps + framework).
    pub latency_s: f64,
    /// Time-weighted SM occupancy over kernel-active time, in [0, 1].
    pub utilization: f64,
    /// Achieved FLOP/s divided by the partition's tensor peak, in [0, 1].
    pub flop_efficiency: f64,
}

impl InferenceEstimate {
    /// Requests per second a partition sustains running this batch size
    /// back-to-back: `1 / latency`.
    #[must_use]
    pub fn throughput_qps(&self) -> f64 {
        1.0 / self.latency_s
    }
}

/// The analytical performance model for one device specification.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
///
/// let model = ModelKind::ResNet50.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let small = perf.inference(&model, 8, ProfileSize::G1);
/// let large = perf.inference(&model, 8, ProfileSize::G7);
/// // Small partitions are slower but better utilized (paper Fig. 3).
/// assert!(small.latency_s > large.latency_s);
/// assert!(small.utilization > large.utilization);
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    spec: DeviceSpec,
}

impl PerfModel {
    /// Creates a model for the given device.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        PerfModel { spec }
    }

    /// The device specification this model evaluates against.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Estimates one layer at batch `b` on a `size` partition.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn layer(&self, layer: &Layer, b: usize, size: ProfileSize) -> LayerTiming {
        assert!(b > 0, "batch size must be at least 1");
        let res = PartitionResources::new(&self.spec, size);
        let work = layer.work();

        // --- Parallelism: tiles vs concurrent block slots. ---
        let (tile_rows, tile_cols, ctas_per_sm, peak, eff) = match layer.class() {
            ComputeClass::TensorCore => (
                self.spec.tensor_tile_rows,
                self.spec.tensor_tile_cols,
                self.spec.tensor_ctas_per_sm,
                res.tensor_peak_flops(),
                self.spec.tensor_efficiency,
            ),
            ComputeClass::CudaCore => (
                self.spec.cuda_tile_elems,
                f64::INFINITY, // elementwise tiles span the full "column"
                self.spec.cuda_ctas_per_sm,
                res.cuda_peak_flops(),
                self.spec.cuda_efficiency,
            ),
        };
        // Tiles are counted continuously (no per-dimension ceiling): this
        // keeps latency exactly monotone in batch size and, for layers that
        // underfill the machine, makes compute time equal the duration of
        // one tile's work on one block slot — the right limit for a kernel
        // whose parallelism cannot cover the partition.
        let rows = work.rows_per_sample * b as f64;
        let row_tiles = rows / tile_rows;
        let col_tiles = if tile_cols.is_finite() {
            (work.cols / tile_cols).max(1.0)
        } else {
            1.0
        };
        let tiles = row_tiles * col_tiles * work.groups.max(1.0);
        let slots = res.sms() as f64 * ctas_per_sm;
        let occupancy = if self.spec.wave_quantization {
            let waves = (tiles / slots).ceil().max(1.0);
            tiles / (waves * slots)
        } else {
            (tiles / slots).min(1.0)
        };

        // --- Roofline. ---
        let flops = layer.flops_for_batch(b);
        let compute_s = if flops > 0.0 {
            flops / (peak * eff * occupancy)
        } else {
            0.0
        };
        let dram_bytes = layer.weight_bytes()
            + layer.io_bytes_per_sample() * b as f64 * (1.0 - self.spec.l2_hit_fraction);
        let memory_s = dram_bytes / res.mem_bandwidth();
        // Every eager-mode kernel has a minimum wall-clock cost regardless
        // of how small its work is or how big the partition — this floor is
        // what makes lightweight models nearly insensitive to partition
        // size (Fig. 3's MobileNet behaviour).
        let roofline_s = compute_s.max(memory_s);
        let exec_s = roofline_s.max(self.spec.kernel_floor_s);
        let bound = if compute_s >= memory_s && compute_s >= self.spec.kernel_floor_s {
            Bound::Compute
        } else if memory_s > compute_s && memory_s >= self.spec.kernel_floor_s {
            Bound::Memory
        } else {
            Bound::Overhead
        };

        LayerTiming {
            exec_s,
            roofline_s,
            occupancy,
            bound,
        }
    }

    /// Estimates a full inference of `model` at batch `b` on `size`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn inference(&self, model: &ModelGraph, b: usize, size: ProfileSize) -> InferenceEstimate {
        let res = PartitionResources::new(&self.spec, size);
        let mut kernel_active = 0.0;
        let mut busy_weighted = 0.0;
        for layer in model.layers() {
            let t = self.layer(layer, b, size);
            kernel_active += t.exec_s;
            // SMs only do useful work during the roofline-limited part of
            // a kernel; floor-bound time is dead time on the partition.
            busy_weighted += t.roofline_s * t.occupancy;
        }
        let overheads = self.spec.kernel_overhead_s * model.layer_count() as f64
            + self.spec.framework_overhead_s;
        let latency_s = kernel_active + overheads;
        let utilization = if kernel_active > 0.0 {
            busy_weighted / kernel_active
        } else {
            0.0
        };
        let flop_efficiency =
            (model.flops_for_batch(b) / latency_s / res.tensor_peak_flops()).min(1.0);
        InferenceEstimate {
            latency_s,
            utilization,
            flop_efficiency,
        }
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::new(DeviceSpec::a100())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;

    fn perf() -> PerfModel {
        PerfModel::default()
    }

    #[test]
    fn latency_monotone_in_batch() {
        let perf = perf();
        for kind in ModelKind::ALL {
            let model = kind.build();
            for size in ProfileSize::ALL {
                let mut prev = 0.0;
                for b in [1usize, 2, 4, 8, 16, 32, 64] {
                    let est = perf.inference(&model, b, size);
                    assert!(
                        est.latency_s >= prev,
                        "{kind} on {size}: latency not monotone at b={b}"
                    );
                    prev = est.latency_s;
                }
            }
        }
    }

    #[test]
    fn utilization_monotone_in_batch_and_bounded() {
        let perf = perf();
        for kind in ModelKind::ALL {
            let model = kind.build();
            for size in ProfileSize::ALL {
                let mut prev = 0.0;
                for b in [1usize, 2, 4, 8, 16, 32, 64] {
                    let u = perf.inference(&model, b, size).utilization;
                    assert!((0.0..=1.0).contains(&u), "{kind} {size} b={b}: util {u}");
                    assert!(
                        u + 1e-9 >= prev,
                        "{kind} on {size}: utilization not monotone at b={b}"
                    );
                    prev = u;
                }
            }
        }
    }

    #[test]
    fn small_partitions_slower_but_better_utilized() {
        // The core Figure 3 observation, for every model at batch 8. A
        // floor-bound lightweight model (ShuffleNet) may tie on latency —
        // partition size cannot make it *faster*.
        let perf = perf();
        for kind in ModelKind::ALL {
            let model = kind.build();
            let small = perf.inference(&model, 8, ProfileSize::G1);
            let large = perf.inference(&model, 8, ProfileSize::G7);
            assert!(
                small.latency_s >= large.latency_s,
                "{kind}: small must not be faster"
            );
            assert!(
                small.utilization > large.utilization,
                "{kind}: small must be better utilized"
            );
        }
        // And the compute-hungry models must be strictly slower on GPU(1).
        for kind in [ModelKind::ResNet50, ModelKind::BertBase] {
            let model = kind.build();
            let small = perf.inference(&model, 8, ProfileSize::G1);
            let large = perf.inference(&model, 8, ProfileSize::G7);
            assert!(
                small.latency_s > 1.5 * large.latency_s,
                "{kind}: GPU(1) must be much slower"
            );
        }
    }

    #[test]
    fn compute_hungry_models_penalized_most_on_small_partitions() {
        // Figure 3: latency blow-up GPU(1)/GPU(7) ordering
        // MobileNet < ResNet < BERT.
        let perf = perf();
        let ratio = |kind: ModelKind| {
            let m = kind.build();
            perf.inference(&m, 8, ProfileSize::G1).latency_s
                / perf.inference(&m, 8, ProfileSize::G7).latency_s
        };
        let mobilenet = ratio(ModelKind::MobileNet);
        let resnet = ratio(ModelKind::ResNet50);
        let bert = ratio(ModelKind::BertBase);
        assert!(
            mobilenet < resnet && resnet < bert,
            "latency blow-up ordering violated: mobilenet {mobilenet:.2}, resnet {resnet:.2}, bert {bert:.2}"
        );
    }

    #[test]
    fn bert_utilizes_small_partitions_far_better_than_light_models() {
        // §III-B: "large models like BERT achieve high GPU utilization
        // under small GPU partitions even when the batch size is small" —
        // relative to the lightweight models, which stay overhead-bound.
        let perf = perf();
        let util_at_b1 = |kind: ModelKind| {
            perf.inference(&kind.build(), 1, ProfileSize::G1)
                .utilization
        };
        let bert = util_at_b1(ModelKind::BertBase);
        let mobilenet = util_at_b1(ModelKind::MobileNet);
        let shufflenet = util_at_b1(ModelKind::ShuffleNet);
        assert!(
            bert > 3.0 * mobilenet,
            "BERT {bert:.2} vs MobileNet {mobilenet:.2}"
        );
        assert!(
            bert > 5.0 * shufflenet,
            "BERT {bert:.2} vs ShuffleNet {shufflenet:.2}"
        );
    }

    #[test]
    fn throughput_is_reciprocal_latency() {
        let perf = perf();
        let m = ModelKind::ResNet50.build();
        let est = perf.inference(&m, 4, ProfileSize::G2);
        assert!((est.throughput_qps() * est.latency_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_flop_layers_cost_memory_time_only() {
        let perf = perf();
        let shuffle = dnn_zoo::Layer::channel_shuffle("s", 20_000_000);
        let t = perf.layer(&shuffle, 4, ProfileSize::G1);
        assert!(t.exec_s > 0.0);
        assert_eq!(t.bound, Bound::Memory);
    }

    #[test]
    fn wave_quantization_never_beats_smooth_occupancy() {
        let mut spec = DeviceSpec::a100();
        spec.wave_quantization = true;
        let quant = PerfModel::new(spec);
        let smooth = perf();
        let m = ModelKind::ResNet50.build();
        for b in [1usize, 3, 7, 13] {
            let q = quant.inference(&m, b, ProfileSize::G2);
            let s = smooth.inference(&m, b, ProfileSize::G2);
            assert!(q.latency_s >= s.latency_s - 1e-12);
        }
    }

    #[test]
    fn flop_efficiency_bounded() {
        let perf = perf();
        for kind in ModelKind::ALL {
            let m = kind.build();
            let e = perf.inference(&m, 32, ProfileSize::G7).flop_efficiency;
            assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_panics() {
        let perf = perf();
        let m = ModelKind::MobileNet.build();
        let _ = perf.inference(&m, 0, ProfileSize::G1);
    }
}
