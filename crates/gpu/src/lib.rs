//! # mig-gpu — a reconfigurable (MIG) GPU model
//!
//! The hardware substrate of the PARIS+ELSA reproduction: an A100-class GPU
//! that can be partitioned into multiple smaller GPUs, exactly as NVIDIA's
//! Multi-Instance GPU feature allows (paper §II-C).
//!
//! Four pieces:
//!
//! * [`DeviceSpec`] — published A100 constants plus calibration knobs,
//! * geometry — [`ProfileSize`] (the 1g/2g/3g/4g/7g instance profiles),
//!   [`GpuLayout`] placement with the real A100 slice/alignment rules, and
//!   [`valid_gpu_configurations`] enumeration,
//! * [`PerfModel`] — an analytical latency/utilization model standing in
//!   for profiling on real hardware (see DESIGN.md for the substitution
//!   argument),
//! * [`ResliceCostModel`] — the driver-side downtime of re-partitioning a
//!   running server (what the online re-planning loop charges).
//!
//! ```
//! use dnn_zoo::ModelKind;
//! use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
//!
//! let perf = PerfModel::new(DeviceSpec::a100());
//! let bert = ModelKind::BertBase.build();
//! let est = perf.inference(&bert, 8, ProfileSize::G3);
//! assert!(est.latency_s > 0.0 && est.utilization <= 1.0);
//! ```

mod device;
mod geometry;
mod partition;
mod perf;
mod profile_size;
mod reconfig;

pub use device::DeviceSpec;
pub use geometry::{
    valid_gpu_configurations, GpuLayout, PlaceProfilesError, COMPUTE_SLICES, MEM_SLICES,
};
pub use partition::PartitionResources;
pub use perf::{Bound, InferenceEstimate, LayerTiming, PerfModel};
pub use profile_size::{ParseProfileSizeError, ProfileSize};
pub use reconfig::ResliceCostModel;
