//! MIG instance profiles: the five partition granularities of an A100.

use std::fmt;
use std::str::FromStr;

/// A MIG instance profile, named by its GPC count — the paper's
/// GPU(1)/GPU(2)/GPU(3)/GPU(4)/GPU(7).
///
/// Each profile owns a number of compute GPCs and a number of the GPU's 8
/// memory slices (which set its DRAM bandwidth share), following the real
/// A100 profile table: `1g` takes 1 slice, `2g` 2, `3g` **4**, `4g` 4 and
/// `7g` all 8.
///
/// # Examples
///
/// ```
/// use mig_gpu::ProfileSize;
///
/// assert_eq!(ProfileSize::G3.gpcs(), 3);
/// assert_eq!(ProfileSize::G3.mem_slices(), 4); // 3g owns half the memory
/// assert_eq!(ProfileSize::G7.to_string(), "GPU(7)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProfileSize {
    /// 1 GPC, 1 memory slice (`1g.5gb`).
    G1,
    /// 2 GPCs, 2 memory slices (`2g.10gb`).
    G2,
    /// 3 GPCs, 4 memory slices (`3g.20gb`).
    G3,
    /// 4 GPCs, 4 memory slices (`4g.20gb`).
    G4,
    /// 7 GPCs, all 8 memory slices (`7g.40gb`).
    G7,
}

impl ProfileSize {
    /// All profiles, smallest first — the iteration order ELSA uses.
    pub const ALL: [ProfileSize; 5] = [
        ProfileSize::G1,
        ProfileSize::G2,
        ProfileSize::G3,
        ProfileSize::G4,
        ProfileSize::G7,
    ];

    /// Number of GPCs (the paper's partition-size parameter).
    #[must_use]
    pub const fn gpcs(self) -> usize {
        match self {
            ProfileSize::G1 => 1,
            ProfileSize::G2 => 2,
            ProfileSize::G3 => 3,
            ProfileSize::G4 => 4,
            ProfileSize::G7 => 7,
        }
    }

    /// Number of the GPU's 8 memory slices this profile owns.
    #[must_use]
    pub const fn mem_slices(self) -> usize {
        match self {
            ProfileSize::G1 => 1,
            ProfileSize::G2 => 2,
            ProfileSize::G3 => 4,
            ProfileSize::G4 => 4,
            ProfileSize::G7 => 8,
        }
    }

    /// Memory-slice start positions where the A100 allows this profile to
    /// be placed.
    #[must_use]
    pub const fn allowed_starts(self) -> &'static [usize] {
        match self {
            ProfileSize::G1 => &[0, 1, 2, 3, 4, 5, 6],
            ProfileSize::G2 => &[0, 2, 4],
            ProfileSize::G3 => &[0, 4],
            ProfileSize::G4 => &[0],
            ProfileSize::G7 => &[0],
        }
    }

    /// The profile with exactly `gpcs` GPCs, if one exists.
    #[must_use]
    pub fn from_gpcs(gpcs: usize) -> Option<Self> {
        match gpcs {
            1 => Some(ProfileSize::G1),
            2 => Some(ProfileSize::G2),
            3 => Some(ProfileSize::G3),
            4 => Some(ProfileSize::G4),
            7 => Some(ProfileSize::G7),
            _ => None,
        }
    }
}

impl fmt::Display for ProfileSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU({})", self.gpcs())
    }
}

/// Error returned when parsing a [`ProfileSize`] from an unknown string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileSizeError {
    input: String,
}

impl fmt::Display for ParseProfileSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown MIG profile `{}` (expected 1g, 2g, 3g, 4g, 7g or GPU(n))",
            self.input
        )
    }
}

impl std::error::Error for ParseProfileSizeError {}

impl FromStr for ProfileSize {
    type Err = ParseProfileSizeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        let digits: String = lowered.chars().filter(char::is_ascii_digit).collect();
        digits
            .parse::<usize>()
            .ok()
            .and_then(ProfileSize::from_gpcs)
            .ok_or_else(|| ParseProfileSizeError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpcs_and_slices_follow_a100_table() {
        let gpcs: Vec<usize> = ProfileSize::ALL.iter().map(|p| p.gpcs()).collect();
        assert_eq!(gpcs, vec![1, 2, 3, 4, 7]);
        let slices: Vec<usize> = ProfileSize::ALL.iter().map(|p| p.mem_slices()).collect();
        assert_eq!(slices, vec![1, 2, 4, 4, 8]);
    }

    #[test]
    fn ordering_is_by_size() {
        assert!(ProfileSize::G1 < ProfileSize::G2);
        assert!(ProfileSize::G4 < ProfileSize::G7);
        let mut v = vec![ProfileSize::G7, ProfileSize::G1, ProfileSize::G3];
        v.sort();
        assert_eq!(v, vec![ProfileSize::G1, ProfileSize::G3, ProfileSize::G7]);
    }

    #[test]
    fn from_gpcs_round_trips() {
        for p in ProfileSize::ALL {
            assert_eq!(ProfileSize::from_gpcs(p.gpcs()), Some(p));
        }
        assert_eq!(ProfileSize::from_gpcs(5), None);
        assert_eq!(ProfileSize::from_gpcs(0), None);
    }

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!("3g".parse::<ProfileSize>().unwrap(), ProfileSize::G3);
        assert_eq!("GPU(7)".parse::<ProfileSize>().unwrap(), ProfileSize::G7);
        assert!("1g.5gb".parse::<ProfileSize>().is_err()); // digits "15" → no profile
        assert!("xl".parse::<ProfileSize>().is_err());
    }

    #[test]
    fn allowed_starts_fit_in_eight_slices() {
        for p in ProfileSize::ALL {
            for &s in p.allowed_starts() {
                assert!(s + p.mem_slices() <= 8, "{p} at slice {s} overflows");
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProfileSize::G1.to_string(), "GPU(1)");
        assert_eq!(ProfileSize::G4.to_string(), "GPU(4)");
    }
}
