//! The cost of reconfiguring a MIG partition layout at runtime.
//!
//! MIG reslicing is not free: destroying and re-creating GPU instances
//! goes through the driver (`nvidia-smi mig -dgi/-cgi`), and a partition
//! must be *drained* — its in-flight work finished — before its slices can
//! be reclaimed. The paper performs partitioning offline ("determining the
//! best partitioning granularity [is done] offline", §IV-B) precisely
//! because this downtime is material; an *online* re-planner must charge
//! it. [`ResliceCostModel`] is that charge: a fixed per-reconfiguration
//! driver overhead plus a per-instance cost for every instance destroyed or
//! created. The drain time itself is not part of the model — it emerges
//! from the simulation (quiesced partitions finish their queues in
//! simulated time) — so the model only covers the driver-side latency after
//! the drain completes.

/// An affine model of MIG reslice latency: `fixed + destroy·n_destroyed +
/// create·n_created` nanoseconds of downtime once the affected partitions
/// have drained.
///
/// # Examples
///
/// ```
/// use mig_gpu::ResliceCostModel;
///
/// let cost = ResliceCostModel::a100_default();
/// // Tearing down two instances and creating three costs more than the
/// // reverse, and any reconfiguration pays the fixed overhead.
/// assert!(cost.delay_ns(2, 3) > cost.delay_ns(3, 2));
/// assert!(cost.delay_ns(0, 0) >= cost.fixed_ns);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResliceCostModel {
    /// Per-reconfiguration driver overhead (mode switches, slice
    /// bookkeeping), nanoseconds.
    pub fixed_ns: u64,
    /// Cost of destroying one GPU instance, nanoseconds.
    pub destroy_ns: u64,
    /// Cost of creating one GPU instance (instance + compute instance),
    /// nanoseconds.
    pub create_ns: u64,
}

impl ResliceCostModel {
    /// A100-class defaults: ~50 ms fixed, ~5 ms per destroyed instance,
    /// ~25 ms per created instance (creation also re-initializes the
    /// serving process's CUDA context, which dominates). Per-instance
    /// terms are kept small because instances on *different* GPUs
    /// reconfigure concurrently — the driver serializes within a GPU, not
    /// across the server.
    #[must_use]
    pub fn a100_default() -> Self {
        ResliceCostModel {
            fixed_ns: 50_000_000,
            destroy_ns: 5_000_000,
            create_ns: 25_000_000,
        }
    }

    /// A zero-cost model: reconfiguration is instantaneous (the optimistic
    /// upper bound for what online re-planning could win).
    #[must_use]
    pub fn free() -> Self {
        ResliceCostModel {
            fixed_ns: 0,
            destroy_ns: 0,
            create_ns: 0,
        }
    }

    /// Driver-side downtime for a reconfiguration that destroys
    /// `destroyed` instances and creates `created`, nanoseconds.
    #[must_use]
    pub fn delay_ns(&self, destroyed: usize, created: usize) -> u64 {
        self.fixed_ns
            .saturating_add(self.destroy_ns.saturating_mul(destroyed as u64))
            .saturating_add(self.create_ns.saturating_mul(created as u64))
    }

    /// Extra driver-side cost of handing `gpus` whole GPUs between pools
    /// (Aryl-style capacity loaning between a serving shard and a batch
    /// pool), nanoseconds.
    ///
    /// Lending a GPU clears every instance the lender still holds on it and
    /// re-enables MIG mode under the borrower's control — one destroy plus
    /// one create worth of driver work per GPU, on top of whatever reslice
    /// the borrower's new plan itself costs (priced separately through
    /// [`delay_ns`](Self::delay_ns)). Zero GPUs cost nothing: the handover
    /// has no fixed term because it only ever rides on a reconfiguration
    /// that already paid [`fixed_ns`](Self::fixed_ns).
    #[must_use]
    pub fn gpu_handover_ns(&self, gpus: usize) -> u64 {
        self.destroy_ns
            .saturating_add(self.create_ns)
            .saturating_mul(gpus as u64)
    }
}

impl Default for ResliceCostModel {
    fn default() -> Self {
        Self::a100_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_affine_in_instance_counts() {
        let m = ResliceCostModel {
            fixed_ns: 100,
            destroy_ns: 10,
            create_ns: 20,
        };
        assert_eq!(m.delay_ns(0, 0), 100);
        assert_eq!(m.delay_ns(2, 3), 100 + 20 + 60);
    }

    #[test]
    fn free_model_charges_nothing() {
        assert_eq!(ResliceCostModel::free().delay_ns(100, 100), 0);
    }

    #[test]
    fn a100_default_is_subsecond_for_small_diffs() {
        let m = ResliceCostModel::a100_default();
        let d = m.delay_ns(2, 2);
        assert!(d > 0 && d < 2_000_000_000, "delay {d} ns");
    }

    #[test]
    fn gpu_handover_is_linear_with_no_fixed_term() {
        let m = ResliceCostModel {
            fixed_ns: 100,
            destroy_ns: 10,
            create_ns: 20,
        };
        assert_eq!(m.gpu_handover_ns(0), 0);
        assert_eq!(m.gpu_handover_ns(1), 30);
        assert_eq!(m.gpu_handover_ns(3), 90);
        assert_eq!(ResliceCostModel::free().gpu_handover_ns(5), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let m = ResliceCostModel {
            fixed_ns: u64::MAX,
            destroy_ns: u64::MAX,
            create_ns: u64::MAX,
        };
        assert_eq!(m.delay_ns(usize::MAX, usize::MAX), u64::MAX);
    }
}
