//! MIG placement geometry: which partition combinations a single GPU can
//! actually host.
//!
//! An A100 exposes 8 memory slices and 7 compute slices (GPCs). Every MIG
//! profile occupies a contiguous run of memory slices and may only start at
//! certain positions (see [`ProfileSize::allowed_starts`]). This module
//! implements those rules exactly, so the PARIS packing step can only emit
//! configurations a real A100 accepts — e.g. `4g+2g+1g` and `3g+3g` are
//! valid, `4g+4g` and `3g+3g+1g` are not.

use std::fmt;

use crate::profile_size::ProfileSize;

/// Memory slices per GPU (A100: 8).
pub const MEM_SLICES: usize = 8;
/// Compute slices (GPCs) per GPU (A100: 7). Memory slice 7 has no GPC.
pub const COMPUTE_SLICES: usize = 7;

/// Error returned when a set of profiles cannot be placed on one GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceProfilesError {
    requested: Vec<ProfileSize>,
}

impl PlaceProfilesError {
    /// The profile multiset that failed to place.
    #[must_use]
    pub fn requested(&self) -> &[ProfileSize] {
        &self.requested
    }
}

impl fmt::Display for PlaceProfilesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profiles [")?;
        for (i, p) in self.requested.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "] do not fit on one GPU under MIG placement rules")
    }
}

impl std::error::Error for PlaceProfilesError {}

/// A concrete placement of MIG instances on one physical GPU.
///
/// # Examples
///
/// ```
/// use mig_gpu::{GpuLayout, ProfileSize};
///
/// // Figure 2's heterogeneous example: 3 GPCs + 2 GPCs + 1 GPC + 1 GPC.
/// let layout = GpuLayout::place(&[
///     ProfileSize::G3,
///     ProfileSize::G2,
///     ProfileSize::G1,
///     ProfileSize::G1,
/// ])?;
/// assert_eq!(layout.used_gpcs(), 7);
/// # Ok::<(), mig_gpu::PlaceProfilesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuLayout {
    /// `(profile, start slice)` pairs, sorted by start slice.
    placements: Vec<(ProfileSize, usize)>,
}

impl GpuLayout {
    /// An empty GPU with no instances configured.
    #[must_use]
    pub fn empty() -> Self {
        GpuLayout {
            placements: Vec::new(),
        }
    }

    /// Attempts to place the given multiset of profiles on one GPU.
    ///
    /// Placement is searched by backtracking over the A100's allowed start
    /// positions, trying large profiles first (their placements are the most
    /// constrained).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceProfilesError`] if no assignment of start slices
    /// satisfies the placement rules.
    pub fn place(profiles: &[ProfileSize]) -> Result<Self, PlaceProfilesError> {
        let mut sorted: Vec<ProfileSize> = profiles.to_vec();
        sorted.sort_by(|a, b| b.cmp(a)); // biggest first
        let mut occupied = [false; MEM_SLICES];
        let mut placements = Vec::with_capacity(sorted.len());
        if Self::backtrack(&sorted, 0, &mut occupied, &mut placements) {
            placements.sort_by_key(|&(_, start)| start);
            Ok(GpuLayout { placements })
        } else {
            Err(PlaceProfilesError {
                requested: profiles.to_vec(),
            })
        }
    }

    fn backtrack(
        profiles: &[ProfileSize],
        idx: usize,
        occupied: &mut [bool; MEM_SLICES],
        placements: &mut Vec<(ProfileSize, usize)>,
    ) -> bool {
        let Some(&profile) = profiles.get(idx) else {
            return true;
        };
        let span = profile.mem_slices();
        for &start in profile.allowed_starts() {
            // A profile's compute must come from real GPCs: the run of
            // slices must contain at least `gpcs` compute slices, i.e. it
            // may touch memory slice 7 only if it has spare memory span
            // (3g/7g do; 1g/2g at the top would be compute-less).
            let compute_in_span = (start..start + span)
                .filter(|&s| s < COMPUTE_SLICES)
                .count();
            if compute_in_span < profile.gpcs() {
                continue;
            }
            if occupied[start..start + span].iter().any(|&o| o) {
                continue;
            }
            occupied[start..start + span]
                .iter_mut()
                .for_each(|o| *o = true);
            placements.push((profile, start));
            if Self::backtrack(profiles, idx + 1, occupied, placements) {
                return true;
            }
            placements.pop();
            occupied[start..start + span]
                .iter_mut()
                .for_each(|o| *o = false);
        }
        false
    }

    /// Whether the multiset of profiles fits on one GPU.
    ///
    /// Feasibility depends only on the per-size counts, and once the GPC
    /// budget prunes impossible vectors the count space is tiny (≤ 384
    /// entries), so the backtracking search runs once per process to fill a
    /// table and every query after that is a lookup. Packing heuristics
    /// probe `fits` per (instance, GPU) pair on every re-plan, which makes
    /// this the hot path of [`PartitionPlan`]-style planners.
    ///
    /// [`PartitionPlan`]: https://docs.rs/paris-core
    #[must_use]
    pub fn fits(profiles: &[ProfileSize]) -> bool {
        let mut counts = [0usize; 5];
        let mut gpcs = 0usize;
        for &p in profiles {
            counts[match p {
                ProfileSize::G1 => 0,
                ProfileSize::G2 => 1,
                ProfileSize::G3 => 2,
                ProfileSize::G4 => 3,
                ProfileSize::G7 => 4,
            }] += 1;
            gpcs += p.gpcs();
        }
        // Every instance needs `gpcs` real compute slices from a disjoint
        // span, so any multiset over 7 GPCs is infeasible outright. That
        // bound also caps the per-size counts (7×G1, 3×G2, 2×G3, 1×G4,
        // 1×G7), keeping the index below inside the table.
        if gpcs > COMPUTE_SLICES {
            return false;
        }
        let [c1, c2, c3, c4, c7] = counts;
        Self::fits_table()[c1 + 8 * (c2 + 4 * (c3 + 3 * (c4 + 2 * c7)))]
    }

    /// Lazily built table of [`Self::fits`] answers for every count vector
    /// reachable under the 7-GPC bound, indexed as
    /// `c1 + 8·(c2 + 4·(c3 + 3·(c4 + 2·c7)))`.
    fn fits_table() -> &'static [bool; 384] {
        static TABLE: std::sync::OnceLock<[bool; 384]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            let mut table = [false; 384];
            let mut profiles = Vec::with_capacity(COMPUTE_SLICES);
            for c7 in 0..2 {
                for c4 in 0..2 {
                    for c3 in 0..3 {
                        for c2 in 0..4 {
                            for c1 in 0..8 {
                                profiles.clear();
                                profiles.extend(std::iter::repeat_n(ProfileSize::G7, c7));
                                profiles.extend(std::iter::repeat_n(ProfileSize::G4, c4));
                                profiles.extend(std::iter::repeat_n(ProfileSize::G3, c3));
                                profiles.extend(std::iter::repeat_n(ProfileSize::G2, c2));
                                profiles.extend(std::iter::repeat_n(ProfileSize::G1, c1));
                                table[c1 + 8 * (c2 + 4 * (c3 + 3 * (c4 + 2 * c7)))] =
                                    Self::place(&profiles).is_ok();
                            }
                        }
                    }
                }
            }
            table
        })
    }

    /// The placed instances as `(profile, start slice)` pairs, ordered by
    /// start slice.
    #[must_use]
    pub fn placements(&self) -> &[(ProfileSize, usize)] {
        &self.placements
    }

    /// The instance profiles on this GPU, ordered by start slice.
    #[must_use]
    pub fn profiles(&self) -> Vec<ProfileSize> {
        self.placements.iter().map(|&(p, _)| p).collect()
    }

    /// Number of instances configured.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.placements.len()
    }

    /// GPCs consumed by the configured instances.
    #[must_use]
    pub fn used_gpcs(&self) -> usize {
        self.placements.iter().map(|&(p, _)| p.gpcs()).sum()
    }

    /// GPCs left unused (stranded) on this GPU.
    #[must_use]
    pub fn idle_gpcs(&self) -> usize {
        COMPUTE_SLICES - self.used_gpcs()
    }

    /// Memory slices consumed.
    #[must_use]
    pub fn used_mem_slices(&self) -> usize {
        self.placements.iter().map(|&(p, _)| p.mem_slices()).sum()
    }
}

impl Default for GpuLayout {
    fn default() -> Self {
        Self::empty()
    }
}

impl fmt::Display for GpuLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (p, _)) in self.placements.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{}g", p.gpcs())?;
        }
        if self.idle_gpcs() > 0 {
            write!(f, "|{} idle", self.idle_gpcs())?;
        }
        write!(f, "]")
    }
}

/// Enumerates every distinct multiset of profiles that fits on one GPU
/// (including the empty configuration), sorted for reproducibility.
///
/// # Examples
///
/// ```
/// use mig_gpu::valid_gpu_configurations;
///
/// let configs = valid_gpu_configurations();
/// // The classic homogeneous configurations are all present.
/// assert!(configs.iter().any(|c| c.len() == 7)); // 7 × 1g
/// assert!(configs.iter().any(|c| c.len() == 1)); // 7g
/// ```
#[must_use]
pub fn valid_gpu_configurations() -> Vec<Vec<ProfileSize>> {
    let mut results = Vec::new();
    let mut current = Vec::new();
    // Depth-first over non-increasing profile sequences to enumerate
    // multisets once each.
    fn dfs(start_idx: usize, current: &mut Vec<ProfileSize>, results: &mut Vec<Vec<ProfileSize>>) {
        let mut normalized = current.clone();
        normalized.sort();
        results.push(normalized);
        // Profiles in descending size so sequences are non-increasing.
        let descending = [
            ProfileSize::G7,
            ProfileSize::G4,
            ProfileSize::G3,
            ProfileSize::G2,
            ProfileSize::G1,
        ];
        for (i, &p) in descending.iter().enumerate().skip(start_idx) {
            current.push(p);
            if GpuLayout::fits(current) {
                dfs(i, current, results);
            }
            current.pop();
        }
    }
    dfs(0, &mut current, &mut results);
    results.sort();
    results.dedup();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProfileSize::{G1, G2, G3, G4, G7};

    #[test]
    fn homogeneous_configs_from_figure2_fit() {
        assert!(GpuLayout::fits(&[G1; 7]));
        assert!(GpuLayout::fits(&[G2, G2, G2, G1]));
        assert!(GpuLayout::fits(&[G4, G2, G1]));
        assert!(GpuLayout::fits(&[G7]));
    }

    #[test]
    fn heterogeneous_configs_from_figure2_fit() {
        assert!(GpuLayout::fits(&[G3, G2, G1, G1]));
        assert!(GpuLayout::fits(&[G4, G2, G1]));
    }

    #[test]
    fn real_a100_constraints_hold() {
        assert!(GpuLayout::fits(&[G3, G3]));
        assert!(GpuLayout::fits(&[G4, G3]));
        assert!(
            !GpuLayout::fits(&[G4, G4]),
            "two 4g need 8 mem slices each side but only one 4g start"
        );
        assert!(
            !GpuLayout::fits(&[G3, G3, G1]),
            "3g+3g consume all 8 mem slices"
        );
        assert!(!GpuLayout::fits(&[G7, G1]));
        assert!(!GpuLayout::fits(&[G1; 8]), "only 7 compute slices");
        assert!(!GpuLayout::fits(&[G2, G2, G2, G2]), "8 GPCs worth of 2g");
    }

    #[test]
    fn three_2g_plus_1g_uses_all_seven_gpcs() {
        let layout = GpuLayout::place(&[G2, G2, G2, G1]).unwrap();
        assert_eq!(layout.used_gpcs(), 7);
        assert_eq!(layout.idle_gpcs(), 0);
        assert_eq!(layout.instance_count(), 4);
    }

    #[test]
    fn two_3g_strand_one_gpc() {
        let layout = GpuLayout::place(&[G3, G3]).unwrap();
        assert_eq!(layout.used_gpcs(), 6);
        assert_eq!(layout.idle_gpcs(), 1);
        assert_eq!(layout.used_mem_slices(), 8);
    }

    #[test]
    fn one_4g_strands_three_gpcs() {
        // The methodology section's example: a homogeneous GPU(4) server
        // can host only one instance per GPU, idling 3 GPCs.
        let layout = GpuLayout::place(&[G4]).unwrap();
        assert_eq!(layout.idle_gpcs(), 3);
        assert!(!GpuLayout::fits(&[G4, G3, G1]));
    }

    #[test]
    fn placements_do_not_overlap() {
        let layout = GpuLayout::place(&[G3, G2, G1, G1]).unwrap();
        let mut occupied = [false; MEM_SLICES];
        for &(p, start) in layout.placements() {
            #[allow(clippy::needless_range_loop)] // `s` names the slice
            for s in start..start + p.mem_slices() {
                assert!(!occupied[s], "slice {s} double-booked");
                occupied[s] = true;
            }
        }
    }

    #[test]
    fn enumeration_contains_known_configs_and_no_invalid_ones() {
        let configs = valid_gpu_configurations();
        let contains = |c: &[ProfileSize]| {
            let mut v = c.to_vec();
            v.sort();
            configs.iter().any(|cfg| cfg == &v)
        };
        assert!(contains(&[G1; 7]));
        assert!(contains(&[G4, G3]));
        assert!(contains(&[G3, G2, G1, G1]));
        assert!(!contains(&[G4, G4]));
        assert!(!contains(&[G3, G3, G1]));
        // Every enumerated config re-validates.
        for cfg in &configs {
            assert!(GpuLayout::fits(cfg), "enumerated config {cfg:?} must fit");
        }
    }

    #[test]
    fn empty_layout_is_valid_and_idle() {
        let layout = GpuLayout::empty();
        assert_eq!(layout.instance_count(), 0);
        assert_eq!(layout.idle_gpcs(), COMPUTE_SLICES);
        assert!(GpuLayout::fits(&[]));
    }

    #[test]
    fn error_lists_requested_profiles() {
        let err = GpuLayout::place(&[G7, G7]).unwrap_err();
        assert_eq!(err.requested(), &[G7, G7]);
        assert!(err.to_string().contains("GPU(7)"));
    }

    #[test]
    fn display_renders_layout() {
        let layout = GpuLayout::place(&[G4, G2, G1]).unwrap();
        let s = layout.to_string();
        assert!(s.contains("4g") && s.contains("2g") && s.contains("1g"));
    }
}
