//! Criterion micro-benchmarks for the building blocks of the reproduction:
//! performance-model evaluation, profiling, PARIS planning, ELSA decisions,
//! the DES event loop, MIG placement search, and trace generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::PartitionSnapshot;
use paris_elsa::prelude::*;

fn bench_perf_model(c: &mut Criterion) {
    let perf = PerfModel::new(DeviceSpec::a100());
    let resnet = ModelKind::ResNet50.build();
    let bert = ModelKind::BertBase.build();
    let mut group = c.benchmark_group("perf_model");
    group.bench_function("resnet50_inference_estimate", |b| {
        b.iter(|| black_box(perf.inference(&resnet, black_box(8), ProfileSize::G3)));
    });
    group.bench_function("bert_inference_estimate", |b| {
        b.iter(|| black_box(perf.inference(&bert, black_box(8), ProfileSize::G3)));
    });
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let perf = PerfModel::new(DeviceSpec::a100());
    let mobilenet = ModelKind::MobileNet.build();
    c.bench_function("profile_table_mobilenet_5sizes_32batches", |b| {
        b.iter(|| {
            black_box(ProfileTable::profile(
                &mobilenet,
                &perf,
                &ProfileSize::ALL,
                32,
            ))
        });
    });
}

fn bench_paris_planning(c: &mut Criterion) {
    let perf = PerfModel::new(DeviceSpec::a100());
    let resnet = ModelKind::ResNet50.build();
    let table = ProfileTable::profile(&resnet, &perf, &ProfileSize::ALL, 32);
    let dist = BatchDistribution::paper_default();
    c.bench_function("paris_plan_48gpc_8gpu", |b| {
        b.iter(|| {
            black_box(
                Paris::new(&table, &dist)
                    .plan(GpcBudget::new(48, 8))
                    .unwrap(),
            )
        });
    });
}

fn bench_elsa_decision(c: &mut Criterion) {
    let perf = PerfModel::new(DeviceSpec::a100());
    let resnet = ModelKind::ResNet50.build();
    let table = ProfileTable::profile(&resnet, &perf, &ProfileSize::ALL, 32);
    let elsa = Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)));
    let mut group = c.benchmark_group("elsa_decision");
    for n in [8usize, 32, 128] {
        let snapshots: Vec<PartitionSnapshot> = (0..n)
            .map(|i| PartitionSnapshot {
                size: ProfileSize::ALL[i % 5],
                queued_work_ns: (i as u64) * 1_000_000,
                remaining_current_ns: 500_000,
            })
            .collect();
        group.bench_function(format!("{n}_partitions"), |b| {
            b.iter(|| black_box(elsa.place(black_box(8), &table, &snapshots)));
        });
    }
    group.finish();
}

fn bench_des_event_loop(c: &mut Criterion) {
    c.bench_function("des_100k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = paris_elsa::des::Simulation::new();
                for i in 0..100_000u64 {
                    sim.schedule_at(SimTime::from_nanos(i * 13 % 1_000_000), i);
                }
                sim
            },
            |mut sim| {
                let mut count = 0u64;
                while let Some((_, v)) = sim.next_event() {
                    count = count.wrapping_add(v);
                }
                black_box(count)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_mig_placement(c: &mut Criterion) {
    use paris_elsa::gpu::{valid_gpu_configurations, GpuLayout};
    c.bench_function("mig_place_4_2_1", |b| {
        b.iter(|| {
            black_box(GpuLayout::place(&[
                ProfileSize::G4,
                ProfileSize::G2,
                ProfileSize::G1,
            ]))
        });
    });
    c.bench_function("mig_enumerate_valid_configs", |b| {
        b.iter(|| black_box(valid_gpu_configurations()));
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let gen = TraceGenerator::new(1_000.0, BatchDistribution::paper_default(), 42);
    c.bench_function("trace_10k_queries", |b| {
        b.iter(|| black_box(gen.generate_count(10_000)));
    });
}

/// The scheduler hot path itself: a dispatch-heavy trace pushed through
/// FIFS and ELSA servers at 8/56/224 partitions, run at `Summary` detail so
/// the loop is allocation-free and the numbers isolate per-query dispatch
/// cost. Uses the same [`paris_bench::dispatch_workload`] configuration as
/// the `bench_server` bin, whose `BENCH_server.json` tracks this quantity
/// across PRs.
fn bench_dispatch_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_path_20k_queries");
    for n in paris_bench::DISPATCH_BENCH_PARTITIONS {
        let (fifs, elsa, trace) = paris_bench::dispatch_workload(n, 20_000);
        group.bench_function(format!("fifs_{n}_partitions"), |b| {
            b.iter(|| black_box(fifs.run_with_detail(&trace, ReportDetail::Summary)));
        });
        group.bench_function(format!("elsa_{n}_partitions"), |b| {
            b.iter(|| black_box(elsa.run_with_detail(&trace, ReportDetail::Summary)));
        });
    }
    group.finish();
}

fn bench_server_run(c: &mut Criterion) {
    let bed = Testbed::paper_default(ModelKind::MobileNet);
    let fifs = bed
        .server(DesignPoint::HomogeneousFifs(ProfileSize::G2))
        .unwrap();
    let elsa = bed.server(DesignPoint::ParisElsa).unwrap();
    let trace = TraceGenerator::new(1_000.0, bed.distribution().clone(), 7).generate_for(1.0);
    let mut group = c.benchmark_group("server_run_1s_at_1kqps");
    group.sample_size(20);
    group.bench_function("fifs", |b| {
        b.iter(|| black_box(fifs.run(&trace)));
    });
    group.bench_function("paris_elsa", |b| {
        b.iter(|| black_box(elsa.run(&trace)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_perf_model,
    bench_profiling,
    bench_paris_planning,
    bench_elsa_decision,
    bench_dispatch_path,
    bench_des_event_loop,
    bench_mig_placement,
    bench_trace_generation,
    bench_server_run
);
criterion_main!(benches);
