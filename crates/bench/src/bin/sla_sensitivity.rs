//! **§VI-C (text)** — SLA-target sensitivity: with N = 2.0× (vs the 1.5×
//! default), the paper reports PARIS+ELSA averaging 1.19× lower tail
//! latency, and 1.7×/1.1× higher latency-bounded throughput than GPU(7) and
//! GPU(max) respectively.
//!
//! ```text
//! cargo run -p paris-bench --release --bin sla_sensitivity [-- --quick]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    for n in [1.5f64, 2.0] {
        let mut rows = Vec::new();
        let mut geo_gpu7 = 1.0f64;
        let mut geo_max = 1.0f64;
        let mut count = 0usize;
        for model in ModelKind::ALL {
            let bed = Testbed::paper_default(model).with_sla_multiplier(n);
            let sweep = opts.sweep(&bed);
            let gpu7 = bed
                .latency_bounded_qps(DesignPoint::HomogeneousFifs(ProfileSize::G7), &sweep)
                .expect("plan builds");
            let (max_size, max_qps) = bed.gpu_max(&sweep).expect("plan builds");
            let elsa = bed
                .latency_bounded_qps(DesignPoint::ParisElsa, &sweep)
                .expect("plan builds");
            let vs7 = elsa / gpu7.max(1e-9);
            let vsmax = elsa / max_qps.max(1e-9);
            geo_gpu7 *= vs7;
            geo_max *= vsmax;
            count += 1;
            rows.push(vec![
                model.to_string(),
                format!("GPU({})", max_size.gpcs()),
                format!("{gpu7:.0}"),
                format!("{max_qps:.0}"),
                format!("{elsa:.0}"),
                format!("{vs7:.2}x"),
                format!("{vsmax:.2}x"),
            ]);
        }
        print_table(
            &format!("SLA sensitivity — N = {n}× (latency-bounded throughput, q/s)"),
            &[
                "Model",
                "GPU(max)",
                "GPU(7)+FIFS",
                "GPU(max)+FIFS",
                "PARIS+ELSA",
                "vs GPU(7)",
                "vs GPU(max)",
            ],
            &rows,
        );
        println!(
            "Geometric-mean PARIS+ELSA improvement: {:.2}x vs GPU(7), {:.2}x vs GPU(max)",
            geo_gpu7.powf(1.0 / count as f64),
            geo_max.powf(1.0 / count as f64)
        );
    }
    println!(
        "\nPaper reference (N=2.0): 1.7x vs GPU(7) and 1.1x vs GPU(max) on \
         average; gains persist under the looser SLA."
    );
}
