//! `bench_faults` — availability and SLA attainment under GPU failures,
//! behind `BENCH_faults.json`.
//!
//! Hosts MobileNet on two heterogeneous serving shards (4 GPUs + 2 GPUs)
//! with a 2-GPU low-priority batch pool, drives a steady trace at a fixed
//! fraction of fleet capacity, and injects a seeded **GPU-MTTF scenario**
//! (exponential up/down times per GPU lane, `FaultPlan::sample_gpu_mttf`).
//! Three configurations run the identical trace and faults:
//!
//! * `nofault_jsq` — JSQ routing, empty fault plan (the healthy baseline;
//!   also asserts the empty plan reproduces the plain run bit-for-bit);
//! * `jsq`        — JSQ under the fault plan, no loaning: failures kill
//!   instances, work requeues, PARIS re-plans the survivors;
//! * `jsq_loan`   — same faults plus Aryl-style loaning: every fault
//!   triggers an immediate rebalance, so the batch pool backfills lost
//!   capacity (paying reslice + handover downtime per transfer).
//!
//! Headline: loan-assisted recovery beats no-loan on **effective
//! availability** (GPU-time online, crediting backfill) and on **SLA
//! violations under failure**; `recovery_p99_ms` is the worst 250 ms
//! window p99 inside the outage + recovery intervals.
//!
//! Usage: `cargo run --release --bin bench_faults [--quick] [--smoke] [--seed N]`
//!
//! `--smoke` runs a tiny trace — CI uses it to catch bench regressions;
//! the numbers it writes are not comparable.

use std::fmt::Write as _;

use paris_bench::print_table;
use paris_elsa::cluster::{Cluster, LoanPolicy, RouterPolicy};
use paris_elsa::dnn::ModelKind;
use paris_elsa::faults::{run_with_faults, FaultPlan, FaultReport};
use paris_elsa::prelude::*;
use paris_elsa::workload::DriftDetectorConfig;

struct Scenario {
    duration_s: f64,
    seed: u64,
    shard_gpus: Vec<usize>,
    pool_gpus: usize,
    table: ProfileTable,
    dist: BatchDistribution,
    rate_qps: f64,
    mttf_s: f64,
    mttr_s: f64,
}

impl Scenario {
    fn new(duration_s: f64, seed: u64) -> Self {
        let perf = PerfModel::new(DeviceSpec::a100());
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let dist = BatchDistribution::paper_default();
        let shard_gpus = vec![4, 2];
        let fleet_capacity: f64 = shard_gpus
            .iter()
            .map(|&g| {
                Self::shard(&table, &dist, g)
                    .expect("shard plan builds")
                    .capacity_hint_qps()
            })
            .sum();
        Scenario {
            duration_s,
            seed,
            shard_gpus,
            pool_gpus: 2,
            table,
            dist,
            // 60 % of fleet capacity: healthy runs have headroom, a lost
            // GPU pushes the survivors to ~72 % — degraded but
            // survivable, which is where backfill loans earn their keep.
            rate_qps: 0.6 * fleet_capacity,
            // ~2.4 expected failures over the run, each out for ~1/6 of
            // it — a realistic "bad day" compressed into one trace.
            mttf_s: 2.5 * duration_s,
            mttr_s: duration_s / 6.0,
        }
    }

    fn shard(
        table: &ProfileTable,
        dist: &BatchDistribution,
        gpus: usize,
    ) -> Result<MultiModelServer, paris_elsa::paris::PlanError> {
        MultiModelServer::new(
            vec![ModelSpec::new("mobilenet_v1", table.clone(), dist.clone())],
            GpcBudget::new(gpus * 7, gpus),
            MultiModelConfig::new().with_detail(ReportDetail::Summary),
        )
    }

    fn cluster(&self, loaning: bool) -> Cluster {
        let shards = self
            .shard_gpus
            .iter()
            .map(|&g| Self::shard(&self.table, &self.dist, g).expect("shard plan builds"))
            .collect();
        let cluster = Cluster::new(shards, RouterPolicy::JoinShortestQueue);
        if loaning {
            // Half-second decision windows with a lower trust floor: the
            // fault-triggered rebalance reads the freshest closed window,
            // so the detector mostly just has to keep estimates warm.
            cluster.with_loan(
                LoanPolicy::new(self.pool_gpus, 0.5)
                    .with_detector(DriftDetectorConfig::new(0.5).with_min_observations(20)),
            )
        } else {
            cluster
        }
    }

    fn trace(&self) -> MultiTraceGenerator {
        MultiTraceGenerator::new(
            vec![PhaseSpec::new(
                self.duration_s,
                vec![(self.rate_qps, self.dist.clone())],
            )],
            self.seed,
        )
    }

    /// The seeded GPU-MTTF plan; a seed whose draw happens to be empty
    /// falls back to one explicit mid-run outage so the bench always
    /// exercises a failure.
    fn plan(&self) -> FaultPlan {
        let plan = FaultPlan::sample_gpu_mttf(
            &self.shard_gpus,
            self.mttf_s,
            self.mttr_s,
            self.duration_s,
            self.seed,
        );
        if plan.is_empty() {
            FaultPlan::new().with_gpu_outage(0, 0, 0.25 * self.duration_s, 0.6 * self.duration_s)
        } else {
            plan
        }
    }
}

struct Row {
    policy: &'static str,
    availability: f64,
    base_availability: f64,
    worst_violation: f64,
    requeued: u64,
    loans: usize,
    reconfigs: usize,
    recovery_p99_ms: f64,
    healthy_p99_ms: f64,
    achieved_qps: f64,
}

fn row(policy: &'static str, report: &FaultReport) -> Row {
    Row {
        policy,
        availability: report.effective_availability,
        base_availability: report.base_availability,
        worst_violation: report.worst_violation_rate(),
        requeued: report.requeued,
        loans: report.cluster.loans.len(),
        reconfigs: report.cluster.total_reconfigs(),
        recovery_p99_ms: report.degraded_p99_ms.unwrap_or(0.0),
        healthy_p99_ms: report.healthy_p99_ms.unwrap_or(0.0),
        achieved_qps: report.cluster.achieved_qps,
    }
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(37);
    let duration_s = opts.pick(12.0, 6.0, 2.0);
    let scenario = Scenario::new(duration_s, opts.seed);
    let plan = scenario.plan();
    let trace: Vec<_> = scenario.trace().generate();
    let unpinned = || trace.iter().copied().map(|tq| (None, tq));

    // The empty-plan degeneration check: the no-fault run through the
    // fault path must be bit-for-bit the plain run.
    let baseline_cluster = scenario.cluster(false);
    let plain = baseline_cluster.run_stream(trace.iter().copied(), ReportDetail::Full);
    let nofault = run_with_faults(
        &baseline_cluster,
        unpinned(),
        ReportDetail::Full,
        &FaultPlan::new(),
    );
    let bit_identical = plain
        .per_shard
        .iter()
        .zip(&nofault.cluster.per_shard)
        .all(|(a, b)| {
            a.records == b.records
                && a.makespan == b.makespan
                && a.partition_sizes == b.partition_sizes
        })
        && plain.routed == nofault.cluster.routed;
    assert!(
        bit_identical,
        "empty FaultPlan must reproduce the plain run bit-for-bit"
    );

    let bare = run_with_faults(
        &scenario.cluster(false),
        unpinned(),
        ReportDetail::Full,
        &plan,
    );
    let loaned = run_with_faults(
        &scenario.cluster(true),
        unpinned(),
        ReportDetail::Full,
        &plan,
    );
    let rows = [
        row("nofault_jsq", &nofault),
        row("jsq", &bare),
        row("jsq_loan", &loaned),
    ];

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_owned(),
                format!("{:.4}", r.availability),
                format!("{:.4}", r.base_availability),
                format!("{:.4}", r.worst_violation),
                r.requeued.to_string(),
                r.loans.to_string(),
                r.reconfigs.to_string(),
                format!("{:.1}", r.recovery_p99_ms),
                format!("{:.1}", r.healthy_p99_ms),
                format!("{:.0}", r.achieved_qps),
            ]
        })
        .collect();
    print_table(
        &format!(
            "fault injection, {}+{} GPU shards + {} GPU pool, {}s @ {:.0} q/s, \
             {} sampled GPU outages (mttf {:.1}s, mttr {:.1}s)",
            scenario.shard_gpus[0],
            scenario.shard_gpus[1],
            scenario.pool_gpus,
            duration_s,
            scenario.rate_qps,
            plan.gpu_outages().len(),
            scenario.mttf_s,
            scenario.mttr_s,
        ),
        &[
            "policy",
            "avail (eff)",
            "avail (base)",
            "worst viol",
            "requeued",
            "loans",
            "reconfigs",
            "recovery p99",
            "healthy p99",
            "qps",
        ],
        &cells,
    );

    let availability_gain = loaned.effective_availability - bare.effective_availability;
    let violation_ratio = loaned.worst_violation_rate() / bare.worst_violation_rate().max(1e-9);
    println!(
        "\nloan backfill availability gain:      {availability_gain:+.4} \
         ({:.4} -> {:.4})",
        bare.effective_availability, loaned.effective_availability
    );
    println!(
        "loan vs bare violations under faults: {violation_ratio:.2}x \
         ({:.4} -> {:.4})",
        bare.worst_violation_rate(),
        loaned.worst_violation_rate()
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_faults/v1\",\n");
    json.push_str("  \"model\": \"mobilenet_v1\",\n");
    let _ = writeln!(
        json,
        "  \"shard_gpus\": [{}, {}],",
        scenario.shard_gpus[0], scenario.shard_gpus[1]
    );
    let _ = writeln!(json, "  \"pool_gpus\": {},", scenario.pool_gpus);
    let _ = writeln!(json, "  \"duration_secs\": {duration_s},");
    let _ = writeln!(json, "  \"rate_qps\": {:.1},", scenario.rate_qps);
    let _ = writeln!(json, "  \"seed\": {},", scenario.seed);
    let _ = writeln!(json, "  \"mttf_s\": {:.2},", scenario.mttf_s);
    let _ = writeln!(json, "  \"mttr_s\": {:.2},", scenario.mttr_s);
    let _ = writeln!(json, "  \"gpu_outages\": {},", plan.gpu_outages().len());
    let _ = writeln!(
        json,
        "  \"outage_gpu_seconds\": {:.3},",
        bare.outage_gpu_seconds
    );
    let _ = writeln!(json, "  \"empty_plan_bit_identical\": {bit_identical},");
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"availability\": {:.5}, \
             \"base_availability\": {:.5}, \"worst_violation\": {:.5}, \
             \"requeued\": {}, \"loans\": {}, \"reconfigs\": {}, \
             \"recovery_p99_ms\": {:.3}, \"healthy_p99_ms\": {:.3}, \
             \"achieved_qps\": {:.1}}}",
            r.policy,
            r.availability,
            r.base_availability,
            r.worst_violation,
            r.requeued,
            r.loans,
            r.reconfigs,
            r.recovery_p99_ms,
            r.healthy_p99_ms,
            r.achieved_qps
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"loan_availability_gain\": {availability_gain:.5},"
    );
    let _ = writeln!(
        json,
        "  \"loan_vs_bare_violation_ratio\": {violation_ratio:.4}"
    );
    json.push_str("}\n");
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("\nwrote BENCH_faults.json");
}
