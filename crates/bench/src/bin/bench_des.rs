//! `bench_des` — event-queue microbenchmarks behind `BENCH_des.json`.
//!
//! Times the three primitive operations of [`paris_elsa::des::EventQueue`]
//! — `push`, `pop` and the fused `pop_push` — at pending depths 1e2, 1e4
//! and 1e6, plus classic *hold model* access patterns at steady depth
//! (pop the earliest event, reschedule it a random increment into the
//! future — the canonical priority-queue workload and exactly the shape of
//! the simulator's dispatch/complete cycle):
//!
//! * `hold_uniform` — increments uniform in one calendar bucket width, so
//!   nearly every reschedule stays in the near-future calendar.
//! * `hold_burst`   — mostly small increments with a 1-in-64 far-future
//!   spike, forcing far-heap traffic and calendar re-slides.
//! * `hold_passthrough` — `push_pop` with an increment below the front
//!   gap, exercising the zero-insertion passthrough path.
//!
//! Measurement uses the workspace criterion shim (wall-clock budgeted
//! batches; `CRITERION_BUDGET_MS` shortens runs). Each line reports
//! per-op nanoseconds; the JSON artifact records ops/sec per
//! `(op, depth, pattern)` under schema `bench_des/v1`.
//!
//! Usage: `cargo run --release --bin bench_des [--quick] [--smoke] [--seed N]`
//!
//! `--smoke` shrinks the timing budget and the deepest queue — CI uses it
//! to catch regressions; the numbers it writes are not comparable.

use std::fmt::Write as _;

use criterion::{BatchSize, Criterion};
use paris_elsa::des::{EventQueue, SimTime};

/// Events timed per batched iteration of `push`/`pop` (the queue is
/// rebuilt outside the timed region between batches).
const BATCH: usize = 1024;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A queue holding `depth` events with uniformly random times in
/// `[0, depth × mean_gap_ns)` — the steady-state shape of a DES heap.
fn filled(depth: usize, mean_gap_ns: u64, seed: u64) -> (EventQueue<u64>, Rng) {
    let mut rng = Rng(seed | 1);
    let mut q = EventQueue::with_capacity(depth + BATCH);
    let horizon = depth as u64 * mean_gap_ns;
    q.push_batch((0..depth).map(|i| {
        (
            SimTime::from_nanos(rng.next() % horizon.max(1)),
            i as u64,
            i as u64,
        )
    }));
    (q, rng)
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(11);
    if std::env::var("CRITERION_BUDGET_MS").is_err() {
        let ms = opts.pick(300u64, 100, 20);
        std::env::set_var("CRITERION_BUDGET_MS", ms.to_string());
    }
    let budget_ms: u64 = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let depths: &[usize] = if opts.smoke {
        &[100, 10_000]
    } else {
        &[100, 10_000, 1_000_000]
    };
    // Mean inter-event gap: wide enough that a filled queue spans many
    // calendar buckets, small enough to keep times in-range at 1e6 depth.
    const GAP_NS: u64 = 4096;

    let mut c = Criterion::default();
    // (json name, depth, pattern, ops per measured iteration)
    let mut plan: Vec<(String, usize, &str, u64)> = Vec::new();

    for &depth in depths {
        let seed = opts.seed.wrapping_mul(depth as u64 + 1);

        c.bench_function(&format!("push/depth_{depth}"), |b| {
            b.iter_batched(
                || filled(depth, GAP_NS, seed),
                |(mut q, mut rng)| {
                    let horizon = depth as u64 * GAP_NS;
                    for i in 0..BATCH {
                        q.push(SimTime::from_nanos(rng.next() % horizon), i as u64);
                    }
                    q
                },
                BatchSize::LargeInput,
            );
        });
        plan.push((
            format!("push/depth_{depth}"),
            depth,
            "uniform",
            BATCH as u64,
        ));

        c.bench_function(&format!("pop/depth_{depth}"), |b| {
            b.iter_batched(
                || filled(depth, GAP_NS, seed).0,
                |mut q| {
                    for _ in 0..BATCH.min(depth) {
                        std::hint::black_box(q.pop());
                    }
                    q
                },
                BatchSize::LargeInput,
            );
        });
        plan.push((
            format!("pop/depth_{depth}"),
            depth,
            "uniform",
            BATCH.min(depth) as u64,
        ));

        // Hold models: steady depth, one fused reschedule per iteration.
        // The new event fires a random increment after the last *popped*
        // time, so the clock advances like a real simulation's.
        let (mut q, mut rng) = filled(depth, GAP_NS, seed);
        let mut last_ns = 0u64;
        c.bench_function(&format!("pop_push/depth_{depth}/hold_uniform"), |b| {
            b.iter(|| {
                let dt = rng.next() % (2 * GAP_NS);
                let (t, v) = q
                    .pop_push(SimTime::from_nanos(last_ns + dt), dt, 0)
                    .expect("steady depth");
                last_ns = t.as_nanos();
                v
            });
        });
        plan.push((
            format!("pop_push/depth_{depth}/hold_uniform"),
            depth,
            "hold_uniform",
            1,
        ));

        let (mut q, mut rng) = filled(depth, GAP_NS, seed);
        let mut last_ns = 0u64;
        c.bench_function(&format!("pop_push/depth_{depth}/hold_burst"), |b| {
            b.iter(|| {
                let r = rng.next();
                let dt = if r % 64 == 0 {
                    // Far-future spike: past the armed calendar window.
                    GAP_NS * depth as u64 * 4
                } else {
                    r % GAP_NS
                };
                let (t, v) = q
                    .pop_push(SimTime::from_nanos(last_ns + dt), r % 8, 0)
                    .expect("steady depth");
                last_ns = t.as_nanos();
                v
            });
        });
        plan.push((
            format!("pop_push/depth_{depth}/hold_burst"),
            depth,
            "hold_burst",
            1,
        ));

        let (mut q, mut rng) = filled(depth, GAP_NS, seed);
        c.bench_function(&format!("push_pop/depth_{depth}/hold_passthrough"), |b| {
            b.iter(|| {
                // An increment of at most one gap rarely clears the front,
                // so most calls take the zero-insertion passthrough.
                let t = q.peek_time().expect("steady depth");
                let dt = rng.next() % GAP_NS;
                std::hint::black_box(q.push_pop(
                    SimTime::from_nanos(t.as_nanos().saturating_sub(dt)),
                    0,
                    0,
                ))
            });
        });
        plan.push((
            format!("push_pop/depth_{depth}/hold_passthrough"),
            depth,
            "hold_passthrough",
            1,
        ));
    }

    let mode = opts.pick("full", "quick", "smoke");
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_des/v1\",\n");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"budget_ms\": {budget_ms},");
    let _ = writeln!(json, "  \"batch_ops\": {BATCH},");
    json.push_str("  \"ops\": [\n");
    let results = c.results();
    assert_eq!(results.len(), plan.len(), "every planned bench must report");
    for (i, ((name, depth, pattern, ops), res)) in plan.iter().zip(results).enumerate() {
        assert_eq!(&res.name, name, "results out of order");
        let op = name.split('/').next().expect("name has op prefix");
        let ns_per_op = res.mean_ns / *ops as f64;
        let ops_per_sec = 1e9 / ns_per_op;
        let _ = write!(
            json,
            "    {{\"op\": \"{op}\", \"depth\": {depth}, \"pattern\": \"{pattern}\", \
             \"ns_per_op\": {ns_per_op:.2}, \"ops_per_sec\": {ops_per_sec:.0}, \
             \"iters\": {}}}",
            res.iters
        );
        json.push_str(if i + 1 == plan.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_des.json", &json).expect("write BENCH_des.json");
    println!("wrote BENCH_des.json ({mode})");
}
