//! `bench_resilience` — graceful degradation under correlated and partial
//! failures, behind `BENCH_resilience.json`.
//!
//! Two scenarios, each running identical traces and fault schedules across
//! its configurations:
//!
//! 1. **Correlated rack outage + surge, brownout admission control.** Two
//!    3-GPU shards each serve a premium (class 0) and a batch (class 1)
//!    model; GPU lanes are racked pairwise ([`FaultTopology::racks`]) and
//!    `rack0` — two of shard 0's GPUs — goes out in the middle of a load
//!    surge. `noshed` admits everything and converts the capacity hole
//!    into fleet-wide SLA death; `shed` adds a [`ShedPolicy`] that rejects
//!    batch queries at admission when the picked shard's projected delay
//!    exhausts the SLA budget, concentrating survivor capacity on premium
//!    traffic. Invariant 10 is asserted: offered = served + shed, exactly,
//!    and premium is never shed.
//!
//! 2. **Slow-GPU (partial degradation), placement-aware vs blind.** One
//!    3-GPU shard; thermal throttling slows GPU 0 by 4× for half the run
//!    ([`FaultPlan::with_gpu_degrade`]). `aware` (the default) lets
//!    ELSA see the inflated service estimates and steer queries around the
//!    sick hardware; `blind` ([`MultiModelConfig::with_degrade_blind`])
//!    schedules on clean profiles while physical service times stretch.
//!
//! Headlines: shedding must hold the premium tail where `noshed` violates,
//! and degradation-aware placement must beat degradation-blind on the
//! degraded-window tail. The empty-plan degeneration check (an empty
//! [`FaultPlan`] is bit-for-bit the fault-free run) guards the whole fault
//! path.
//!
//! Usage: `cargo run --release --bin bench_resilience [--quick] [--smoke] [--seed N]`
//!
//! `--smoke` runs a tiny trace — CI uses it to catch bench regressions;
//! the numbers it writes are not comparable.

use std::fmt::Write as _;

use paris_bench::print_table;
use paris_bench::scenarios::{mobilenet_table, RackScenario, SlowScenario};
use paris_elsa::faults::{run_with_faults, FaultPlan, FaultReport};
use paris_elsa::metrics::LatencyHistogram;
use paris_elsa::prelude::*;

/// Model 0 = premium, model 1 = batch throughout the rack scenario.
struct RackRow {
    policy: &'static str,
    premium_p99_ms: f64,
    premium_violation: f64,
    batch_p99_ms: f64,
    shed_premium: u64,
    shed_batch: u64,
    served_premium: u64,
    served_batch: u64,
    goodput_qps: f64,
    availability: f64,
}

/// Fleet-wide latency histogram of one model across every shard.
fn model_histogram(report: &FaultReport, model: usize) -> LatencyHistogram {
    LatencyHistogram::merged(
        report
            .cluster
            .per_shard
            .iter()
            .map(|s| &s.per_model[model].histogram),
    )
}

/// Fleet-wide exact SLA violation rate of one model.
fn model_violation_rate(report: &FaultReport, model: usize) -> f64 {
    let (violations, completed) = report
        .cluster
        .per_shard
        .iter()
        .map(|s| {
            (
                s.per_model[model].sla_violations,
                s.per_model[model].completed,
            )
        })
        .fold((0u64, 0u64), |(v, c), (dv, dc)| (v + dv, c + dc));
    if completed == 0 {
        0.0
    } else {
        violations as f64 / completed as f64
    }
}

fn rack_row(policy: &'static str, report: &FaultReport) -> RackRow {
    let class = |v: &[u64], c: usize| v.get(c).copied().unwrap_or(0);
    // Served counts come from per-model completions so the no-policy
    // baseline row is populated too (served_per_class is empty without a
    // ShedPolicy).
    let served = |m: usize| {
        report
            .cluster
            .per_shard
            .iter()
            .map(|s| s.per_model[m].completed)
            .sum::<u64>()
    };
    RackRow {
        policy,
        premium_p99_ms: model_histogram(report, 0).percentile_ms(0.99),
        premium_violation: model_violation_rate(report, 0),
        batch_p99_ms: model_histogram(report, 1).percentile_ms(0.99),
        shed_premium: class(&report.shed_per_class, 0),
        shed_batch: class(&report.shed_per_class, 1),
        served_premium: served(0),
        served_batch: served(1),
        goodput_qps: report.goodput_qps(),
        availability: report.effective_availability,
    }
}

// ---------------------------------------------------------------------------
// Scenario 2: slow-GPU partial degradation, placement-aware vs blind.
// ---------------------------------------------------------------------------

struct SlowRow {
    policy: &'static str,
    p99_ms: f64,
    degraded_p99_ms: f64,
    healthy_p99_ms: f64,
    violation: f64,
    achieved_qps: f64,
}

fn slow_row(policy: &'static str, report: &FaultReport) -> SlowRow {
    SlowRow {
        policy,
        p99_ms: report.cluster.histogram.percentile_ms(0.99),
        degraded_p99_ms: report.degraded_p99_ms.unwrap_or(0.0),
        healthy_p99_ms: report.healthy_p99_ms.unwrap_or(0.0),
        violation: report.worst_violation_rate(),
        achieved_qps: report.cluster.achieved_qps,
    }
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(41);
    let duration_s = opts.pick(12.0, 6.0, 2.0);
    let table = mobilenet_table();

    // -- Scenario 1: rack outage + surge, noshed vs shed -------------------
    let rack = RackScenario::new(duration_s, opts.seed, &table);
    let rack_trace = rack.trace();
    let rack_plan = rack.plan();
    let unpinned = || rack_trace.iter().copied().map(|tq| (None, tq));

    // Empty-plan degeneration guard: the fault path must cost nothing
    // until an event fires.
    let baseline = rack.cluster(false);
    let plain = baseline.run_stream(rack_trace.iter().copied(), ReportDetail::Full);
    let nofault = run_with_faults(&baseline, unpinned(), ReportDetail::Full, &FaultPlan::new());
    let bit_identical = plain
        .per_shard
        .iter()
        .zip(&nofault.cluster.per_shard)
        .all(|(a, b)| {
            a.records == b.records
                && a.makespan == b.makespan
                && a.partition_sizes == b.partition_sizes
        })
        && plain.routed == nofault.cluster.routed;
    assert!(
        bit_identical,
        "empty FaultPlan must reproduce the plain run bit-for-bit"
    );

    let noshed = run_with_faults(
        &rack.cluster(false),
        unpinned(),
        ReportDetail::Full,
        &rack_plan,
    );
    let shed = run_with_faults(
        &rack.cluster(true),
        unpinned(),
        ReportDetail::Full,
        &rack_plan,
    );
    // Invariant 10: every offered query is exactly served-or-shed.
    for (name, report) in [("noshed", &noshed), ("shed", &shed)] {
        let completed: u64 = report
            .cluster
            .per_shard
            .iter()
            .map(|s| s.records.len() as u64)
            .sum();
        assert_eq!(
            completed + report.shed_total,
            rack_trace.len() as u64,
            "{name}: offered must equal served + shed"
        );
    }
    assert_eq!(
        shed.shed_per_class.first().copied().unwrap_or(0),
        0,
        "premium (class 0) is never shed"
    );

    let rack_rows = [rack_row("noshed", &noshed), rack_row("shed", &shed)];
    let cells: Vec<Vec<String>> = rack_rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_owned(),
                format!("{:.1}", r.premium_p99_ms),
                format!("{:.4}", r.premium_violation),
                format!("{:.1}", r.batch_p99_ms),
                r.shed_premium.to_string(),
                r.shed_batch.to_string(),
                r.served_premium.to_string(),
                r.served_batch.to_string(),
                format!("{:.0}", r.goodput_qps),
                format!("{:.4}", r.availability),
            ]
        })
        .collect();
    print_table(
        &format!(
            "rack outage + surge: {:?} GPU shards racked by {}, rack0 out [{:.1}s, {:.1}s], \
             surge {:.0} q/s per class",
            rack.shard_gpus, rack.gpus_per_rack, rack.outage.0, rack.outage.1, rack.surge_qps,
        ),
        &[
            "policy",
            "prem p99",
            "prem viol",
            "batch p99",
            "shed prem",
            "shed batch",
            "served prem",
            "served batch",
            "goodput",
            "avail (eff)",
        ],
        &cells,
    );
    // -- Scenario 2: slow GPU, aware vs blind ------------------------------
    let slow = SlowScenario::new(duration_s, opts.seed, &table);
    let slow_trace = slow.trace();
    let slow_plan = slow.plan();
    let slow_unpinned = || slow_trace.iter().copied().map(|tq| (None, tq));
    let blind = run_with_faults(
        &slow.cluster(false),
        slow_unpinned(),
        ReportDetail::Full,
        &slow_plan,
    );
    let aware = run_with_faults(
        &slow.cluster(true),
        slow_unpinned(),
        ReportDetail::Full,
        &slow_plan,
    );
    for (name, report) in [("blind", &blind), ("aware", &aware)] {
        let completed: usize = report
            .cluster
            .per_shard
            .iter()
            .map(|s| s.records.len())
            .sum();
        assert_eq!(
            completed,
            slow_trace.len(),
            "{name}: degradation never drops a query"
        );
        assert_eq!(report.shed_total, 0, "{name}: no shed policy, no shedding");
    }
    let slow_rows = [slow_row("blind", &blind), slow_row("aware", &aware)];
    let cells: Vec<Vec<String>> = slow_rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_owned(),
                format!("{:.1}", r.p99_ms),
                format!("{:.1}", r.degraded_p99_ms),
                format!("{:.1}", r.healthy_p99_ms),
                format!("{:.4}", r.violation),
                format!("{:.0}", r.achieved_qps),
            ]
        })
        .collect();
    print_table(
        &format!(
            "slow GPU: 1 of {} GPUs at {:.0}x service time over [{:.1}s, {:.1}s]",
            slow.gpus, slow.factor, slow.window.0, slow.window.1,
        ),
        &[
            "placement",
            "p99",
            "degraded p99",
            "healthy p99",
            "worst viol",
            "qps",
        ],
        &cells,
    );

    let violation_cut = rack_rows[1].premium_violation / rack_rows[0].premium_violation.max(1e-9);
    println!(
        "\nshed vs noshed premium violations:   {violation_cut:.3}x \
         ({:.4} -> {:.4})",
        rack_rows[0].premium_violation, rack_rows[1].premium_violation
    );
    let aware_ratio = slow_rows[1].p99_ms / slow_rows[0].p99_ms.max(1e-9);
    println!(
        "aware vs blind p99 under slow GPU:   {aware_ratio:.3}x \
         ({:.1} ms -> {:.1} ms)",
        slow_rows[0].p99_ms, slow_rows[1].p99_ms
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_resilience/v1\",\n");
    json.push_str("  \"model\": \"mobilenet_v1\",\n");
    let _ = writeln!(json, "  \"duration_secs\": {duration_s},");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"empty_plan_bit_identical\": {bit_identical},");
    json.push_str("  \"rack_outage\": {\n");
    let _ = writeln!(
        json,
        "    \"shard_gpus\": [{}, {}],",
        rack.shard_gpus[0], rack.shard_gpus[1]
    );
    let _ = writeln!(json, "    \"gpus_per_rack\": {},", rack.gpus_per_rack);
    let _ = writeln!(
        json,
        "    \"outage_secs\": [{:.3}, {:.3}],",
        rack.outage.0, rack.outage.1
    );
    let _ = writeln!(
        json,
        "    \"calm_qps\": {:.1}, \"surge_qps\": {:.1},",
        rack.calm_qps, rack.surge_qps
    );
    json.push_str("    \"configs\": [\n");
    for (i, r) in rack_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"policy\": \"{}\", \"premium_p99_ms\": {:.3}, \
             \"premium_violation\": {:.5}, \"batch_p99_ms\": {:.3}, \
             \"shed_premium\": {}, \"shed_batch\": {}, \
             \"served_premium\": {}, \"served_batch\": {}, \
             \"goodput_qps\": {:.1}, \"availability\": {:.5}}}",
            r.policy,
            r.premium_p99_ms,
            r.premium_violation,
            r.batch_p99_ms,
            r.shed_premium,
            r.shed_batch,
            r.served_premium,
            r.served_batch,
            r.goodput_qps,
            r.availability
        );
        json.push_str(if i + 1 < rack_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"shed_vs_noshed_premium_violation_ratio\": {violation_cut:.4}"
    );
    json.push_str("  },\n");
    json.push_str("  \"slow_gpu\": {\n");
    let _ = writeln!(json, "    \"gpus\": {},", slow.gpus);
    let _ = writeln!(json, "    \"factor\": {:.1},", slow.factor);
    let _ = writeln!(
        json,
        "    \"window_secs\": [{:.3}, {:.3}],",
        slow.window.0, slow.window.1
    );
    let _ = writeln!(
        json,
        "    \"degrade_gpu_seconds\": {:.3},",
        aware.degrade_gpu_seconds
    );
    json.push_str("    \"configs\": [\n");
    for (i, r) in slow_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"policy\": \"{}\", \"p99_ms\": {:.3}, \
             \"degraded_p99_ms\": {:.3}, \"healthy_p99_ms\": {:.3}, \
             \"worst_violation\": {:.5}, \"achieved_qps\": {:.1}}}",
            r.policy, r.p99_ms, r.degraded_p99_ms, r.healthy_p99_ms, r.violation, r.achieved_qps
        );
        json.push_str(if i + 1 < slow_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"aware_vs_blind_p99_ratio\": {aware_ratio:.4}");
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");
    println!("\nwrote BENCH_resilience.json");
}
