//! `bench_cluster` — static sharding vs load-aware routing vs capacity
//! loaning, behind `BENCH_cluster.json`.
//!
//! Hosts MobileNet on two heterogeneous serving shards (4 GPUs + 2 GPUs)
//! with a 2-GPU low-priority batch pool, and drives a drifting
//! calm → surge → calm trace. Three cluster configurations are searched
//! for the largest load scale at which the whole fleet's p95 stays within
//! the SLA (the cluster analogue of the paper's latency-bounded
//! throughput, via the shared parallel doubling search):
//!
//! * `static`  — static-hash partitioning, fixed budgets (the baseline
//!   every gateway starts from);
//! * `jsq`     — join-shortest-queue on per-shard outstanding load;
//! * `jsq_loan`— JSQ plus Aryl-style loaning: the batch pool lends whole
//!   GPUs to overloaded shards during the surge and reclaims them after,
//!   paying MIG reslice + handover downtime on every transfer.
//!
//! Usage: `cargo run --release --bin bench_cluster [--quick] [--smoke] [--seed N]`
//!
//! `--smoke` runs a tiny trace with a shallow search — CI uses it to catch
//! bench regressions without paying for a real measurement; the numbers it
//! writes are not comparable.

use std::fmt::Write as _;

use paris_bench::print_table;
use paris_elsa::cluster::{Cluster, LoanPolicy, RouterPolicy};
use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::ReconfigMode;
use paris_elsa::prelude::*;

/// The SLA-attainment target: the worst shard × model p95 must stay
/// within its SLA.
const P95_TARGET_RATIO: f64 = 1.0;

struct Scenario {
    phase_secs: f64,
    seed: u64,
    shard_gpus: Vec<usize>,
    pool_gpus: usize,
    table: ProfileTable,
    dist: BatchDistribution,
    /// Nominal calm-phase rate (the surge doubles it), queries/second.
    calm_qps: f64,
}

impl Scenario {
    fn new(phase_secs: f64, seed: u64) -> Self {
        let perf = PerfModel::new(DeviceSpec::a100());
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let dist = BatchDistribution::paper_default();
        let shard_gpus = vec![4, 2];
        // Calm at ~35 % of the serving fleet's planned capacity; the surge
        // doubles that to ~70 %, so the binding constraint at high scales
        // is the surge — exactly where loaned GPUs pay off.
        let fleet_capacity: f64 = shard_gpus
            .iter()
            .map(|&g| {
                Self::shard(&table, &dist, g)
                    .expect("shard plan builds")
                    .capacity_hint_qps()
            })
            .sum();
        Scenario {
            phase_secs,
            seed,
            shard_gpus,
            pool_gpus: 2,
            table,
            dist,
            calm_qps: 0.35 * fleet_capacity,
        }
    }

    fn shard(
        table: &ProfileTable,
        dist: &BatchDistribution,
        gpus: usize,
    ) -> Result<MultiModelServer, paris_elsa::paris::PlanError> {
        MultiModelServer::new(
            vec![ModelSpec::new("mobilenet_v1", table.clone(), dist.clone())],
            GpcBudget::new(gpus * 7, gpus),
            MultiModelConfig::new().with_detail(ReportDetail::Summary),
        )
    }

    fn cluster(&self, router: RouterPolicy, loaning: Option<ReconfigMode>) -> Cluster {
        let shards = self
            .shard_gpus
            .iter()
            .map(|&g| Self::shard(&self.table, &self.dist, g).expect("shard plan builds"))
            .collect();
        let cluster = Cluster::new(shards, router);
        if let Some(mode) = loaning {
            // Decide on half-second windows: several decisions fit into
            // each phase, and a window holds plenty of arrivals at every
            // scale the search probes.
            cluster.with_loan(LoanPolicy::new(self.pool_gpus, 0.5).with_mode(mode))
        } else {
            cluster
        }
    }

    /// The calm → surge → calm schedule at load scale `scale`.
    fn trace(&self, scale: f64) -> MultiTraceGenerator {
        let d = &self.dist;
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(self.phase_secs, vec![(self.calm_qps, d.clone())]),
                PhaseSpec::new(self.phase_secs, vec![(2.0 * self.calm_qps, d.clone())]),
                PhaseSpec::new(self.phase_secs, vec![(self.calm_qps, d.clone())]),
            ],
            self.seed,
        )
        .with_rate_scale(scale)
    }
}

#[derive(Clone, Copy)]
struct Point {
    scale: f64,
    worst_p95_ratio: f64,
    worst_violation: f64,
    achieved_qps: f64,
    loans: usize,
    reconfigs: usize,
    loaned_gpu_seconds: f64,
}

fn measure(cluster: &Cluster, scenario: &Scenario, scale: f64) -> Point {
    let report = cluster.run_stream(scenario.trace(scale).stream(), ReportDetail::Summary);
    Point {
        scale,
        worst_p95_ratio: report.worst_p95_sla_ratio(),
        worst_violation: report.worst_violation_rate(),
        achieved_qps: report.achieved_qps,
        loans: report.loans.len(),
        reconfigs: report.total_reconfigs(),
        loaned_gpu_seconds: report.loaned_gpu_seconds,
    }
}

/// The largest load scale at which the fleet's worst p95/SLA stays within
/// [`P95_TARGET_RATIO`] — the shared scale search
/// (`paris_bench::max_scale_search`) over whole cluster runs — plus the
/// nominal (scale 1.0) point the search probed on the way.
fn search(cluster: &Cluster, scenario: &Scenario, steps: usize) -> paris_bench::ScaleSearch<Point> {
    paris_bench::max_scale_search(
        steps,
        |scale| measure(cluster, scenario, scale),
        |p: &Point| p.worst_p95_ratio <= P95_TARGET_RATIO,
        Point {
            scale: 0.0,
            worst_p95_ratio: f64::INFINITY,
            worst_violation: 1.0,
            achieved_qps: 0.0,
            loans: 0,
            reconfigs: 0,
            loaned_gpu_seconds: 0.0,
        },
    )
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(29);
    // Phases must fit several loan-decision windows plus the reslice
    // outage, or loaning has no runway; smoke mode only proves the
    // pipeline runs.
    let phase_secs = opts.pick(8.0, 4.0, 2.0);
    let steps = if opts.smoke { 2 } else { 6 };
    let seed = opts.seed;
    let scenario = Scenario::new(phase_secs, seed);

    let configs: [(&str, RouterPolicy, Option<ReconfigMode>); 3] = [
        ("static", RouterPolicy::StaticHash, None),
        ("jsq", RouterPolicy::JoinShortestQueue, None),
        (
            "jsq_loan",
            RouterPolicy::JoinShortestQueue,
            // Workspace-default staging (Rolling since PR 6); the dip
            // comparison below still pins both modes.
            Some(ReconfigMode::default()),
        ),
    ];
    let mut results: Vec<(&str, Point, Point)> = Vec::new();
    for &(name, router, loaning) in &configs {
        let cluster = scenario.cluster(router, loaning);
        let found = search(&cluster, &scenario, steps);
        results.push((name, found.best, found.nominal));
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, best, nominal)| {
            vec![
                (*name).to_owned(),
                format!("{:.3}", best.scale),
                format!("{:.0}", best.achieved_qps),
                format!("{:.3}", best.worst_p95_ratio),
                format!("{:.4}", nominal.worst_violation),
                best.loans.to_string(),
                best.reconfigs.to_string(),
                format!("{:.2}", best.loaned_gpu_seconds),
            ]
        })
        .collect();
    print_table(
        &format!(
            "cluster sharding, {}+{} GPU shards + {} GPU pool, {}s/phase calm-surge-calm",
            scenario.shard_gpus[0], scenario.shard_gpus[1], scenario.pool_gpus, phase_secs
        ),
        &[
            "policy",
            "max scale",
            "qps @ max",
            "p95/sla @ max",
            "viol @ 1.0",
            "loans @ max",
            "reconfigs @ max",
            "gpu·s lent @ max",
        ],
        &rows,
    );

    let static_qps = results[0].1.achieved_qps;
    let jsq_qps = results[1].1.achieved_qps;
    let loan_qps = results[2].1.achieved_qps;
    let loan_vs_static = loan_qps / static_qps.max(1e-9);
    let jsq_vs_static = jsq_qps / static_qps.max(1e-9);
    println!("\njsq vs static latency-bounded throughput:      {jsq_vs_static:.2}x");
    println!("jsq+loan vs static latency-bounded throughput: {loan_vs_static:.2}x");

    // Transition-dip comparison: worst tumbling-window p99 across the
    // fleet over the queries completing *during a reconfiguration*
    // (loan-triggered re-plans included), measured at the loaning config's
    // own latency-bounded max scale — where capacity is binding and the
    // handover outage is visible. Rolling staging bounds how much of the
    // borrowing shard is offline at once.
    let dip_window_ms = 250.0_f64;
    let dip_scale = results[2].1.scale.max(0.25);
    let dip = |mode: ReconfigMode| {
        let cluster = scenario.cluster(RouterPolicy::JoinShortestQueue, Some(mode));
        let report = cluster.run_stream(scenario.trace(dip_scale).stream(), ReportDetail::Full);
        // Transition intervals are fleet-wide: while one shard reslices,
        // the JSQ router shifts its load onto the others, so the spike
        // can materialize on a shard that is not itself reconfiguring.
        let transitions: Vec<(u64, u64)> = report
            .per_shard
            .iter()
            .flat_map(|s| &s.reconfigs)
            .map(|rc| (rc.triggered_at.as_nanos(), rc.completed_at.as_nanos()))
            .collect();
        paris_bench::transition_dip_p99_ms(
            (dip_window_ms * 1e6) as u64,
            &transitions,
            report
                .per_shard
                .iter()
                .flat_map(|s| &s.records)
                .map(|r| (r.completed.as_nanos(), r.latency().as_nanos())),
        )
    };
    let dip_all_at_once = dip(ReconfigMode::AllAtOnce);
    let dip_rolling = dip(ReconfigMode::Rolling);
    let dip_fallback = dip_all_at_once.fallback_whole_run || dip_rolling.fallback_whole_run;
    let dip_ratio = dip_rolling.worst_p99_ms / dip_all_at_once.worst_p99_ms.max(1e-9);
    println!(
        "reconfig dip (worst {dip_window_ms:.0} ms-window p99 during re-plans @ {dip_scale:.2}x): \
         all-at-once {:.2} ms, rolling {:.2} ms ({dip_ratio:.2}x{})",
        dip_all_at_once.worst_p99_ms,
        dip_rolling.worst_p99_ms,
        if dip_fallback {
            ", whole-run fallback"
        } else {
            ""
        }
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_cluster/v2\",\n");
    json.push_str("  \"model\": \"mobilenet_v1\",\n");
    let _ = writeln!(
        json,
        "  \"shard_gpus\": [{}, {}],",
        scenario.shard_gpus[0], scenario.shard_gpus[1]
    );
    let _ = writeln!(json, "  \"pool_gpus\": {},", scenario.pool_gpus);
    let _ = writeln!(json, "  \"phase_secs\": {phase_secs},");
    let _ = writeln!(json, "  \"calm_qps\": {:.1},", scenario.calm_qps);
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"p95_target_ratio\": {P95_TARGET_RATIO},");
    json.push_str("  \"configs\": [\n");
    for (i, (name, best, nominal)) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{name}\", \"max_scale\": {:.4}, \
             \"latency_bounded_qps\": {:.1}, \"worst_p95_sla_ratio_at_max\": {:.4}, \
             \"worst_violation_at_nominal\": {:.5}, \"loans_at_max\": {}, \
             \"reconfigs_at_max\": {}, \"loaned_gpu_seconds_at_max\": {:.3}}}",
            best.scale,
            best.achieved_qps,
            best.worst_p95_ratio,
            nominal.worst_violation,
            best.loans,
            best.reconfigs,
            best.loaned_gpu_seconds
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"jsq_vs_static_speedup\": {jsq_vs_static:.3},");
    let _ = writeln!(
        json,
        "  \"jsq_loan_vs_static_speedup\": {loan_vs_static:.3},"
    );
    let _ = writeln!(
        json,
        "  \"reconfig_dip\": {{\"window_ms\": {dip_window_ms}, \"scale\": {dip_scale:.4}, \
         \"all_at_once_worst_p99_ms\": {:.3}, \
         \"rolling_worst_p99_ms\": {:.3}, \
         \"rolling_vs_all_at_once\": {dip_ratio:.4}, \
         \"fallback_whole_run\": {dip_fallback}}}",
        dip_all_at_once.worst_p99_ms, dip_rolling.worst_p99_ms
    );
    json.push_str("}\n");
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    println!("\nwrote BENCH_cluster.json");
}
