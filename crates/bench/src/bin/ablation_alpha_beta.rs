//! **Ablation D2** — ELSA's slack-predictor parameters α and β
//! (Equation 2) on ResNet: how conservative/optimistic slack estimation
//! shifts throughput and SLA violations.
//!
//! ```text
//! cargo run -p paris-bench --release --bin ablation_alpha_beta [-- --quick]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;
use paris_elsa::server::measure_point;

fn main() {
    let opts = ExperimentOpts::from_args();
    let bed = Testbed::paper_default(ModelKind::ResNet50);
    let sweep = opts.sweep(&bed);
    let plan = bed.plan(DesignPoint::ParisElsa).expect("plan builds");
    let sla = bed.sla_ns();

    let mut rows = Vec::new();
    for (alpha, beta) in [
        (0.5, 1.0),
        (0.8, 1.0),
        (1.0, 1.0), // the default
        (1.5, 1.0),
        (2.0, 1.0),
        (1.0, 0.5),
        (1.0, 1.5),
        (1.0, 2.0),
    ] {
        let cfg = ElsaConfig::new(sla).with_alpha(alpha).with_beta(beta);
        let server = InferenceServer::from_plan(
            &plan,
            bed.table().clone(),
            ServerConfig::new(SchedulerKind::Elsa(cfg)),
        );
        let hint = paris_elsa::server::capacity_hint_qps(&server, bed.distribution());
        let search = search_latency_bounded_throughput(
            &server,
            bed.distribution(),
            &sweep,
            (hint * 0.2).max(1.0),
        );
        // Also measure violation behaviour at a fixed 60%-of-capacity load.
        let probe = measure_point(&server, bed.distribution(), hint * 0.6, &sweep);
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{beta:.1}"),
            format!("{:.0}", search.latency_bounded_qps),
            format!("{:.2}", probe.p95_ms),
            format!("{:.2}", probe.sla_violation_rate * 100.0),
        ]);
    }
    print_table(
        "Ablation D2 — ELSA α/β on ResNet (PARIS plan)",
        &[
            "alpha",
            "beta",
            "LBT (q/s)",
            "p95@60% (ms)",
            "violations@60% (%)",
        ],
        &rows,
    );
    println!(
        "\nReading: α,β > 1 make the predictor conservative (queries spill \
         to larger partitions earlier — fewer violations, some throughput \
         loss); α,β < 1 overcommit small partitions. α=β=1 is the paper's \
         setting."
    );
}
