//! **Ablation D1** — knee-detection rule: latency-takeoff factor sweep vs
//! the paper's utilization-threshold rule (Algorithm 1 line 8), on ResNet
//! and MobileNet.
//!
//! ```text
//! cargo run -p paris-bench --release --bin ablation_knee [-- --quick]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::KneeRule;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    let rules = [
        ("takeoff 1.10", KneeRule::LatencyTakeoff(1.10)),
        ("takeoff 1.25*", KneeRule::LatencyTakeoff(1.25)),
        ("takeoff 1.50", KneeRule::LatencyTakeoff(1.5)),
        ("takeoff 2.00", KneeRule::LatencyTakeoff(2.0)),
        ("util ≥ 0.6", KneeRule::UtilizationThreshold(0.6)),
        ("util ≥ 0.8", KneeRule::UtilizationThreshold(0.8)),
    ];
    let mut rows = Vec::new();
    for model in [ModelKind::MobileNet, ModelKind::ResNet50] {
        for (name, rule) in rules {
            let bed = Testbed::paper_default(model).with_knee_rule(rule);
            let sweep = opts.sweep(&bed);
            let plan = bed.plan(DesignPoint::ParisElsa).expect("plan builds");
            let qps = bed
                .latency_bounded_qps(DesignPoint::ParisElsa, &sweep)
                .expect("plan builds");
            rows.push(vec![
                model.to_string(),
                name.to_string(),
                format!("{qps:.0}"),
                plan.to_string(),
            ]);
        }
    }
    print_table(
        "Ablation D1 — knee rule (PARIS+ELSA latency-bounded throughput; * = default)",
        &["Model", "Knee rule", "Throughput (q/s)", "PARIS plan"],
        &rows,
    );
    println!(
        "\nReading: too-early knees over-provision large partitions (wasting \
         GPCs); too-late knees assign SLA-violating batches to small ones. \
         The utilization rule degenerates on overhead-bound models whose SM \
         utilization never crosses the threshold."
    );
}
