//! **Ablation D3** — ELSA's Step B fallback when no partition can meet SLA:
//! the paper's fastest-service rule vs always-smallest / always-largest.
//!
//! ```text
//! cargo run -p paris-bench --release --bin ablation_fallback [-- --quick]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::FallbackPolicy;
use paris_elsa::prelude::*;
use paris_elsa::server::measure_point;

fn main() {
    let opts = ExperimentOpts::from_args();
    let mut rows = Vec::new();
    for model in [ModelKind::MobileNet, ModelKind::BertBase] {
        let bed = Testbed::paper_default(model);
        let sweep = opts.sweep(&bed);
        let plan = bed.plan(DesignPoint::ParisElsa).expect("plan builds");
        for (name, fallback) in [
            ("fastest service*", FallbackPolicy::FastestService),
            ("smallest partition", FallbackPolicy::SmallestPartition),
            ("largest partition", FallbackPolicy::LargestPartition),
        ] {
            let cfg = ElsaConfig::new(bed.sla_ns()).with_fallback(fallback);
            let server = InferenceServer::from_plan(
                &plan,
                bed.table().clone(),
                ServerConfig::new(SchedulerKind::Elsa(cfg)),
            );
            let hint = paris_elsa::server::capacity_hint_qps(&server, bed.distribution());
            let search = search_latency_bounded_throughput(
                &server,
                bed.distribution(),
                &sweep,
                (hint * 0.2).max(1.0),
            );
            // Overload probe: 120% of capacity, where Step B actually fires.
            let probe = measure_point(&server, bed.distribution(), hint * 1.2, &sweep);
            rows.push(vec![
                model.to_string(),
                name.to_string(),
                format!("{:.0}", search.latency_bounded_qps),
                format!("{:.1}", probe.p95_ms),
                format!("{:.1}", probe.sla_violation_rate * 100.0),
            ]);
        }
    }
    print_table(
        "Ablation D3 — ELSA Step-B fallback (* = paper's rule)",
        &[
            "Model",
            "Fallback",
            "LBT (q/s)",
            "p95@120% (ms)",
            "violations@120% (%)",
        ],
        &rows,
    );
    println!(
        "\nReading: servicing doomed queries as fast as possible (the \
         paper's rule) minimizes their damage to queries that can still \
         meet SLA; dumping them on the smallest partitions compounds the \
         backlog exactly where slack is scarcest."
    );
}
