//! **Figure 4** — (a) utilization and (b) latency versus batch size (1–64)
//! for MobileNet / ResNet / BERT on every partition size, with the
//! `MaxBatch_knee` markers PARIS derives.
//!
//! ```text
//! cargo run -p paris-bench --release --bin fig04
//! ```

use paris_bench::print_table;
use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::{find_knees, KneeRule};
use paris_elsa::prelude::*;

const BATCHES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    let perf = PerfModel::new(DeviceSpec::a100());
    for model in [
        ModelKind::MobileNet,
        ModelKind::ResNet50,
        ModelKind::BertBase,
    ] {
        let graph = model.build();
        let table = ProfileTable::profile(&graph, &perf, &ProfileSize::ALL, 64);

        let mut util_rows = Vec::new();
        let mut lat_rows = Vec::new();
        for size in ProfileSize::ALL {
            let mut util_row = vec![size.to_string()];
            let mut lat_row = vec![size.to_string()];
            for b in BATCHES {
                util_row.push(format!("{:.0}", table.utilization(size, b) * 100.0));
                lat_row.push(format!("{:.2}", table.latency_s(size, b) * 1e3));
            }
            util_rows.push(util_row);
            lat_rows.push(lat_row);
        }
        let headers = [
            "Partition",
            "b=1",
            "b=2",
            "b=4",
            "b=8",
            "b=16",
            "b=32",
            "b=64",
        ];
        print_table(
            &format!("Figure 4(a) — {model} utilization (%) vs batch"),
            &headers,
            &util_rows,
        );
        print_table(
            &format!("Figure 4(b) — {model} latency (ms) vs batch"),
            &headers,
            &lat_rows,
        );

        let knees = find_knees(&table, KneeRule::default());
        let marks: Vec<String> = knees
            .iter()
            .map(|k| format!("{}→B={}", k.size, k.batch))
            .collect();
        println!(
            "MaxBatch_knee markers (blue diamonds): {}",
            marks.join(", ")
        );
    }
    println!(
        "\nPaper shape check: utilization and latency rise monotonically \
         with batch; small partitions saturate (knee) at smaller batches \
         than large partitions; BERT's knees sit left of MobileNet's."
    );
}
