//! `trace_report` — the query-lifecycle flight-recorder analyzer.
//!
//! Re-runs the resilience rack scenario (surge + correlated rack outage,
//! brownout shedding) with the recorder attached and prints, from the
//! merged trace alone:
//!
//! - the **exact latency breakdown** per query class — frontend wait,
//!   plain queue wait, reconfig-downtime wait, clean service, degrade
//!   inflation, service noise — components that sum to the measured
//!   end-to-end latency in integer nanoseconds with no residual;
//! - **per-shard utilization timelines** on the metric registry's fixed
//!   grid: busy-GPC fraction and outstanding queries per 250 ms window,
//!   rendered as digit strips (`0`–`9` ≙ 0–100 %);
//! - the **admission ledger** (offered = routed + shed) and lifecycle
//!   conservation check.
//!
//! Optional sections and exports of the same trace:
//!
//! - `--slo` — evaluate the default burn-rate SLOs (premium 95 % /
//!   batch 50 % availability) on the registry, print the deterministic
//!   alert log plus each fired alert's causal tail attribution (ranked
//!   causes summing to the worst window's p99 excess with zero
//!   residual), and annotate the `--trace` export with alert rows;
//! - `--metrics <path>` — dump every registry series: `.csv` extension
//!   writes `series,bin,t_ns,value` rows, anything else one JSONL
//!   object per series;
//! - `--trace <path>` — Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto (with SLO alert rows under `--slo`);
//! - `--jsonl <path>` — one JSON record per line in global
//!   `(time, key, lane, seq)` order, for ad-hoc scripting.
//!
//! Usage: `cargo run --release --bin trace_report [--quick] [--smoke] \
//!          [--seed N] [--slo] [--metrics out.jsonl|out.csv] \
//!          [--trace out.trace.json] [--jsonl out.jsonl]`

use paris_bench::scenarios::{mobilenet_table, RackScenario};
use paris_bench::{arg_value, print_table};
use paris_elsa::faults::run_with_faults_traced;
use paris_elsa::obs::{
    alert_records, analyze, attribute_alerts, check_conservation, chrome_trace_json, evaluate_slos,
    jsonl, metrics_csv, metrics_jsonl, write_alert_rows, write_query_trace, ChromeTraceWriter,
    MetricRegistry, SloSpec,
};
use paris_elsa::prelude::*;

/// Grid width of the utilization timelines (matches the faults crate's
/// degraded-window and the trajectory benches' dip window).
const WINDOW_NS: u64 = 250_000_000;

/// Renders a `[0, 1]` series as one digit per window (`9` ≙ ≥ 90 %).
fn digit_strip(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| {
            let d = (v.clamp(0.0, 1.0) * 10.0) as u32;
            char::from_digit(d.min(9), 10).expect("single digit")
        })
        .collect()
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(41);
    let duration_s = opts.pick(8.0, 4.0, 1.5);
    let table = mobilenet_table();
    let rack = RackScenario::new(duration_s, opts.seed, &table);
    let trace_in = rack.trace();
    let plan = rack.plan();
    let cluster = rack.cluster(true);

    let (report, trace) = run_with_faults_traced(
        &cluster,
        trace_in.iter().copied().map(|tq| (None, tq)),
        ReportDetail::Summary,
        &plan,
    );

    // -- Exact per-class latency breakdown ---------------------------------
    let analysis = analyze(&trace);
    let rows: Vec<Vec<String>> = analysis
        .classes
        .iter()
        .map(|c| {
            let n = c.completed.max(1) as f64;
            let ms = |v: u128| format!("{:.2}", v as f64 / n / 1e6);
            vec![
                match c.group {
                    0 => "premium".to_string(),
                    1 => "batch".to_string(),
                    g => format!("class{g}"),
                },
                c.completed.to_string(),
                ms(c.frontend_ns),
                ms(c.queue_ns),
                ms(c.reconfig_wait_ns),
                ms(c.service_clean_ns),
                ms(c.degrade_inflation_ns),
                format!("{:.2}", c.noise_delta_ns as f64 / n / 1e6),
                ms(c.total_latency_ns),
                (c.components_sum() == c.total_latency_ns as i128).to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "mean latency breakdown (ms/query), rack outage [{:.1}s, {:.1}s] of {duration_s}s, \
             {} trace records",
            rack.outage.0,
            rack.outage.1,
            trace.len()
        ),
        &[
            "class", "done", "frontend", "queue", "reconfig", "service", "inflate", "noise",
            "total", "exact",
        ],
        &rows,
    );

    // -- Per-shard utilization timelines -----------------------------------
    let gpcs_per_shard: Vec<u32> = rack.shard_gpus.iter().map(|&g| (g * 7) as u32).collect();
    let registry = MetricRegistry::from_trace(&trace, WINDOW_NS, &gpcs_per_shard);
    println!(
        "\n=== utilization timelines ({} ms windows, one digit per window, 9 = >=90%) ===",
        WINDOW_NS / 1_000_000
    );
    for (s, &gpus) in rack.shard_gpus.iter().enumerate() {
        if let Some(busy) = registry.get(&format!("shard{s}/busy_gpc_fraction")) {
            println!(
                "shard{s} busy gpc ({gpus} GPUs):  {}",
                digit_strip(&busy.values)
            );
        }
    }
    let peak_outstanding = registry
        .series()
        .iter()
        .filter(|s| s.name.ends_with("/outstanding"))
        .flat_map(|s| s.values.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1.0);
    for s in 0..rack.shard_gpus.len() {
        if let Some(out) = registry.get(&format!("shard{s}/outstanding")) {
            let scaled: Vec<f64> = out.values.iter().map(|v| v / peak_outstanding).collect();
            println!(
                "shard{s} outstanding/{peak_outstanding:<4.0}: {}",
                digit_strip(&scaled)
            );
        }
    }
    if let Some(shed) = registry.get("fleet/shed_rate") {
        println!("fleet shed rate:          {}", digit_strip(&shed.values));
    }

    // -- Admission ledger + conservation -----------------------------------
    let stats = check_conservation(&trace).expect("flight-recorder conservation");
    println!(
        "\nadmission: offered {} = routed {} + shed {}; \
         lifecycle: arrivals {} = completed {} (conserved)",
        stats.offered, stats.routed, stats.shed, stats.arrivals, stats.completed
    );
    println!(
        "availability: base {:.4} effective {:.4}; goodput {:.0} q/s",
        report.base_availability,
        report.effective_availability,
        report.goodput_qps()
    );

    // -- SLO burn-rate alerts + causal tail attribution (--slo) ------------
    let slo_on = std::env::args().any(|a| a == "--slo");
    let mut alerts = Vec::new();
    let specs = [
        SloSpec::new("premium-avail", 0, 0.95).with_windows(2, 6),
        SloSpec::new("batch-avail", 1, 0.5).with_windows(2, 6),
    ];
    if slo_on {
        alerts = evaluate_slos(&registry, &specs);
        let alert_rows: Vec<Vec<String>> = alerts
            .iter()
            .map(|a| {
                vec![
                    specs[a.slo].name.clone(),
                    a.group.to_string(),
                    a.fired_bin.to_string(),
                    a.resolved_bin
                        .map_or_else(|| "-".to_string(), |b| b.to_string()),
                    a.worst_bin.to_string(),
                    format!("{:.2}", a.burn_short),
                    format!("{:.2}", a.burn_long),
                ]
            })
            .collect();
        print_table(
            &format!(
                "SLO burn-rate alert log ({} ms bins, deterministic)",
                WINDOW_NS / 1_000_000
            ),
            &[
                "slo",
                "class",
                "fired",
                "resolved",
                "worst",
                "burn-short",
                "burn-long",
            ],
            &alert_rows,
        );
        let attributions = attribute_alerts(&trace, WINDOW_NS, &alerts);
        let attribution_rows: Vec<Vec<String>> = attributions
            .iter()
            .flat_map(|a| {
                let mut first = true;
                a.causes
                    .iter()
                    .filter(|c| c.share_ns != 0)
                    .map(move |c| {
                        let head = if first {
                            first = false;
                            vec![
                                a.group.to_string(),
                                a.bin.to_string(),
                                format!("{:.1}", a.p99_latency_ns as f64 / 1e6),
                                format!("{:.2}", a.excess_ns as f64 / 1e6),
                            ]
                        } else {
                            vec![String::new(); 4]
                        };
                        let mut row = head;
                        row.push(c.cause.to_string());
                        row.push(format!("{:.2}", c.share_ns as f64 / 1e6));
                        row
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        print_table(
            "causal tail attribution (per fired alert's worst window, zero residual)",
            &["class", "bin", "p99 ms", "excess ms", "cause", "share ms"],
            &attribution_rows,
        );
    }

    // -- Optional exports --------------------------------------------------
    if let Some(path) = arg_value::<String>("metrics") {
        let dump = if path.ends_with(".csv") {
            metrics_csv(&registry)
        } else {
            metrics_jsonl(&registry)
        };
        std::fs::write(&path, dump).expect("write metrics dump");
        println!("wrote {path}");
    }
    if let Some(path) = arg_value::<String>("trace") {
        let body = if slo_on {
            let annotated = trace.annotated(alert_records(&alerts, WINDOW_NS).into_records());
            let mut w = ChromeTraceWriter::new();
            write_query_trace(&mut w, &annotated);
            write_alert_rows(
                &mut w,
                &alerts,
                &specs,
                WINDOW_NS,
                annotated.horizon().as_nanos(),
            );
            w.finish()
        } else {
            chrome_trace_json(&trace)
        };
        std::fs::write(&path, body).expect("write chrome trace");
        println!("wrote {path}");
    }
    if let Some(path) = arg_value::<String>("jsonl") {
        std::fs::write(&path, jsonl(&trace)).expect("write jsonl");
        println!("wrote {path}");
    }
}
