//! `bench_server` — the perf-trajectory benchmark behind `BENCH_server.json`.
//!
//! Pushes a dispatch-heavy trace through the server's **fast path**
//! (streamed arrivals + incremental ELSA state, `Summary` detail) and the
//! pre-rearchitecture **reference path** (`run_reference`: trace pre-loaded
//! into the event queue, fresh snapshots + pure `Elsa::place` per query)
//! for FIFS and ELSA at 8/56/224 partitions, then writes wall time,
//! events/sec and the fast-vs-reference speedup to `BENCH_server.json` so
//! future PRs can track the dispatch-path trajectory.
//!
//! Usage: `cargo run --release --bin bench_server [--quick] [--smoke] [--queries N]`
//!
//! `--smoke` runs a tiny trace (5 k queries) — CI uses it to catch bench
//! regressions (panics, schema drift, broken paths) without paying for a
//! real measurement; the numbers it writes are not comparable.

use std::fmt::Write as _;
use std::time::Instant;

use paris_bench::print_table;
use paris_elsa::prelude::*;

struct Measurement {
    scheduler: &'static str,
    partitions: usize,
    path: &'static str,
    wall_s: f64,
    events_per_sec: f64,
    wall_per_1m_queries_s: f64,
}

fn measure(
    label: (&'static str, &'static str),
    server: &InferenceServer,
    trace: &[QuerySpec],
    reference: bool,
    reps: usize,
) -> Measurement {
    // Best-of-N: the run is deterministic, so the fastest repetition is the
    // one least perturbed by scheduler/frequency noise. The extra warmup
    // iteration (untimed, discarded) pays the cold-cache and page-fault
    // cost so the timed repetitions start from a steady state.
    let warmup = usize::from(reps > 1);
    let mut wall_s = f64::INFINITY;
    for rep in 0..reps.max(1) + warmup {
        let start = Instant::now();
        let report = if reference {
            server.run_reference(trace)
        } else {
            server.run_with_detail(trace, ReportDetail::Summary)
        };
        if rep >= warmup {
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
        }
        assert_eq!(report.completed(), trace.len() as u64, "all queries served");
    }
    // Two DES events per query: one dispatch, one completion.
    let events = 2.0 * trace.len() as f64;
    Measurement {
        scheduler: label.0,
        partitions: server.partitions().len(),
        path: label.1,
        wall_s,
        events_per_sec: events / wall_s,
        wall_per_1m_queries_s: wall_s * 1e6 / trace.len() as f64,
    }
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(42);
    let queries: usize =
        paris_bench::arg_value("queries").unwrap_or_else(|| opts.pick(1_000_000, 100_000, 5_000));
    if queries == 0 {
        eprintln!("error: --queries must be at least 1");
        std::process::exit(2);
    }

    // Snapshot the previous artifact before this run overwrites it: the
    // regenerated JSON records new/old fast-path events/sec per config.
    let prev = std::fs::read_to_string("BENCH_server.json").ok();

    // The fast path is cheap to repeat, so it gets more best-of samples
    // than the (up to 50× slower) reference path.
    let fast_reps: usize = opts.pick(9, 3, 1);
    let ref_reps: usize = opts.pick(3, 2, 1);
    let mut results: Vec<Measurement> = Vec::new();
    for n in paris_bench::DISPATCH_BENCH_PARTITIONS {
        let (fifs, elsa, trace) = paris_bench::dispatch_workload(n, queries);
        for (scheduler, server) in [("fifs", &fifs), ("elsa", &elsa)] {
            results.push(measure(
                (scheduler, "fast"),
                server,
                &trace,
                false,
                fast_reps,
            ));
            results.push(measure(
                (scheduler, "reference"),
                server,
                &trace,
                true,
                ref_reps,
            ));
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.scheduler.to_owned(),
                m.partitions.to_string(),
                m.path.to_owned(),
                format!("{:.3}", m.wall_s),
                format!("{:.2e}", m.events_per_sec),
                format!("{:.2}", m.wall_per_1m_queries_s),
            ]
        })
        .collect();
    print_table(
        &format!("server dispatch path, {queries} queries/config"),
        &[
            "sched",
            "parts",
            "path",
            "wall s",
            "events/s",
            "s per 1M queries",
        ],
        &rows,
    );

    // Speedup summary: fast vs reference per (scheduler, partitions).
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for pair in results.chunks(2) {
        let [fast, reference] = pair else { continue };
        speedups.push((
            format!("{}_{}", fast.scheduler, fast.partitions),
            fast.events_per_sec / reference.events_per_sec,
        ));
    }
    println!();
    for (name, s) in &speedups {
        println!("speedup {name}: {s:.2}x");
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_server/v1\",\n");
    let _ = writeln!(json, "  \"queries_per_config\": {queries},");
    json.push_str("  \"model\": \"mobilenet_v1\",\n  \"configs\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheduler\": \"{}\", \"partitions\": {}, \"path\": \"{}\", \
             \"wall_s\": {:.4}, \"events_per_sec\": {:.1}, \"wall_per_1m_queries_s\": {:.3}}}",
            m.scheduler, m.partitions, m.path, m.wall_s, m.events_per_sec, m.wall_per_1m_queries_s
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"fast_vs_reference_speedup\": {\n");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "    \"{name}\": {s:.2}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n  \"speedup_vs_prev\": {\n");
    let fast: Vec<&Measurement> = results.iter().filter(|m| m.path == "fast").collect();
    for (i, m) in fast.iter().enumerate() {
        let anchor = format!(
            "\"scheduler\": \"{}\", \"partitions\": {}, \"path\": \"fast\"",
            m.scheduler, m.partitions
        );
        let ratio = prev
            .as_deref()
            .and_then(|p| paris_bench::scrape_number_after(p, &anchor, "events_per_sec"))
            .map_or("null".to_string(), |old| {
                format!("{:.3}", m.events_per_sec / old)
            });
        let _ = write!(json, "    \"{}_{}\": {ratio}", m.scheduler, m.partitions);
        json.push_str(if i + 1 < fast.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("\nwrote BENCH_server.json");
}
