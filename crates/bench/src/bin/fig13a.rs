//! **Figure 13(a)** — sensitivity to the log-normal batch-size variance:
//! σ ∈ {0.3 (small), 0.9 (default), 1.8 (large)} on ResNet, six designs,
//! normalized to GPU(7)+FIFS.
//!
//! ```text
//! cargo run -p paris-bench --release --bin fig13a [-- --quick] [--seed N]
//! ```

use paris_bench::{measure_designs, print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    let designs = [
        ("GPU(7)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G7)),
        ("GPU(3)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G3)),
        ("GPU(2)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G2)),
        ("GPU(1)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G1)),
        ("PARIS+FIFS", DesignPoint::ParisFifs),
        ("PARIS+ELSA", DesignPoint::ParisElsa),
    ];
    let headers: Vec<&str> = std::iter::once("Variance")
        .chain(designs.iter().map(|&(n, _)| n))
        .collect();

    let mut rows = Vec::new();
    let mut gain_summary = Vec::new();
    for (label, sigma) in [
        ("small (σ=0.3)", 0.3),
        ("default (σ=0.9)", 0.9),
        ("large (σ=1.8)", 1.8),
    ] {
        let dist = BatchDistribution::log_normal(32, sigma);
        let bed = Testbed::with_distribution(ModelKind::ResNet50, dist);
        let sweep = opts.sweep(&bed);
        let measured = measure_designs(&bed, &designs, &sweep);
        let baseline = measured[0].1.max(1e-9);
        rows.push(
            std::iter::once(label.to_string())
                .chain(
                    measured
                        .iter()
                        .map(|&(_, q)| format!("{:.2}", q / baseline)),
                )
                .collect(),
        );
        let best_homog = measured[..4].iter().map(|&(_, q)| q).fold(0.0, f64::max);
        let paris_elsa = measured[5].1;
        gain_summary.push((label, paris_elsa / best_homog.max(1e-9)));
    }
    print_table(
        "Figure 13(a) — ResNet throughput vs log-normal variance (normalized to GPU(7)+FIFS)",
        &headers,
        &rows,
    );
    println!("\nPARIS+ELSA gain over the best homogeneous design:");
    for (label, gain) in gain_summary {
        println!("  {label:<16} {gain:.2}x");
    }
    println!(
        "\nPaper shape check: the heterogeneity advantage grows with the \
         distribution variance — small σ concentrates batches where one \
         homogeneous granularity suffices."
    );
}
