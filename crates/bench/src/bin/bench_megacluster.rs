//! `bench_megacluster` — the shard-parallel cluster engine at fleet scale,
//! behind `BENCH_megacluster.json`.
//!
//! Hosts MobileNet on 32 identical 4-GPU shards (128 serving GPUs) with an
//! 8-GPU batch pool behind a JSQ router, drives a 100k+ qps trace with a
//! mid-run GPU failure and a shard outage, and pins the tentpole contract
//! of ISSUE 7 / ARCHITECTURE.md invariant 11 **in the bench itself**:
//!
//! * **bit-for-bit determinism** — for each [`SyncWindow`] mode, the run
//!   is repeated at 1, 2, 4 and 8 lane worker threads and every report
//!   must be byte-identical (`Debug`-string equality over the full
//!   `ClusterReport`, histograms included). The bench aborts if any
//!   thread count diverges, and records the verdict as
//!   `parallel_bit_identical`.
//! * **events/sec-vs-cores scaling** — the conservative-window critical
//!   path is measured per thread count from the same run (per window,
//!   lane-event deltas bucketed by the worker pool's `shard % workers`
//!   assignment; the largest bucket is that window's parallel span). The
//!   curve multiplies the *measured* single-thread events/sec by the
//!   *measured* structural speedup, so it does not depend on how many
//!   cores the benchmarking host happens to have — `host_cores` and the
//!   per-run wall times are recorded alongside so the basis is explicit.
//!
//! Per-event windows synchronize at every gateway item and therefore
//! barely scale (their curve is the honest cost of exact sequential
//! semantics); lookahead windows batch a full route-hop's worth of
//! decisions per edge and carry the scaling claim.
//!
//! Usage: `cargo run --release --bin bench_megacluster [--quick] [--smoke] [--seed N]`

use std::fmt::Write as _;
use std::time::Instant;

use paris_elsa::cluster::{Cluster, ClusterReport, LoanPolicy, RouterPolicy, WindowProfile};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

/// Lane worker thread counts every mode is verified at.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The lookahead window: the modeled cross-shard information latency (a
/// route hop plus the decision grid). One millisecond holds ~160 arrivals
/// of coordinator work per window at the bench's offered rate.
const LOOKAHEAD_MS: f64 = 1.0;

struct Scenario {
    cluster: Cluster,
    faults: FaultTimeline,
    trace: Vec<TaggedQuerySpec>,
    shards: usize,
    gpus_per_shard: usize,
    pool_gpus: usize,
    offered_qps: f64,
    duration_secs: f64,
    seed: u64,
}

impl Scenario {
    fn new(duration_secs: f64, seed: u64) -> Self {
        let (shards, gpus_per_shard, pool_gpus) = (32usize, 4usize, 8usize);
        let perf = PerfModel::new(DeviceSpec::a100());
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let dist = BatchDistribution::paper_default();
        // All shards are identical: plan once, clone 32×.
        let shard = MultiModelServer::new(
            vec![ModelSpec::new("mobilenet_v1", table, dist.clone())],
            GpcBudget::new(gpus_per_shard * 7, gpus_per_shard),
            MultiModelConfig::new().with_detail(ReportDetail::Summary),
        )
        .expect("shard plan builds");
        let fleet_qps: f64 = shard.capacity_hint_qps() * shards as f64;
        // 80 % of planned fleet capacity: comfortably past the 100k qps
        // bar at 128 GPUs, with headroom for the injected faults.
        let offered_qps = 0.8 * fleet_qps;
        let trace = MultiTraceGenerator::new(
            vec![PhaseSpec::new(duration_secs, vec![(offered_qps, dist)])],
            seed,
        )
        .generate();
        let cluster = Cluster::new(vec![shard; shards], RouterPolicy::JoinShortestQueue)
            .with_loan(LoanPolicy::new(pool_gpus, 0.25))
            .with_lane_capacity(offered_qps);
        // A GPU dies on shard 3 and a whole shard drops out of rotation
        // mid-run; both repair before the end, so the run exercises kill +
        // requeue + recovery re-plan + drain/rejoin at fleet scale.
        let t = |frac: f64| SimTime::from_nanos((frac * duration_secs * 1e9) as u64);
        let faults = FaultTimeline::new(vec![
            (t(0.30), FaultEvent::GpuFail { shard: 3, gpu: 0 }),
            (t(0.40), FaultEvent::ShardFail { shard: 17 }),
            (t(0.60), FaultEvent::GpuRepair { shard: 3, gpu: 0 }),
            (t(0.70), FaultEvent::ShardRepair { shard: 17 }),
        ]);
        Scenario {
            cluster,
            faults,
            trace,
            shards,
            gpus_per_shard,
            pool_gpus,
            offered_qps,
            duration_secs,
            seed,
        }
    }

    /// One full run: report plus wall-clock seconds.
    fn run(&self, window: SyncWindow, threads: usize) -> (ClusterReport, f64) {
        let start = Instant::now();
        let report = self.cluster.run_windowed(
            self.trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Summary,
            &self.faults,
            window,
            threads,
        );
        (report, start.elapsed().as_secs_f64())
    }

    fn profile(&self, window: SyncWindow) -> (ClusterReport, WindowProfile) {
        self.cluster.run_windowed_profiled(
            self.trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Summary,
            &self.faults,
            window,
            &THREADS,
        )
    }
}

struct ModeResult {
    reference: ClusterReport,
    wall_secs: Vec<f64>,
    bit_identical: bool,
    profile: WindowProfile,
}

/// Runs one sync mode at every thread count, checks byte equality against
/// the single-thread run, and measures the window profile.
fn verify_mode(scenario: &Scenario, name: &'static str, window: SyncWindow) -> ModeResult {
    let (reference, wall_1) = scenario.run(window, 1);
    let reference_bytes = format!("{reference:?}");
    let mut wall_secs = vec![wall_1];
    let mut bit_identical = true;
    for &threads in &THREADS[1..] {
        let (report, wall) = scenario.run(window, threads);
        wall_secs.push(wall);
        let identical = format!("{report:?}") == reference_bytes;
        if !identical {
            eprintln!("DIVERGENCE: {name} at {threads} threads differs from 1 thread");
            bit_identical = false;
        }
    }
    let (profiled, profile) = scenario.profile(window);
    // The profiling pass re-runs the exact same simulation; it must land
    // on the same bytes too (profiling only reads event counters).
    if format!("{profiled:?}") != reference_bytes {
        eprintln!("DIVERGENCE: {name} profiled run differs from plain run");
        bit_identical = false;
    }
    ModeResult {
        reference,
        wall_secs,
        bit_identical,
        profile,
    }
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(67);
    let duration_secs = opts.pick(1.0, 0.4, 0.05);
    let scenario = Scenario::new(duration_secs, opts.seed);
    println!(
        "megacluster: {} shards x {} GPUs (+{} pool), {:.0} qps offered for {:.2} s ({} queries)",
        scenario.shards,
        scenario.gpus_per_shard,
        scenario.pool_gpus,
        scenario.offered_qps,
        scenario.duration_secs,
        scenario.trace.len(),
    );

    let per_event = verify_mode(&scenario, "per_event", SyncWindow::PerEvent);
    let lookahead_width = SimDuration::from_nanos((LOOKAHEAD_MS * 1e6) as u64);
    let lookahead = verify_mode(
        &scenario,
        "lookahead",
        SyncWindow::Lookahead(lookahead_width),
    );

    let parallel_bit_identical = per_event.bit_identical && lookahead.bit_identical;
    assert!(
        parallel_bit_identical,
        "invariant 11 violated: thread count changed a report"
    );

    // Scaling curve: measured single-thread events/sec × the measured
    // structural speedup of each pool size (critical-path basis).
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let curve_of = |m: &ModeResult| -> Vec<(usize, f64, f64, f64)> {
        let gateway_items = m.reference.events_processed - m.profile.lane_events;
        let base_eps = m.reference.events_processed as f64 / m.wall_secs[0];
        THREADS
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let speedup = m.profile.modeled_speedup(k, gateway_items);
                (k, speedup, base_eps * speedup, m.wall_secs[i])
            })
            .collect()
    };
    let pe_curve = curve_of(&per_event);
    let la_curve = curve_of(&lookahead);
    // New/old single-thread events/sec against the artifact this run is
    // about to overwrite (the first curve entry after each mode key is
    // the threads=1 point).
    let prev = std::fs::read_to_string("BENCH_megacluster.json").ok();
    let vs_prev = |mode: &str, curve: &[(usize, f64, f64, f64)]| -> String {
        prev.as_deref()
            .and_then(|p| {
                paris_bench::scrape_number_after(p, &format!("\"{mode}\":"), "events_per_sec")
            })
            .map_or("null".to_string(), |old| format!("{:.3}", curve[0].2 / old))
    };
    let pe_vs_prev = vs_prev("per_event", &pe_curve);
    let la_vs_prev = vs_prev("lookahead", &la_curve);
    let speedup_at_4 = la_curve
        .iter()
        .find(|&&(k, ..)| k == 4)
        .map_or(0.0, |&(_, s, ..)| s);

    let rows: Vec<Vec<String>> = pe_curve
        .iter()
        .zip(&la_curve)
        .map(|(pe, la)| {
            vec![
                pe.0.to_string(),
                format!("{:.2}x", pe.1),
                format!("{:.0}", pe.2 / 1e3),
                format!("{:.2}x", la.1),
                format!("{:.0}", la.2 / 1e3),
            ]
        })
        .collect();
    paris_bench::print_table(
        &format!("events/sec vs lane threads (critical-path basis; host has {host_cores} core(s))"),
        &[
            "threads",
            "per-event speedup",
            "per-event kev/s",
            "lookahead speedup",
            "lookahead kev/s",
        ],
        &rows,
    );
    println!(
        "\nbit-identical across threads {{1,2,4,8}}: {parallel_bit_identical} \
         (per-event and lookahead modes, Debug-byte equality)"
    );
    println!(
        "lookahead speedup at 4 threads: {speedup_at_4:.2}x \
         ({} windows, {} lane events, {} gateway items)",
        lookahead.profile.windows,
        lookahead.profile.lane_events,
        lookahead.reference.events_processed - lookahead.profile.lane_events,
    );
    if !opts.smoke {
        assert!(
            scenario.offered_qps >= 100_000.0,
            "megacluster scenario must offer 100k+ qps, got {:.0}",
            scenario.offered_qps
        );
        assert!(
            speedup_at_4 > 1.5,
            "lookahead windows must scale >1.5x at 4 threads, got {speedup_at_4:.2}"
        );
    }

    let mode_json = |m: &ModeResult, curve: &[(usize, f64, f64, f64)]| -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bit_identical\": {}, \"completed\": {}, \"achieved_qps\": {:.1}, \
             \"events_processed\": {}, \"windows\": {}, \"lane_events\": {}, \"curve\": [",
            m.bit_identical,
            m.reference.completed(),
            m.reference.achieved_qps,
            m.reference.events_processed,
            m.profile.windows,
            m.profile.lane_events,
        );
        for (i, &(k, speedup, eps, wall)) in curve.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"threads\": {k}, \"modeled_speedup\": {speedup:.4}, \
                 \"events_per_sec\": {eps:.0}, \"measured_wall_secs\": {wall:.4}}}",
                if i == 0 { "" } else { ", " },
            );
        }
        s.push_str("]}");
        s
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_megacluster/v1\",\n");
    json.push_str("  \"model\": \"mobilenet_v1\",\n");
    let _ = writeln!(json, "  \"shards\": {},", scenario.shards);
    let _ = writeln!(json, "  \"gpus_per_shard\": {},", scenario.gpus_per_shard);
    let _ = writeln!(
        json,
        "  \"serving_gpus\": {},",
        scenario.shards * scenario.gpus_per_shard
    );
    let _ = writeln!(json, "  \"pool_gpus\": {},", scenario.pool_gpus);
    let _ = writeln!(json, "  \"seed\": {},", scenario.seed);
    let _ = writeln!(json, "  \"duration_secs\": {},", scenario.duration_secs);
    let _ = writeln!(json, "  \"offered_qps\": {:.1},", scenario.offered_qps);
    let _ = writeln!(json, "  \"queries\": {},", scenario.trace.len());
    let _ = writeln!(json, "  \"faults\": {},", scenario.faults.events().len());
    let _ = writeln!(json, "  \"lookahead_ms\": {LOOKAHEAD_MS},");
    let _ = writeln!(json, "  \"thread_counts\": [1, 2, 4, 8],");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        json,
        "  \"scaling_basis\": \"measured single-thread events/sec x measured \
         conservative-window critical-path speedup (lane-event counts per window \
         bucketed by shard % workers); measured_wall_secs per thread count listed \
         for reference\","
    );
    let _ = writeln!(
        json,
        "  \"parallel_bit_identical\": {parallel_bit_identical},"
    );
    let _ = writeln!(
        json,
        "  \"lookahead_speedup_at_4_threads\": {speedup_at_4:.4},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_vs_prev\": {{\"per_event\": {pe_vs_prev}, \"lookahead\": {la_vs_prev}}},"
    );
    let _ = writeln!(
        json,
        "  \"per_event\": {},",
        mode_json(&per_event, &pe_curve)
    );
    let _ = writeln!(
        json,
        "  \"lookahead\": {}",
        mode_json(&lookahead, &la_curve)
    );
    json.push_str("}\n");
    std::fs::write("BENCH_megacluster.json", &json).expect("write BENCH_megacluster.json");
    println!("\nwrote BENCH_megacluster.json");
}
