//! **Figure 12** — latency-bounded throughput of all eight designs across
//! the five benchmark models, normalized to GPU(7)+FIFS.
//!
//! ```text
//! cargo run -p paris-bench --release --bin fig12 [-- --quick] [--seed N]
//! ```

use paris_bench::{figure12_designs, measure_designs, print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    let designs = figure12_designs(opts.seed);
    let headers: Vec<&str> = std::iter::once("Model")
        .chain(designs.iter().map(|&(name, _)| name))
        .collect();

    let mut raw_rows = Vec::new();
    let mut norm_rows = Vec::new();
    for model in ModelKind::ALL {
        let bed = Testbed::paper_default(model);
        let sweep = opts.sweep(&bed);
        let measured = measure_designs(&bed, &designs, &sweep);
        let baseline = measured[0].1.max(1e-9); // GPU(7)+FIFS
        raw_rows.push(
            std::iter::once(model.to_string())
                .chain(measured.iter().map(|&(_, qps)| format!("{qps:.0}")))
                .collect::<Vec<_>>(),
        );
        norm_rows.push(
            std::iter::once(model.to_string())
                .chain(
                    measured
                        .iter()
                        .map(|&(_, qps)| format!("{:.2}", qps / baseline)),
                )
                .collect::<Vec<_>>(),
        );
    }

    print_table(
        "Figure 12 — latency-bounded throughput (queries/sec)",
        &headers,
        &raw_rows,
    );
    print_table(
        "Figure 12 — normalized to GPU(7)+FIFS",
        &headers,
        &norm_rows,
    );
    println!(
        "\nPaper shape check: PARIS+ELSA should lead every row; the gray \
         homogeneous bars should trail; Random+ELSA should be competitive \
         with homogeneous designs (σ=0.9 log-normal, SLA = 1.5×)."
    );
}
