//! **Figure 3** — GPU compute utilization and latency versus partition size
//! at batch 8, for MobileNet / ResNet / BERT.
//!
//! ```text
//! cargo run -p paris-bench --release --bin fig03
//! ```

use paris_bench::print_table;
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let perf = PerfModel::new(DeviceSpec::a100());
    let batch = 8;
    let mut rows = Vec::new();
    for model in [
        ModelKind::MobileNet,
        ModelKind::ResNet50,
        ModelKind::BertBase,
    ] {
        let graph = model.build();
        let baseline = perf.inference(&graph, batch, ProfileSize::G7).latency_s;
        for size in ProfileSize::ALL {
            let est = perf.inference(&graph, batch, size);
            rows.push(vec![
                model.to_string(),
                size.to_string(),
                format!("{:.1}", est.utilization * 100.0),
                format!("{:.2}", est.latency_s * 1e3),
                format!("{:.2}", est.latency_s / baseline),
            ]);
        }
    }
    print_table(
        "Figure 3 — utilization & latency vs partition size (batch 8)",
        &[
            "Model",
            "Partition",
            "Util (%)",
            "Latency (ms)",
            "Norm. latency",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check: utilization falls and latency rises as the \
         partition grows/shrinks respectively; the latency blow-up on GPU(1) \
         is mild for MobileNet, steeper for ResNet, steepest for BERT."
    );
}
