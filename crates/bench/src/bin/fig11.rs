//! **Figure 11** — p95 tail latency versus achieved throughput for the four
//! headline designs on each of the five models, with the SLA line and the
//! latency-bounded throughput (the paper's vertical markers).
//!
//! ```text
//! cargo run -p paris-bench --release --bin fig11 [-- --quick] [--seed N]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    for model in ModelKind::ALL {
        let bed = Testbed::paper_default(model);
        let sweep_cfg = opts.sweep(&bed);
        let (gpu_max, _) = bed.gpu_max(&sweep_cfg).expect("homogeneous plans build");
        let designs = vec![
            (
                "GPU(7)+FIFS".to_string(),
                DesignPoint::HomogeneousFifs(ProfileSize::G7),
            ),
            (
                format!("GPU(max)=GPU({})+FIFS", gpu_max.gpcs()),
                DesignPoint::HomogeneousFifs(gpu_max),
            ),
            ("PARIS+FIFS".to_string(), DesignPoint::ParisFifs),
            ("PARIS+ELSA".to_string(), DesignPoint::ParisElsa),
        ];

        let mut rows = Vec::new();
        let mut bounded = Vec::new();
        for (name, design) in &designs {
            let server = bed.server(*design).expect("plan builds");
            let hint = paris_elsa::server::capacity_hint_qps(&server, bed.distribution());
            let search = search_latency_bounded_throughput(
                &server,
                bed.distribution(),
                &sweep_cfg,
                (hint * 0.2).max(1.0),
            );
            let mut points = search.points.clone();
            points.sort_by(|a, b| a.achieved_qps.total_cmp(&b.achieved_qps));
            for p in points.iter().filter(|p| p.p95_ms.is_finite()) {
                rows.push(vec![
                    name.clone(),
                    format!("{:.0}", p.achieved_qps),
                    format!("{:.2}", p.p95_ms),
                    if p.meets_target(sweep_cfg.sla_ms()) {
                        "yes"
                    } else {
                        "no"
                    }
                    .to_string(),
                ]);
            }
            bounded.push((name.clone(), search.latency_bounded_qps));
        }
        print_table(
            &format!(
                "Figure 11 — {model}: p95 vs throughput (SLA target {:.2} ms)",
                sweep_cfg.sla_ms()
            ),
            &["Design", "Throughput (q/s)", "p95 (ms)", "within SLA"],
            &rows,
        );
        println!("Latency-bounded throughput (vertical markers):");
        for (name, qps) in bounded {
            println!("  {name:<24} {qps:>8.0} q/s");
        }
    }
    println!(
        "\nPaper shape check: every curve bends upward as load approaches \
         saturation; PARIS+ELSA crosses the SLA line at the highest \
         throughput on every model."
    );
}
