//! **Figure 13(b)** — sensitivity to the distribution's maximum batch size
//! (16 / 32 / 64) for every model: GPU(max)+FIFS vs PARIS+FIFS vs
//! PARIS+ELSA, normalized to GPU(max)+FIFS.
//!
//! ```text
//! cargo run -p paris-bench --release --bin fig13b [-- --quick] [--seed N]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    let mut rows = Vec::new();
    for model in ModelKind::ALL {
        for max_batch in [16usize, 32, 64] {
            let dist = BatchDistribution::log_normal(max_batch, 0.9);
            let bed = Testbed::with_distribution(model, dist);
            let sweep = opts.sweep(&bed);
            let (gpu_max, max_qps) = bed.gpu_max(&sweep).expect("homogeneous plans build");
            let fifs = bed
                .latency_bounded_qps(DesignPoint::ParisFifs, &sweep)
                .expect("PARIS plan builds");
            let elsa = bed
                .latency_bounded_qps(DesignPoint::ParisElsa, &sweep)
                .expect("PARIS plan builds");
            let base = max_qps.max(1e-9);
            rows.push(vec![
                model.to_string(),
                max_batch.to_string(),
                format!("GPU({})", gpu_max.gpcs()),
                "1.00".to_string(),
                format!("{:.2}", fifs / base),
                format!("{:.2}", elsa / base),
            ]);
        }
    }
    print_table(
        "Figure 13(b) — throughput vs max batch size (normalized to GPU(max)+FIFS)",
        &[
            "Model",
            "MaxBatch",
            "GPU(max)",
            "GPU(max)+FIFS",
            "PARIS+FIFS",
            "PARIS+ELSA",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check: PARIS+ELSA stays at or above GPU(max)+FIFS \
         across all maximum batch sizes (robustness claim of §VI-C)."
    );
}
