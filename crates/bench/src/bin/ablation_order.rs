//! **Ablation D4** — ELSA Step A scan order: smallest-first (the paper's
//! utilization-maximizing choice, Algorithm 2 line 3) vs largest-first.
//!
//! ```text
//! cargo run -p paris-bench --release --bin ablation_order [-- --quick]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::ScanOrder;
use paris_elsa::prelude::*;
use paris_elsa::server::measure_point;

fn main() {
    let opts = ExperimentOpts::from_args();
    let mut rows = Vec::new();
    for model in [
        ModelKind::MobileNet,
        ModelKind::ResNet50,
        ModelKind::BertBase,
    ] {
        let bed = Testbed::paper_default(model);
        let sweep = opts.sweep(&bed);
        let plan = bed.plan(DesignPoint::ParisElsa).expect("plan builds");
        for (name, order) in [
            ("smallest-first*", ScanOrder::SmallestFirst),
            ("largest-first", ScanOrder::LargestFirst),
        ] {
            let cfg = ElsaConfig::new(bed.sla_ns()).with_order(order);
            let server = InferenceServer::from_plan(
                &plan,
                bed.table().clone(),
                ServerConfig::new(SchedulerKind::Elsa(cfg)),
            );
            let hint = paris_elsa::server::capacity_hint_qps(&server, bed.distribution());
            let search = search_latency_bounded_throughput(
                &server,
                bed.distribution(),
                &sweep,
                (hint * 0.2).max(1.0),
            );
            let probe = measure_point(&server, bed.distribution(), hint * 0.5, &sweep);
            rows.push(vec![
                model.to_string(),
                name.to_string(),
                format!("{:.0}", search.latency_bounded_qps),
                format!("{:.1}", probe.mean_utilization * 100.0),
            ]);
        }
    }
    print_table(
        "Ablation D4 — ELSA Step-A scan order (* = paper's rule)",
        &["Model", "Order", "LBT (q/s)", "mean util@50% (%)"],
        &rows,
    );
    println!(
        "\nReading: scanning small partitions first keeps big partitions \
         free for the large batches only they can serve within SLA; \
         largest-first burns big-partition headroom on small queries."
    );
}
