//! **Table I** — the homogeneous and heterogeneous server configurations
//! per model: instances and GPCs for GPU(1)/GPU(2)/GPU(3)/GPU(7), Random
//! and PARIS, plus the physical per-GPU MIG layouts PARIS packs.
//!
//! ```text
//! cargo run -p paris-bench --release --bin table1 [-- --seed N]
//! ```

use paris_bench::{print_table, ExperimentOpts};
use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    let opts = ExperimentOpts::from_args();
    let mut rows = Vec::new();
    let mut paris_layouts = Vec::new();
    for model in ModelKind::ALL {
        let bed = Testbed::paper_default(model);
        let designs = [
            ("GPU(1)", DesignPoint::HomogeneousFifs(ProfileSize::G1)),
            ("GPU(2)", DesignPoint::HomogeneousFifs(ProfileSize::G2)),
            ("GPU(3)", DesignPoint::HomogeneousFifs(ProfileSize::G3)),
            ("GPU(7)", DesignPoint::HomogeneousFifs(ProfileSize::G7)),
            ("Random", DesignPoint::RandomFifs { seed: opts.seed }),
            ("PARIS", DesignPoint::ParisFifs),
        ];
        for (name, design) in designs {
            let plan = bed.plan(design).expect("plan builds");
            let budget = bed.budget_for(design);
            rows.push(vec![
                model.to_string(),
                name.to_string(),
                plan.instance_count().to_string(),
                plan.total_gpcs_used().to_string(),
                budget.num_gpus.to_string(),
                plan.to_string(),
            ]);
            if name == "PARIS" {
                let layouts: Vec<String> = plan.layouts().iter().map(|l| l.to_string()).collect();
                paris_layouts.push((model, layouts.join(" ")));
            }
        }
    }
    print_table(
        "Table I — server configurations (instances / GPCs per design)",
        &[
            "Model",
            "Design",
            "#instances",
            "#GPCs",
            "#A100",
            "Composition",
        ],
        &rows,
    );
    println!("\nPARIS physical MIG packing (per A100):");
    for (model, layouts) in paris_layouts {
        println!("  {model:<11} {layouts}");
    }
    println!(
        "\nDeviations from the paper's Table I (recorded in EXPERIMENTS.md): \
         BERT GPU(2)=18 and GPU(3)=12 instances (paper lists 21/14, which \
         exceed real A100 MIG placement limits of 3×2g and 2×3g per GPU)."
    );
}
