//! `bench_multimodel` — static plan vs online re-planning under drift,
//! behind `BENCH_multimodel.json`.
//!
//! Hosts two models (MobileNet + ResNet-50) on a shared 48-GPC / 8-GPU
//! budget and drives a drifting two-phase trace: phase 1 is
//! MobileNet-heavy with small batches, phase 2 swaps the rates and shifts
//! ResNet's batch mix heavy. For the **static** server (initial PARIS plan
//! frozen) and the **re-planning** server (drift-triggered PARIS re-plans
//! with realistic MIG reslice downtime), the bench searches the largest
//! load scale at which every model's p95 tail latency stays within its
//! own SLA — the drifting-workload analogue of the paper's
//! latency-bounded throughput — and writes both operating points (plus
//! exact violation rates at the nominal load) to `BENCH_multimodel.json`.
//!
//! Usage: `cargo run --release --bin bench_multimodel [--quick] [--smoke] [--seed N]`
//!
//! `--smoke` runs a tiny trace with a shallow search — CI uses it to catch
//! bench regressions without paying for a real measurement; the numbers it
//! writes are not comparable.

use std::fmt::Write as _;

use paris_bench::print_table;
use paris_elsa::dnn::ModelKind;
use paris_elsa::paris::ReconfigMode;
use paris_elsa::prelude::*;
use paris_elsa::server::ModelReport;

/// The SLA-attainment target: every model's p95 tail latency must stay
/// within its own SLA (the paper's latency-bounded-throughput criterion,
/// applied per model).
const P95_TARGET_RATIO: f64 = 1.0;

struct Scenario {
    phase_secs: f64,
    seed: u64,
    budget: GpcBudget,
}

impl Scenario {
    /// The drifting two-model schedule at load scale `scale`.
    fn trace(&self, scale: f64) -> MultiTraceGenerator {
        let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
        let large = BatchDistribution::log_normal_with_median(32, 0.9, 12.0);
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(
                    self.phase_secs,
                    vec![(400.0, small.clone()), (40.0, small.clone())],
                ),
                PhaseSpec::new(self.phase_secs, vec![(40.0, small), (250.0, large)]),
            ],
            self.seed,
        )
        .with_rate_scale(scale)
    }

    fn server(&self, replan: Option<ReconfigMode>) -> MultiModelServer {
        let dist = BatchDistribution::paper_default();
        let perf = PerfModel::new(DeviceSpec::a100());
        let spec = |kind: ModelKind, name: &str| {
            let table = ProfileTable::profile(&kind.build(), &perf, &ProfileSize::ALL, 32);
            ModelSpec::new(name, table, dist.clone())
        };
        let mut config = MultiModelConfig::new().with_detail(ReportDetail::Summary);
        if let Some(mode) = replan {
            // A 0.5 s window keeps ~50+ arrivals per window down to ~0.4×
            // the nominal load (the detector's trust floor) while still
            // reacting well within one phase.
            config = config.with_replan(ReplanPolicy::new(0.5).with_mode(mode));
        }
        MultiModelServer::new(
            vec![
                spec(ModelKind::MobileNet, "mobilenet_v1"),
                spec(ModelKind::ResNet50, "resnet50"),
            ],
            self.budget,
            config,
        )
        .expect("initial plans build")
    }
}

#[derive(Clone, Copy)]
struct Point {
    scale: f64,
    /// max over models of p95 / SLA (≤ 1 means every model met its SLA).
    worst_p95_ratio: f64,
    worst_violation: f64,
    achieved_qps: f64,
    reconfigs: usize,
}

fn measure(server: &MultiModelServer, scenario: &Scenario, scale: f64) -> Point {
    let report = server.run_stream(scenario.trace(scale).stream(), ReportDetail::Summary);
    let worst_p95_ratio = report
        .per_model
        .iter()
        .map(|m| {
            let sla_ms = m.sla_ns.expect("models carry SLAs") as f64 / 1e6;
            m.p95_ms() / sla_ms
        })
        .fold(0.0, f64::max);
    Point {
        scale,
        worst_p95_ratio,
        worst_violation: report.worst_violation_rate(),
        achieved_qps: report.achieved_qps,
        reconfigs: report.reconfigs.len(),
    }
}

/// Doubling + bisection over the load scale
/// (`paris_bench::max_scale_search`): the largest scale at which every
/// model's p95 stays within its SLA ([`P95_TARGET_RATIO`]), plus the
/// nominal (scale 1.0) operating point the search probed on the way.
fn search(
    server: &MultiModelServer,
    scenario: &Scenario,
    steps: usize,
) -> paris_bench::ScaleSearch<Point> {
    paris_bench::max_scale_search(
        steps,
        |scale| measure(server, scenario, scale),
        |p: &Point| p.worst_p95_ratio <= P95_TARGET_RATIO,
        Point {
            scale: 0.0,
            worst_p95_ratio: f64::INFINITY,
            worst_violation: 1.0,
            achieved_qps: 0.0,
            reconfigs: 0,
        },
    )
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(13);
    // Quick mode still needs phases comfortably longer than the
    // detection window + reslice outage (~1 s), or re-planning has no
    // runway to pay for itself and the quick numbers are meaningless.
    // Smoke mode only proves the pipeline runs end to end.
    let scenario = Scenario {
        phase_secs: opts.pick(8.0, 4.0, 1.5),
        seed: opts.seed,
        budget: GpcBudget::new(48, 8),
    };
    let steps = if opts.smoke { 2 } else { 6 };
    let seed = opts.seed;

    let mut results: Vec<(&str, Point, Point)> = Vec::new();
    // The replan config runs at the workspace default staging (Rolling
    // since PR 6); the dip comparison below still pins both modes.
    for (name, replan) in [("static", None), ("replan", Some(ReconfigMode::default()))] {
        let server = scenario.server(replan);
        // The nominal point (scale 1.0) shows what drift does to each
        // policy at the nominal load; the search probed it first.
        let found = search(&server, &scenario, steps);
        results.push((name, found.best, found.nominal));
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, best, nominal)| {
            vec![
                (*name).to_owned(),
                format!("{:.3}", best.scale),
                format!("{:.0}", best.achieved_qps),
                format!("{:.3}", best.worst_p95_ratio),
                format!("{:.3}", nominal.worst_p95_ratio),
                format!("{:.4}", nominal.worst_violation),
                nominal.reconfigs.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "multi-model drift, {}s/phase, per-model p95 <= SLA",
            scenario.phase_secs
        ),
        &[
            "policy",
            "max scale",
            "qps @ max",
            "p95/sla @ max",
            "p95/sla @ 1.0",
            "viol @ 1.0",
            "reconfigs @ 1.0",
        ],
        &rows,
    );

    let static_qps = results[0].1.achieved_qps;
    let replan_qps = results[1].1.achieved_qps;
    let speedup = replan_qps / static_qps.max(1e-9);
    println!("\nreplan vs static latency-bounded throughput: {speedup:.2}x");

    // Transition-dip comparison: the worst tumbling-window p99 over the
    // queries that complete *during a reconfiguration* (trigger →
    // completion, plus one window of backlog drain). Whole-run
    // percentiles average the outage away, and at light load the kept
    // instances absorb it — so the dip is measured at the re-planning
    // config's own latency-bounded max scale, where capacity is binding
    // and the transition spike is visible. Rolling staging should shrink
    // it: only one GPU's worth of capacity is ever offline.
    let dip_window_ms = 250.0_f64;
    let dip_scale = results[1].1.scale.max(0.25);
    let dip = |mode: ReconfigMode| {
        let server = scenario.server(Some(mode));
        let report = server.run_stream(scenario.trace(dip_scale).stream(), ReportDetail::Full);
        let transitions: Vec<(u64, u64)> = report
            .reconfigs
            .iter()
            .map(|rc| (rc.triggered_at.as_nanos(), rc.completed_at.as_nanos()))
            .collect();
        paris_bench::transition_dip_p99_ms(
            (dip_window_ms * 1e6) as u64,
            &transitions,
            report
                .records
                .iter()
                .map(|r| (r.completed.as_nanos(), r.latency().as_nanos())),
        )
    };
    let dip_all_at_once = dip(ReconfigMode::AllAtOnce);
    let dip_rolling = dip(ReconfigMode::Rolling);
    let dip_fallback = dip_all_at_once.fallback_whole_run || dip_rolling.fallback_whole_run;
    let dip_ratio = dip_rolling.worst_p99_ms / dip_all_at_once.worst_p99_ms.max(1e-9);
    println!(
        "reconfig dip (worst {dip_window_ms:.0} ms-window p99 during re-plans @ {dip_scale:.2}x): \
         all-at-once {:.2} ms, rolling {:.2} ms ({dip_ratio:.2}x{})",
        dip_all_at_once.worst_p99_ms,
        dip_rolling.worst_p99_ms,
        if dip_fallback {
            ", whole-run fallback"
        } else {
            ""
        }
    );

    // Per-model detail at the nominal load for the winning policy.
    let detail = scenario
        .server(Some(ReconfigMode::default()))
        .run_stream(scenario.trace(1.0).stream(), ReportDetail::Summary);
    for m in &detail.per_model {
        print_model(m);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_multimodel/v2\",\n");
    json.push_str("  \"models\": [\"mobilenet_v1\", \"resnet50\"],\n");
    let _ = writeln!(
        json,
        "  \"budget\": {{\"total_gpcs\": {}, \"num_gpus\": {}}},",
        scenario.budget.total_gpcs, scenario.budget.num_gpus
    );
    let _ = writeln!(json, "  \"phase_secs\": {},", scenario.phase_secs);
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"p95_target_ratio\": {P95_TARGET_RATIO},");
    json.push_str("  \"configs\": [\n");
    for (i, (name, best, nominal)) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{name}\", \"max_scale\": {:.4}, \
             \"latency_bounded_qps\": {:.1}, \"worst_p95_sla_ratio_at_max\": {:.4}, \
             \"worst_p95_sla_ratio_at_nominal\": {:.4}, \
             \"worst_violation_at_nominal\": {:.5}, \"reconfigs_at_nominal\": {}}}",
            best.scale,
            best.achieved_qps,
            best.worst_p95_ratio,
            nominal.worst_p95_ratio,
            nominal.worst_violation,
            nominal.reconfigs
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"replan_vs_static_speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"reconfig_dip\": {{\"window_ms\": {dip_window_ms}, \"scale\": {dip_scale:.4}, \
         \"all_at_once_worst_p99_ms\": {:.3}, \
         \"rolling_worst_p99_ms\": {:.3}, \
         \"rolling_vs_all_at_once\": {dip_ratio:.4}, \
         \"fallback_whole_run\": {dip_fallback}}}",
        dip_all_at_once.worst_p99_ms, dip_rolling.worst_p99_ms
    );
    json.push_str("}\n");
    std::fs::write("BENCH_multimodel.json", &json).expect("write BENCH_multimodel.json");
    println!("\nwrote BENCH_multimodel.json");
}

fn print_model(m: &ModelReport) {
    println!(
        "  {}: {} queries, p95 {:.2} ms, exact violation rate {:.4}",
        m.name,
        m.completed,
        m.p95_ms(),
        m.sla_violation_rate()
    );
}
