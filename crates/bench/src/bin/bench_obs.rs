//! `bench_obs` — observability overhead and invariant-12/13 enforcement,
//! behind `BENCH_obs.json`.
//!
//! Runs the resilience rack scenario (surge + correlated rack outage, with
//! brownout shedding — the workload richest in trace event kinds: sheds,
//! faults, loans, reconfig steps) and checks, in order:
//!
//! 1. **Zero observer effect (invariant 12).** The traced run's
//!    [`FaultReport`] must be identical — compared through `Debug`, which
//!    covers every field including per-query records — to the untraced
//!    run's, at 1 and 4 worker threads.
//! 2. **Trace thread-invariance.** The merged trace's JSONL rendering is
//!    byte-identical at 1, 2 and 4 threads (the trace inherits
//!    invariant 11).
//! 3. **Disabled path is allocation-free.** A counting global allocator
//!    watches a million disabled-hook iterations (`Option::None` guard,
//!    exactly the engine's untraced path) allocate nothing, and two
//!    untraced engine runs allocate the exact same count.
//! 4. **Recorder and online-plane overhead.** Untraced vs traced vs
//!    online wall time — the median ratio over many back-to-back rep
//!    triples — as events/sec over the recorded event count. Measured on
//!    a 32-shard megacluster-density fleet under `Lookahead` windowing
//!    (the sharded engine's production mode), fault-free so the number
//!    isolates observability from recovery work. At this density the
//!    retained trace outgrows the cache hierarchy and the recorder pays
//!    its real memory cost; the enforced relation is that the streaming
//!    plane stays cheaper — `online_overhead_pct ≤ traced_overhead_pct`
//!    (CI guards it) — plus a loose ≤ 60 % ceiling on the recorder
//!    itself.
//! 5. **Exact breakdown.** Per-class components from
//!    [`paris_elsa::obs::analyze()`] must sum to the measured end-to-end
//!    latency with no residual, and the lifecycle must conserve
//!    (`offered = routed + shed`, every arrival completes exactly once).
//! 6. **Online plane ≡ trace oracle (invariant 13).** The live
//!    [`MetricRegistry`] streamed by the instrumented rack run equals
//!    `MetricRegistry::from_trace` of the same run's trace byte for byte,
//!    at 1 and 4 threads, and the registry itself is thread-invariant.
//!    Peak live allocator bytes under the online plane must stay strictly
//!    below trace retention's.
//! 7. **SLO alerts + causal attribution.** The rack outage must fire at
//!    least one deterministic burn-rate alert (identical log at 1 and 4
//!    threads), and each alert's worst window attributes its p99 excess
//!    to ranked causes that sum with **zero residual**.
//!
//! Also writes the merged trace as `BENCH_obs.trace.json` (Chrome
//! `trace_event` JSON, including SLO alert rows — load it in
//! `chrome://tracing` or Perfetto).
//!
//! Usage: `cargo run --release --bin bench_obs [--quick] [--smoke] [--seed N]`
//!
//! `--smoke` runs a tiny trace — CI uses it to catch bench regressions;
//! the numbers it writes are not comparable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use paris_bench::print_table;
use paris_bench::scenarios::{mobilenet_table, RackScenario};
use paris_elsa::cluster::Cluster;
use paris_elsa::faults::{
    run_with_faults_windowed, run_with_faults_windowed_instrumented,
    run_with_faults_windowed_observed, run_with_faults_windowed_traced, FaultPlan, FaultReport,
};
use paris_elsa::obs::{
    alert_records, analyze, attribute_alerts, check_conservation, evaluate_slos, jsonl,
    write_alert_rows, write_query_trace, ChromeTraceWriter, MetricRegistry, QueryTrace, SloSpec,
};
use paris_elsa::prelude::*;

/// Counts every allocation, and tracks live/peak heap bytes, so the
/// disabled tracing path can be asserted allocation-free and the online
/// plane's peak footprint compared against trace retention's.
/// Deallocations only shrink the live counter — the checks need "how many
/// allocations happened" and "how high did live bytes get" between two
/// points.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Resets the peak-bytes watermark to the current live bytes and returns
/// the live level — call before a run whose peak is being measured.
fn reset_peak() -> u64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// A million iterations of the exact shape of an engine tracing hook with
/// the recorder detached; returns how many allocations they performed.
fn disabled_hook_allocs() -> u64 {
    use paris_elsa::obs::{TraceEvent, TraceSink};
    let mut sink: Option<FlightRecorder> = std::hint::black_box(None);
    let before = allocs();
    for i in 0..1_000_000u64 {
        if let Some(tr) = sink.as_mut() {
            tr.record(SimTime::from_nanos(i), i, TraceEvent::Requeue { query: i });
        }
    }
    std::hint::black_box(&sink);
    allocs() - before
}

/// The overhead workload: a 32-shard, 4-GPU-each, two-model JSQ fleet at
/// 40 % of capacity — megacluster density, so a retained trace outgrows
/// the last-level cache and the recorder pays its real memory cost, the
/// regime the online-vs-traced comparison is about.
fn dense_fleet(
    table: &ProfileTable,
    duration_s: f64,
    seed: u64,
) -> (Cluster, Vec<TaggedQuerySpec>) {
    use paris_elsa::cluster::RouterPolicy;
    let dist = BatchDistribution::paper_default();
    let gpus = 4;
    let mk = || {
        MultiModelServer::new(
            vec![
                ModelSpec::new("m0", table.clone(), dist.clone()),
                ModelSpec::new("m1", table.clone(), dist.clone()),
            ],
            GpcBudget::new(gpus * 7, gpus),
            MultiModelConfig::new().with_detail(ReportDetail::Summary),
        )
        .expect("shard plan builds")
    };
    let shards = 32;
    let capacity: f64 = (0..shards).map(|_| mk().capacity_hint_qps()).sum();
    let cluster = Cluster::new(
        (0..shards).map(|_| mk()).collect(),
        RouterPolicy::JoinShortestQueue,
    );
    let qps = 0.4 * capacity;
    let trace = MultiTraceGenerator::new(
        vec![PhaseSpec::new(
            duration_s,
            vec![(qps, dist.clone()), (qps, dist)],
        )],
        seed,
    )
    .generate();
    (cluster, trace)
}

fn main() {
    let opts = paris_bench::TrajectoryOpts::from_args(41);
    let duration_s = opts.pick(8.0, 4.0, 1.5);
    let table = mobilenet_table();
    let rack = RackScenario::new(duration_s, opts.seed, &table);
    let trace_in = rack.trace();
    let plan = rack.plan();
    let unpinned = || trace_in.iter().copied().map(|tq| (None, tq));

    let untraced = |threads: usize| -> FaultReport {
        run_with_faults_windowed(
            &rack.cluster(true),
            unpinned(),
            ReportDetail::Full,
            &plan,
            SyncWindow::PerEvent,
            threads,
        )
    };
    let traced = |threads: usize| -> (FaultReport, QueryTrace) {
        run_with_faults_windowed_traced(
            &rack.cluster(true),
            unpinned(),
            ReportDetail::Full,
            &plan,
            SyncWindow::PerEvent,
            threads,
        )
    };

    // -- 1. Zero observer effect (invariant 12), threads 1 and 4 ----------
    let alloc_mark = allocs();
    let base1 = untraced(1);
    let untraced_allocs_a = allocs() - alloc_mark;
    let (rep1, trace1) = traced(1);
    let zero_t1 = format!("{base1:?}") == format!("{rep1:?}");
    let base4 = untraced(4);
    let (rep4, trace4) = traced(4);
    let zero_t4 = format!("{base4:?}") == format!("{rep4:?}");
    let zero_observer = zero_t1 && zero_t4;
    assert!(
        zero_observer,
        "invariant 12 violated: traced report differs from untraced \
         (threads 1: {zero_t1}, threads 4: {zero_t4})"
    );

    // -- 2. Trace thread-invariance, threads {1, 2, 4} ---------------------
    let (_, trace2) = traced(2);
    let lines1 = jsonl(&trace1);
    let thread_invariant = lines1 == jsonl(&trace2) && lines1 == jsonl(&trace4);
    assert!(
        thread_invariant,
        "merged trace must be byte-identical at 1, 2 and 4 threads"
    );

    // -- 3. Disabled path allocation-free ----------------------------------
    let hook_allocs = disabled_hook_allocs();
    let alloc_mark = allocs();
    let base_again = untraced(1);
    let untraced_allocs_b = allocs() - alloc_mark;
    assert_eq!(
        format!("{base_again:?}"),
        format!("{base1:?}"),
        "untraced rerun must reproduce the same report"
    );
    let alloc_free = hook_allocs == 0 && untraced_allocs_a == untraced_allocs_b;
    assert!(
        alloc_free,
        "disabled tracing path must not allocate \
         (hook allocs {hook_allocs}, run allocs {untraced_allocs_a} vs {untraced_allocs_b})"
    );

    // -- 4. Observability overhead, median wall time on the dense fleet ----
    // One rep is only tens of milliseconds, so timing needs many reps to
    // shed scheduler noise on a shared host. Each rep times an untraced,
    // a traced, and an online run back to back; each overhead is the
    // **median rep's ratio against its own untraced half**: the grouping
    // cancels whole-process slowdowns (a background burst slows all
    // thirds of a rep), and the median ignores outlier reps without the
    // min's optimistic bias.
    let online_window_ns: u64 = 100_000_000;
    let dense_duration_s = opts.pick(2.0, 1.5, 0.5);
    let reps = opts.pick(41, 15, 7);
    let (fleet, fleet_trace) = dense_fleet(&table, dense_duration_s, opts.seed);
    let fleet_unpinned = || fleet_trace.iter().copied().map(|tq| (None, tq));
    let no_faults = FaultPlan::new();
    let window = SyncWindow::Lookahead(SimDuration::from_millis(2));
    let mut triples: Vec<(f64, f64, f64)> = Vec::with_capacity(reps);
    let mut events = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_with_faults_windowed(
            &fleet,
            fleet_unpinned(),
            ReportDetail::Summary,
            &no_faults,
            window,
            1,
        );
        let rep_untraced = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (online_report, fleet_registry) = run_with_faults_windowed_observed(
            &fleet,
            fleet_unpinned(),
            ReportDetail::Summary,
            &no_faults,
            window,
            1,
            online_window_ns,
        );
        let rep_online = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (traced_report, fleet_recorded) = run_with_faults_windowed_traced(
            &fleet,
            fleet_unpinned(),
            ReportDetail::Summary,
            &no_faults,
            window,
            1,
        );
        let rep_traced = t0.elapsed().as_secs_f64();
        triples.push((rep_untraced, rep_traced, rep_online));
        events = fleet_recorded.len();
        drop((
            report,
            traced_report,
            fleet_recorded,
            online_report,
            fleet_registry,
        ));
    }
    triples.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (untraced_secs, traced_secs, _) = triples[triples.len() / 2];
    let overhead_pct = (traced_secs / untraced_secs - 1.0).max(0.0) * 100.0;
    triples.sort_by(|a, b| (a.2 / a.0).total_cmp(&(b.2 / b.0)));
    let (online_base_secs, _, online_secs) = triples[triples.len() / 2];
    let online_overhead_pct = (online_secs / online_base_secs - 1.0).max(0.0) * 100.0;
    let events_per_sec_traced = events as f64 / traced_secs;
    let events_per_sec_untraced = events as f64 / untraced_secs;
    let online_cheaper_than_trace = online_overhead_pct <= overhead_pct;

    // Peak live-heap comparison, one dedicated run each so the watermark
    // isolates a single run type: the online plane keeps O(1) state per
    // (series, window) while the recorder retains every event, so its
    // peak must sit strictly below trace retention's.
    let live = reset_peak();
    let keep = untraced(1);
    let peak_untraced_bytes = peak_bytes() - live;
    drop(keep);
    let live = reset_peak();
    let keep = traced(1);
    let peak_traced_bytes = peak_bytes() - live;
    drop(keep);
    let live = reset_peak();
    let keep = run_with_faults_windowed_observed(
        &rack.cluster(true),
        unpinned(),
        ReportDetail::Full,
        &plan,
        SyncWindow::PerEvent,
        1,
        online_window_ns,
    );
    let peak_online_bytes = peak_bytes() - live;
    drop(keep);
    let online_peak_below_trace = peak_online_bytes < peak_traced_bytes;
    assert!(
        online_peak_below_trace,
        "online plane must peak strictly below trace retention \
         ({peak_online_bytes} vs {peak_traced_bytes} bytes)"
    );

    // -- 5. Exact breakdown + conservation ---------------------------------
    let analysis = analyze(&trace1);
    for c in &analysis.classes {
        assert_eq!(
            c.components_sum(),
            c.total_latency_ns as i128,
            "class {} breakdown must sum to end-to-end latency exactly",
            c.group
        );
    }
    let conservation = check_conservation(&trace1).expect("flight-recorder conservation");
    let breakdown = rep1.cluster.breakdown();

    // -- 6. Online plane ≡ trace oracle (invariant 13), threads {1, 4} -----
    let lane_gpcs = rack.cluster(true).lane_gpcs();
    let instrumented = |threads: usize| {
        run_with_faults_windowed_instrumented(
            &rack.cluster(true),
            unpinned(),
            ReportDetail::Full,
            &plan,
            SyncWindow::PerEvent,
            threads,
            online_window_ns,
        )
    };
    let (irep1, itrace1, ireg1) = instrumented(1);
    let (_, itrace4, ireg4) = instrumented(4);
    let online_zero_observer = format!("{irep1:?}") == format!("{base1:?}");
    assert!(
        online_zero_observer,
        "invariant 12 violated: instrumented report differs from untraced"
    );
    let oracle1 = MetricRegistry::from_trace(&itrace1, online_window_ns, &lane_gpcs);
    let oracle4 = MetricRegistry::from_trace(&itrace4, online_window_ns, &lane_gpcs);
    let online_matches_oracle = ireg1 == oracle1 && ireg4 == oracle4 && ireg1 == ireg4;
    assert!(
        online_matches_oracle,
        "invariant 13 violated: online registry must equal MetricRegistry::from_trace \
         byte-for-byte at 1 and 4 threads \
         (t1 == oracle: {}, t4 == oracle: {}, t1 == t4: {})",
        ireg1 == oracle1,
        ireg4 == oracle4,
        ireg1 == ireg4,
    );

    // -- 7. SLO burn-rate alerts + causal tail attribution -----------------
    let slo_specs = [
        SloSpec::new("premium-avail", 0, 0.95).with_windows(2, 6),
        SloSpec::new("batch-avail", 1, 0.5).with_windows(2, 6),
    ];
    let alerts = evaluate_slos(&ireg1, &slo_specs);
    let alerts4 = evaluate_slos(&ireg4, &slo_specs);
    let alerts_deterministic = format!("{alerts:?}") == format!("{alerts4:?}");
    assert!(
        alerts_deterministic,
        "alert log diverged between 1 and 4 threads"
    );
    assert!(
        !alerts.is_empty(),
        "the rack outage must fire at least one burn-rate alert"
    );
    let attributions = attribute_alerts(&itrace1, online_window_ns, &alerts);
    assert!(
        !attributions.is_empty(),
        "fired alerts must have attributable windows"
    );
    let attribution_zero_residual = attributions.iter().all(|a| a.causes_sum() == a.excess_ns);
    assert!(
        attribution_zero_residual,
        "cause shares must sum to the window p99 excess exactly"
    );

    let rows: Vec<Vec<String>> = analysis
        .classes
        .iter()
        .map(|c| {
            let ms = |v: u128| format!("{:.1}", v as f64 / 1e6);
            vec![
                c.group.to_string(),
                c.completed.to_string(),
                ms(c.frontend_ns),
                ms(c.queue_ns),
                ms(c.reconfig_wait_ns),
                ms(c.service_clean_ns),
                ms(c.degrade_inflation_ns),
                format!("{:.1}", c.noise_delta_ns as f64 / 1e6),
                ms(c.total_latency_ns),
            ]
        })
        .collect();
    print_table(
        &format!(
            "exact latency breakdown (Σ ms per class), rack scenario {duration_s}s, \
             {} events",
            trace1.len()
        ),
        &[
            "class", "done", "frontend", "queue", "reconfig", "service", "inflate", "noise",
            "total",
        ],
        &rows,
    );
    let attribution_rows: Vec<Vec<String>> = attributions
        .iter()
        .flat_map(|a| {
            let mut first = true;
            a.causes
                .iter()
                .filter(|c| c.share_ns != 0)
                .map(move |c| {
                    let head = if first {
                        first = false;
                        vec![
                            format!("{}", a.group),
                            format!("{}", a.bin),
                            format!("{:.1}", a.p99_latency_ns as f64 / 1e6),
                            format!("{}", a.excess_ns as f64 / 1e6),
                        ]
                    } else {
                        vec![String::new(), String::new(), String::new(), String::new()]
                    };
                    let mut row = head;
                    row.push(c.cause.to_string());
                    row.push(format!("{:.2}", c.share_ns as f64 / 1e6));
                    row
                })
                .collect::<Vec<_>>()
        })
        .collect();
    print_table(
        "causal tail attribution (per fired alert's worst window)",
        &["class", "bin", "p99 ms", "excess ms", "cause", "share ms"],
        &attribution_rows,
    );
    println!(
        "\nzero observer effect:      {zero_observer} (threads 1 & 4)\n\
         trace thread-invariant:    {thread_invariant} (threads 1, 2, 4)\n\
         disabled path alloc-free:  {alloc_free}\n\
         recorder overhead:         {overhead_pct:.2}% on the dense fleet \
         ({events_per_sec_untraced:.0} -> {events_per_sec_traced:.0} events/s, {events} events)\n\
         online overhead:           {online_overhead_pct:.2}% — cheaper than trace retention: \
         {online_cheaper_than_trace} (peak heap {peak_online_bytes} \
         vs traced {peak_traced_bytes} bytes)\n\
         online matches oracle:     {online_matches_oracle} (invariant 13, threads 1 & 4)\n\
         alerts:                    {} fired, deterministic {alerts_deterministic}, \
         attribution residual 0: {attribution_zero_residual}\n\
         conservation:              offered {} = routed {} + shed {}, \
         arrivals {} = completed {}",
        alerts.len(),
        conservation.offered,
        conservation.routed,
        conservation.shed,
        conservation.arrivals,
        conservation.completed,
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"bench_obs/v2\",\n");
    json.push_str("  \"model\": \"mobilenet_v1\",\n");
    let _ = writeln!(json, "  \"duration_secs\": {duration_s},");
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"zero_observer_effect\": {zero_observer},");
    let _ = writeln!(json, "  \"trace_thread_invariant\": {thread_invariant},");
    let _ = writeln!(json, "  \"disabled_path_alloc_free\": {alloc_free},");
    json.push_str("  \"online\": {\n");
    let _ = writeln!(json, "    \"window_ns\": {online_window_ns},");
    let _ = writeln!(
        json,
        "    \"online_matches_oracle\": {online_matches_oracle},"
    );
    let _ = writeln!(
        json,
        "    \"online_zero_observer\": {online_zero_observer},"
    );
    let _ = writeln!(
        json,
        "    \"online_overhead_pct\": {online_overhead_pct:.3},"
    );
    let _ = writeln!(
        json,
        "    \"online_cheaper_than_trace\": {online_cheaper_than_trace},"
    );
    let _ = writeln!(json, "    \"online_secs\": {online_secs:.6},");
    let _ = writeln!(json, "    \"online_base_secs\": {online_base_secs:.6},");
    let _ = writeln!(json, "    \"peak_bytes_untraced\": {peak_untraced_bytes},");
    let _ = writeln!(json, "    \"peak_bytes_traced\": {peak_traced_bytes},");
    let _ = writeln!(json, "    \"peak_bytes_online\": {peak_online_bytes},");
    let _ = writeln!(
        json,
        "    \"online_peak_below_trace\": {online_peak_below_trace}"
    );
    json.push_str("  },\n");
    json.push_str("  \"slo\": {\n");
    let _ = writeln!(json, "    \"alerts_fired\": {},", alerts.len());
    let _ = writeln!(
        json,
        "    \"alerts_deterministic\": {alerts_deterministic},"
    );
    let _ = writeln!(
        json,
        "    \"attribution_zero_residual\": {attribution_zero_residual},"
    );
    json.push_str("    \"alerts\": [\n");
    for (i, (a, attr)) in alerts.iter().zip(&attributions).enumerate() {
        let _ = write!(
            json,
            "      {{\"slo\": {}, \"group\": {}, \"fired_bin\": {}, \"resolved_bin\": {}, \
             \"worst_bin\": {}, \"burn_short\": {:.3}, \"p99_latency_ns\": {}, \
             \"excess_ns\": {}, \"causes\": [",
            a.slo,
            a.group,
            a.fired_bin,
            a.resolved_bin.map_or(-1i64, |b| b as i64),
            a.worst_bin,
            a.burn_short,
            attr.p99_latency_ns,
            attr.excess_ns,
        );
        for (j, c) in attr.causes.iter().filter(|c| c.share_ns != 0).enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            let _ = write!(
                json,
                "{{\"cause\": \"{}\", \"share_ns\": {}}}",
                c.cause, c.share_ns
            );
        }
        json.push_str("]}");
        json.push_str(if i + 1 < attributions.len().min(alerts.len()) {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"recorder\": {\n");
    json.push_str("    \"workload\": \"32x4gpu-jsq-lookahead2ms\",\n");
    let _ = writeln!(json, "    \"workload_secs\": {dense_duration_s},");
    let _ = writeln!(json, "    \"events\": {events},");
    let _ = writeln!(
        json,
        "    \"events_per_sec_traced\": {events_per_sec_traced:.0},"
    );
    let _ = writeln!(
        json,
        "    \"events_per_sec_untraced\": {events_per_sec_untraced:.0},"
    );
    let _ = writeln!(json, "    \"untraced_secs\": {untraced_secs:.6},");
    let _ = writeln!(json, "    \"traced_secs\": {traced_secs:.6},");
    let _ = writeln!(json, "    \"traced_overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(
        json,
        "    \"overhead_within_target\": {}",
        overhead_pct <= 60.0
    );
    json.push_str("  },\n");
    json.push_str("  \"breakdown\": {\n");
    let _ = writeln!(json, "    \"queue_ns_p50\": {},", breakdown.queue_ns_p50);
    let _ = writeln!(json, "    \"queue_ns_p99\": {},", breakdown.queue_ns_p99);
    let _ = writeln!(
        json,
        "    \"service_ns_p50\": {},",
        breakdown.service_ns_p50
    );
    let _ = writeln!(
        json,
        "    \"service_ns_p99\": {},",
        breakdown.service_ns_p99
    );
    let _ = writeln!(
        json,
        "    \"reconfig_wait_ns_total\": {}",
        breakdown.reconfig_wait_ns_total
    );
    json.push_str("  },\n");
    json.push_str("  \"classes\": [\n");
    for (i, c) in analysis.classes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"group\": {}, \"completed\": {}, \"frontend_ns\": {}, \
             \"queue_ns\": {}, \"reconfig_wait_ns\": {}, \"service_clean_ns\": {}, \
             \"degrade_inflation_ns\": {}, \"noise_delta_ns\": {}, \
             \"total_latency_ns\": {}, \"sum_exact\": {}}}",
            c.group,
            c.completed,
            c.frontend_ns,
            c.queue_ns,
            c.reconfig_wait_ns,
            c.service_clean_ns,
            c.degrade_inflation_ns,
            c.noise_delta_ns,
            c.total_latency_ns,
            c.components_sum() == c.total_latency_ns as i128,
        );
        json.push_str(if i + 1 < analysis.classes.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"conservation\": {\n");
    let _ = writeln!(json, "    \"offered\": {},", conservation.offered);
    let _ = writeln!(json, "    \"routed\": {},", conservation.routed);
    let _ = writeln!(json, "    \"shed\": {},", conservation.shed);
    let _ = writeln!(json, "    \"arrivals\": {},", conservation.arrivals);
    let _ = writeln!(json, "    \"completed\": {}", conservation.completed);
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    // Chrome trace: the annotated query trace (alert fire/resolve
    // instants in the global event order) plus one slice per fired alert
    // spanning fire → resolve.
    let annotated = itrace1.annotated(alert_records(&alerts, online_window_ns).into_records());
    let mut w = ChromeTraceWriter::new();
    write_query_trace(&mut w, &annotated);
    write_alert_rows(
        &mut w,
        &alerts,
        &slo_specs,
        online_window_ns,
        annotated.horizon().as_nanos(),
    );
    std::fs::write("BENCH_obs.trace.json", w.finish()).expect("write BENCH_obs.trace.json");
    println!("\nwrote BENCH_obs.json and BENCH_obs.trace.json");
}
