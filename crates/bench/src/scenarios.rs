//! Shared resilience scenarios: the PR-6 rack-outage-plus-surge and
//! slow-GPU setups, used identically by `bench_resilience` (headline
//! numbers), `bench_obs` (recorder overhead + zero-observer check) and
//! `trace_report` (latency breakdown). One definition, or the three
//! binaries silently stop measuring the same workload.
//!
//! Everything here is a pure function of `(duration_s, seed)` — moving
//! the code out of `bench_resilience` must not change a single byte of
//! `BENCH_resilience.json`.

use paris_elsa::cluster::{Cluster, RouterPolicy, ShedPolicy};
use paris_elsa::dnn::ModelKind;
use paris_elsa::faults::{FaultPlan, FaultTopology};
use paris_elsa::prelude::*;

/// Shared model table: MobileNet on A100 MIG slices.
#[must_use]
pub fn mobilenet_table() -> ProfileTable {
    let perf = PerfModel::new(DeviceSpec::a100());
    ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32)
}

// ---------------------------------------------------------------------------
// Scenario 1: correlated rack outage + surge, with/without brownout shedding.
// ---------------------------------------------------------------------------

/// Correlated rack outage during a load surge: two 3-GPU shards serving a
/// premium (class 0) and a batch (class 1) model, GPU lanes racked
/// pairwise, `rack0` out in the middle of the surge.
pub struct RackScenario {
    pub duration_s: f64,
    pub seed: u64,
    pub shard_gpus: Vec<usize>,
    pub gpus_per_rack: usize,
    pub table: ProfileTable,
    pub dist: BatchDistribution,
    /// Per-model offered rate in the calm phases (premium and batch each).
    pub calm_qps: f64,
    /// Per-model offered rate in the surge phase.
    pub surge_qps: f64,
    pub outage: (f64, f64),
}

impl RackScenario {
    #[must_use]
    pub fn new(duration_s: f64, seed: u64, table: &ProfileTable) -> Self {
        let dist = BatchDistribution::paper_default();
        let shard_gpus = vec![3, 3];
        let fleet: f64 = shard_gpus
            .iter()
            .map(|&g| {
                Self::shard(table, &dist, g)
                    .expect("shard plan builds")
                    .capacity_hint_qps()
            })
            .sum();
        RackScenario {
            duration_s,
            seed,
            shard_gpus,
            gpus_per_rack: 2,
            table: table.clone(),
            dist,
            // Calm: 50 % of fleet capacity across both models. Surge: 90 %
            // offered while the rack outage cuts capacity to 4/6 — ~1.35×
            // overload, where admitting everything drowns premium too.
            calm_qps: 0.25 * fleet,
            surge_qps: 0.45 * fleet,
            // The outage sits inside the surge window.
            outage: (0.3 * duration_s, 0.7 * duration_s),
        }
    }

    fn shard(
        table: &ProfileTable,
        dist: &BatchDistribution,
        gpus: usize,
    ) -> Result<MultiModelServer, paris_elsa::paris::PlanError> {
        MultiModelServer::new(
            vec![
                ModelSpec::new("premium", table.clone(), dist.clone()),
                ModelSpec::new("batch", table.clone(), dist.clone()),
            ],
            GpcBudget::new(gpus * 7, gpus),
            MultiModelConfig::new().with_detail(ReportDetail::Summary),
        )
    }

    #[must_use]
    pub fn cluster(&self, shedding: bool) -> Cluster {
        let shards = self
            .shard_gpus
            .iter()
            .map(|&g| Self::shard(&self.table, &self.dist, g).expect("shard plan builds"))
            .collect();
        let cluster = Cluster::new(shards, RouterPolicy::JoinShortestQueue);
        if shedding {
            // Margin 0.5: batch browns out once its projected delay eats
            // half the SLA budget, keeping queues short enough that
            // premium's own slack survives the outage.
            cluster.with_shed(ShedPolicy::new(vec![0, 1]).with_margin(0.5))
        } else {
            cluster
        }
    }

    #[must_use]
    pub fn trace(&self) -> Vec<TaggedQuerySpec> {
        let both = |qps: f64| vec![(qps, self.dist.clone()), (qps, self.dist.clone())];
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(0.25 * self.duration_s, both(self.calm_qps)),
                PhaseSpec::new(0.5 * self.duration_s, both(self.surge_qps)),
                PhaseSpec::new(0.25 * self.duration_s, both(self.calm_qps)),
            ],
            self.seed,
        )
        .generate()
    }

    #[must_use]
    pub fn topology(&self) -> FaultTopology {
        FaultTopology::racks(&self.shard_gpus, self.gpus_per_rack)
    }

    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new().with_domain_outage(&self.topology(), "rack0", self.outage.0, self.outage.1)
    }
}

// ---------------------------------------------------------------------------
// Scenario 2: slow-GPU partial degradation, placement-aware vs blind.
// ---------------------------------------------------------------------------

/// Slow-GPU partial degradation: one 3-GPU shard, thermal throttling slows
/// GPU 0 by 4× for the middle half of the run.
pub struct SlowScenario {
    pub duration_s: f64,
    pub seed: u64,
    pub gpus: usize,
    pub factor: f64,
    pub window: (f64, f64),
    pub table: ProfileTable,
    pub dist: BatchDistribution,
    pub rate_qps: f64,
}

impl SlowScenario {
    #[must_use]
    pub fn new(duration_s: f64, seed: u64, table: &ProfileTable) -> Self {
        let dist = BatchDistribution::paper_default();
        let gpus = 3;
        let capacity = Self::shard(table, &dist, gpus, true)
            .expect("shard plan builds")
            .capacity_hint_qps();
        SlowScenario {
            duration_s,
            seed,
            gpus,
            // 4× throttling on one of three GPUs for the middle half of
            // the run: effective capacity ~75 % of nominal under the
            // window, against a 65 % offered load — tight enough that
            // placing onto the sick GPU visibly drags the tail.
            factor: 4.0,
            window: (0.25 * duration_s, 0.75 * duration_s),
            table: table.clone(),
            dist,
            rate_qps: 0.65 * capacity,
        }
    }

    fn shard(
        table: &ProfileTable,
        dist: &BatchDistribution,
        gpus: usize,
        aware: bool,
    ) -> Result<MultiModelServer, paris_elsa::paris::PlanError> {
        let config = MultiModelConfig::new().with_detail(ReportDetail::Summary);
        let config = if aware {
            config
        } else {
            config.with_degrade_blind()
        };
        MultiModelServer::new(
            vec![ModelSpec::new("mobilenet_v1", table.clone(), dist.clone())],
            GpcBudget::new(gpus * 7, gpus),
            config,
        )
    }

    #[must_use]
    pub fn cluster(&self, aware: bool) -> Cluster {
        let shard =
            Self::shard(&self.table, &self.dist, self.gpus, aware).expect("shard plan builds");
        Cluster::new(vec![shard], RouterPolicy::JoinShortestQueue)
    }

    #[must_use]
    pub fn trace(&self) -> Vec<TaggedQuerySpec> {
        MultiTraceGenerator::new(
            vec![PhaseSpec::new(
                self.duration_s,
                vec![(self.rate_qps, self.dist.clone())],
            )],
            self.seed.wrapping_add(1),
        )
        .generate()
    }

    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new().with_gpu_degrade(0, 0, self.factor, self.window.0, self.window.1)
    }
}
