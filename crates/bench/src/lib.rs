//! Shared harness utilities for the experiment binaries that regenerate the
//! paper's tables and figures (see DESIGN.md §4 for the experiment index).

use paris_elsa::prelude::*;

pub mod scenarios;

/// Runtime options shared by every experiment binary.
///
/// Every binary accepts `--quick` (shorter simulated windows for smoke
/// runs) and `--seed <n>`.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentOpts {
    /// Simulated seconds of arrivals per operating point.
    pub duration_s: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentOpts {
    /// Parses options from the process arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        ExperimentOpts {
            duration_s: if quick { 0.5 } else { 2.0 },
            seed,
        }
    }

    /// The sweep configuration for a testbed.
    #[must_use]
    pub fn sweep(&self, bed: &Testbed) -> SweepConfig {
        SweepConfig::new(self.duration_s, self.seed, bed.sla_ns())
    }
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            duration_s: 2.0,
            seed: 42,
        }
    }
}

/// Scrapes the first `"key": <number>` appearing after `anchor` in a JSON
/// text — enough to read a metric back out of a previously generated
/// `BENCH_*.json` without a JSON parser. The trajectory benches use this
/// to compute `speedup_vs_prev` against the checked-in artifact before
/// overwriting it.
#[must_use]
pub fn scrape_number_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let rest = &text[text.find(anchor)? + anchor.len()..];
    let needle = format!("\"{key}\":");
    let after = rest[rest.find(&needle)? + needle.len()..].trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Parses `--<name> <value>` from the process arguments.
#[must_use]
pub fn arg_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let flag = format!("--{name}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// Runtime options shared by the trajectory benches (`bench_server`,
/// `bench_multimodel`, `bench_cluster`): `--quick` (shorter runs),
/// `--smoke` (tiny traces + shallow searches for CI fail-fast; numbers
/// not comparable) and `--seed <n>`.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryOpts {
    /// Shorter measurement (still meaningful numbers).
    pub quick: bool,
    /// Tiny-trace CI smoke mode (numbers not comparable).
    pub smoke: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl TrajectoryOpts {
    /// Parses options from the process arguments, with the bench's
    /// default seed.
    #[must_use]
    pub fn from_args(default_seed: u64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        TrajectoryOpts {
            quick: args.iter().any(|a| a == "--quick"),
            smoke: args.iter().any(|a| a == "--smoke"),
            seed: arg_value("seed").unwrap_or(default_seed),
        }
    }

    /// Picks the value matching the run mode (smoke wins over quick).
    #[must_use]
    pub fn pick<T>(&self, full: T, quick: T, smoke: T) -> T {
        if self.smoke {
            smoke
        } else if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Result of [`max_scale_search`].
#[derive(Debug, Clone, Copy)]
pub struct ScaleSearch<P> {
    /// The outcome at the largest passing scale (the caller's `failed`
    /// sentinel when no probed scale passed).
    pub best: P,
    /// The outcome at the *nominal* scale 1.0 — always the search's first
    /// probe, returned so callers need not re-run that simulation.
    pub nominal: P,
}

/// The trajectory benches' shared load-scale search: the largest scale at
/// which `ok` holds, via [`parallel_doubling_search`] seeded at the
/// *nominal* scale 1.0 (very light loads starve drift detectors of
/// samples, so probing deep underload first would measure detector
/// blindness, not capacity; failures bisect downward from nominal).
///
/// # Panics
///
/// Panics if `steps` is zero (the nominal point would never be probed).
#[must_use]
pub fn max_scale_search<P, M, O>(steps: usize, measure: M, ok: O, failed: P) -> ScaleSearch<P>
where
    P: Copy + Send,
    M: Fn(f64) -> P + Sync,
    O: Fn(&P) -> bool,
{
    assert!(
        steps >= 1,
        "the search must probe at least the nominal scale"
    );
    let result = parallel_doubling_search(1.0, steps, steps, true, measure, ok);
    ScaleSearch {
        best: result.best().map(|&(_, p)| p).unwrap_or(failed),
        nominal: result.points[0].1,
    }
}

/// Prints a fixed-width table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// One side of a transition-dip measurement: the spike statistic plus
/// whether it had to fall back to whole-run windows.
#[derive(Debug, Clone, Copy)]
pub struct TransitionDip {
    /// Worst tumbling-window p99, milliseconds.
    pub worst_p99_ms: f64,
    /// `true` when **no completion landed in a transition interval** (e.g.
    /// a smoke run that never reconfigured) and the statistic is the whole
    /// run's worst window instead. Benches must surface this flag next to
    /// the number: a ratio of one fallback side against one transition
    /// side compares incomparable statistics.
    pub fallback_whole_run: bool,
}

/// The transition-dip spike statistic shared by `bench_multimodel` and
/// `bench_cluster`: the worst `window_ns` tumbling-window p99 (in
/// milliseconds) over the completions that land **during a
/// reconfiguration** — inside any `[triggered_ns, completed_ns +
/// window_ns]` interval — so the spike a drain/reslice outage causes is
/// not averaged away by the calm rest of the run. One implementation for
/// both benches, or their `reconfig_dip` JSON fields silently stop being
/// comparable; the fallback case is flagged, not silent (see
/// [`TransitionDip::fallback_whole_run`]).
///
/// `completions` yields `(completed_ns, latency_ns)` pairs;
/// `transitions` holds each reconfiguration's
/// `(triggered_ns, completed_ns)`.
#[must_use]
pub fn transition_dip_p99_ms(
    window_ns: u64,
    transitions: &[(u64, u64)],
    completions: impl Iterator<Item = (u64, u64)>,
) -> TransitionDip {
    let mut tail = WindowedTail::new(window_ns);
    let mut whole_run = WindowedTail::new(window_ns);
    for (done, latency_ns) in completions {
        whole_run.record(done, latency_ns);
        let in_transition = transitions
            .iter()
            .any(|&(start, end)| done >= start && done <= end + window_ns);
        if in_transition {
            tail.record(done, latency_ns);
        }
    }
    if tail.windows() == 0 {
        TransitionDip {
            worst_p99_ms: whole_run.worst_p99_ms(),
            fallback_whole_run: true,
        }
    } else {
        TransitionDip {
            worst_p99_ms: tail.worst_p99_ms(),
            fallback_whole_run: false,
        }
    }
}

/// The dispatch-path benchmark workload shared by the criterion
/// microbench (`dispatch_path_20k_queries`) and the `bench_server` bin:
/// both must measure the *same* configuration or `BENCH_server.json`
/// silently stops being comparable to the microbench numbers.
///
/// Returns, for a partition count `n`, the FIFS server, the ELSA server
/// (paper-default SLA) and a dispatch-heavy trace of `queries` queries
/// offered at `200·n` q/s over a cycling mix of all five MIG profiles.
#[must_use]
pub fn dispatch_workload(
    n_partitions: usize,
    queries: usize,
) -> (InferenceServer, InferenceServer, Vec<QuerySpec>) {
    use paris_elsa::gpu::DeviceSpec;
    let perf = PerfModel::new(DeviceSpec::a100());
    let model = paris_elsa::dnn::ModelKind::MobileNet.build();
    let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    let sla = table.sla_target_ns(1.5);
    let partitions: Vec<ProfileSize> = (0..n_partitions)
        .map(|i| ProfileSize::ALL[i % ProfileSize::ALL.len()])
        .collect();
    let trace = TraceGenerator::new(
        n_partitions as f64 * 200.0,
        BatchDistribution::paper_default(),
        7,
    )
    .generate_count(queries);
    let fifs = InferenceServer::new(
        partitions.clone(),
        table.clone(),
        ServerConfig::new(SchedulerKind::Fifs),
    );
    let elsa = InferenceServer::new(
        partitions,
        table,
        ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))),
    );
    (fifs, elsa, trace)
}

/// The partition counts the dispatch-path benchmarks sweep.
pub const DISPATCH_BENCH_PARTITIONS: [usize; 3] = [8, 56, 224];

/// The full Figure 12 design list: four homogeneous baselines, the two
/// random-partitioned baselines, and the two PARIS designs.
#[must_use]
pub fn figure12_designs(seed: u64) -> Vec<(&'static str, DesignPoint)> {
    vec![
        ("GPU(7)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G7)),
        ("GPU(3)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G3)),
        ("GPU(2)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G2)),
        ("GPU(1)+FIFS", DesignPoint::HomogeneousFifs(ProfileSize::G1)),
        ("Random+FIFS", DesignPoint::RandomFifs { seed }),
        ("Random+ELSA", DesignPoint::RandomElsa { seed }),
        ("PARIS+FIFS", DesignPoint::ParisFifs),
        ("PARIS+ELSA", DesignPoint::ParisElsa),
    ]
}

/// Measures latency-bounded throughput for several designs on one testbed,
/// in parallel.
///
/// # Panics
///
/// Panics if a design's plan cannot be built.
#[must_use]
pub fn measure_designs(
    bed: &Testbed,
    designs: &[(&'static str, DesignPoint)],
    sweep: &SweepConfig,
) -> Vec<(&'static str, f64)> {
    let mut results: Vec<Option<(&'static str, f64)>> = vec![None; designs.len()];
    std::thread::scope(|scope| {
        for (slot, &(name, design)) in results.iter_mut().zip(designs.iter()) {
            scope.spawn(move || {
                let qps = bed
                    .latency_bounded_qps(design, sweep)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                *slot = Some((name, qps));
            });
        }
    });
    results.into_iter().map(|r| r.expect("measured")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_sane() {
        let o = ExperimentOpts::default();
        assert!(o.duration_s > 0.0);
    }

    #[test]
    fn figure12_lists_eight_designs() {
        let designs = figure12_designs(1);
        assert_eq!(designs.len(), 8);
        assert_eq!(designs[0].0, "GPU(7)+FIFS");
        assert_eq!(designs[7].0, "PARIS+ELSA");
    }
}
