//! # paris-core — PARIS and ELSA
//!
//! The paper's two contributions, implemented as pure algorithms over
//! profiling tables and queue snapshots (no simulator dependency — the same
//! code would drive a real MIG server fed by NVML measurements):
//!
//! * [`ProfileTable`] — the one-time `(partition size, batch) →
//!   latency/utilization` lookup table both algorithms consume (§IV-C),
//! * [`find_knee`] / [`find_knees`] — `MaxBatch_knee` derivation (§III-B,
//!   Algorithm 1 Step A),
//! * [`Paris`] — the partitioning algorithm (Algorithm 1) plus instance
//!   packing onto physical GPUs under real MIG placement rules, with
//!   [`homogeneous_plan`] and [`random_plan`] baselines,
//! * [`Elsa`] — the elastic scheduling algorithm (Equations 1–2 and
//!   Algorithm 2), with scan-order and fallback ablations.
//!
//! ```
//! use dnn_zoo::ModelKind;
//! use inference_workload::BatchDistribution;
//! use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
//! use paris_core::{GpcBudget, Paris, ProfileTable};
//!
//! // One-time profiling pass (the analytical stand-in for real hardware).
//! let model = ModelKind::ResNet50.build();
//! let perf = PerfModel::new(DeviceSpec::a100());
//! let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
//!
//! // PARIS: partition 48 GPCs across 8 A100s for a log-normal batch mix.
//! let dist = BatchDistribution::paper_default();
//! let plan = Paris::new(&table, &dist).plan(GpcBudget::new(48, 8))?;
//! println!("PARIS chose: {plan}");
//! # Ok::<(), paris_core::PlanError>(())
//! ```

mod diff;
mod elsa;
mod knee;
mod ordset;
mod paris;
mod placement;
mod profile;

pub use diff::{pack_gpus, plan_diff, PlanDiff, ReconfigMode, ReconfigSchedule, ReconfigStep};
pub use elsa::{Decision, Elsa, ElsaConfig, FallbackPolicy, PartitionSnapshot, ScanOrder};
pub use knee::{
    find_knee, find_knees, KneeRule, MaxBatchKnee, DEFAULT_KNEE_THRESHOLD, DEFAULT_TAKEOFF_FACTOR,
};
pub use ordset::{IndexSet, LoadSet};
pub use paris::{
    homogeneous_plan, random_plan, BatchSegment, GpcBudget, Paris, PartitionPlan, PlanError,
};
pub use placement::{scale_ns, ElsaState};
pub use profile::ProfileTable;
