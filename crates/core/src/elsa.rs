//! **ELSA** — the ELastic Scheduling Algorithm (paper §IV-C, Algorithm 2).
//!
//! ELSA is heterogeneity-aware: using the profiled latency lookup table it
//! predicts, for every partition, how long a new query would wait
//! (Equation 1) and how much SLA slack it would retain (Equation 2):
//!
//! ```text
//! T_wait    = Σ T_estimated,queued + T_remaining,current          (1)
//! SLA_slack = SLA_target − α·(T_wait + β·T_estimated,new)         (2)
//! ```
//!
//! **Step A** scans partitions smallest-first and places the query on the
//! first one whose slack is positive — smaller partitions are preferred
//! because they serve the query at higher GPU utilization. **Step B** (no
//! partition can meet SLA) places the query where it will finish soonest,
//! minimizing the damage it does to queries behind it.

use std::fmt;

use mig_gpu::ProfileSize;

use crate::profile::ProfileTable;

/// Iteration order of Algorithm 2 Step A (ablation D4 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScanOrder {
    /// The paper's order: smallest partitions first (Algorithm 2, line 3).
    #[default]
    SmallestFirst,
    /// Ablation: largest partitions first.
    LargestFirst,
}

/// What to do when no partition can satisfy the SLA (ablation D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FallbackPolicy {
    /// The paper's Step B: the partition that finishes the query soonest.
    #[default]
    FastestService,
    /// Ablation: the smallest partition regardless of load.
    SmallestPartition,
    /// Ablation: the largest partition regardless of load.
    LargestPartition,
}

/// Tunable parameters of the ELSA slack predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ElsaConfig {
    /// The SLA target queries are held to, nanoseconds.
    pub sla_ns: u64,
    /// Equation 2's α: scales the whole predicted service time.
    pub alpha: f64,
    /// Equation 2's β: scales the new query's own execution estimate.
    pub beta: f64,
    /// Step A iteration order.
    pub order: ScanOrder,
    /// Step B fallback selection.
    pub fallback: FallbackPolicy,
}

impl ElsaConfig {
    /// The paper's configuration: α = β = 1, smallest-first, fastest-service
    /// fallback.
    #[must_use]
    pub fn new(sla_ns: u64) -> Self {
        ElsaConfig {
            sla_ns,
            alpha: 1.0,
            beta: 1.0,
            order: ScanOrder::SmallestFirst,
            fallback: FallbackPolicy::FastestService,
        }
    }

    /// Overrides α (ablation D2).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// Overrides β (ablation D2).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not positive and finite.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        self.beta = beta;
        self
    }

    /// Overrides the Step A scan order (ablation D4).
    #[must_use]
    pub fn with_order(mut self, order: ScanOrder) -> Self {
        self.order = order;
        self
    }

    /// Overrides the Step B fallback policy (ablation D3).
    #[must_use]
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = fallback;
        self
    }
}

/// A point-in-time view of one partition's queue, as Equation 1 needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSnapshot {
    /// The partition's MIG profile.
    pub size: ProfileSize,
    /// `Σ T_estimated,queued`: total estimated execution time of queries
    /// waiting in the partition's local queue, nanoseconds.
    pub queued_work_ns: u64,
    /// `T_remaining,current`: estimated time until the currently executing
    /// query finishes (0 when idle), nanoseconds.
    pub remaining_current_ns: u64,
}

impl PartitionSnapshot {
    /// An idle partition of the given size.
    #[must_use]
    pub fn idle(size: ProfileSize) -> Self {
        PartitionSnapshot {
            size,
            queued_work_ns: 0,
            remaining_current_ns: 0,
        }
    }

    /// Equation 1: the wait a newly enqueued query would see.
    #[must_use]
    pub fn wait_ns(&self) -> u64 {
        self.queued_work_ns
            .saturating_add(self.remaining_current_ns)
    }
}

/// Where ELSA decided to send a query, and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Step A succeeded: `partition` can serve the query within SLA.
    WithinSla {
        /// Index into the snapshot slice.
        partition: usize,
        /// The predicted slack (Equation 2), nanoseconds.
        slack_ns: f64,
    },
    /// Step B: no partition meets SLA; `partition` minimizes service time.
    Fallback {
        /// Index into the snapshot slice.
        partition: usize,
        /// Predicted wait + execution, nanoseconds.
        expected_service_ns: u64,
    },
}

impl Decision {
    /// The chosen partition index.
    #[must_use]
    pub fn partition(&self) -> usize {
        match *self {
            Decision::WithinSla { partition, .. } | Decision::Fallback { partition, .. } => {
                partition
            }
        }
    }

    /// Whether Step A found an SLA-satisfying partition.
    #[must_use]
    pub fn is_within_sla(&self) -> bool {
        matches!(self, Decision::WithinSla { .. })
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Decision::WithinSla {
                partition,
                slack_ns,
            } => write!(
                f,
                "partition {partition} within SLA (slack {:.3} ms)",
                slack_ns / 1e6
            ),
            Decision::Fallback {
                partition,
                expected_service_ns,
            } => write!(
                f,
                "partition {partition} as fastest fallback ({:.3} ms service)",
                expected_service_ns as f64 / 1e6
            ),
        }
    }
}

/// The ELSA scheduler core: pure decision logic over partition snapshots.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{Elsa, ElsaConfig, PartitionSnapshot, ProfileTable};
///
/// let model = ModelKind::ResNet50.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
/// let elsa = Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)));
///
/// // Both partitions idle: ELSA prefers the smaller one (better utility).
/// let snapshots = [
///     PartitionSnapshot::idle(ProfileSize::G7),
///     PartitionSnapshot::idle(ProfileSize::G2),
/// ];
/// let decision = elsa.place(4, &table, &snapshots);
/// assert_eq!(decision.partition(), 1);
/// assert!(decision.is_within_sla());
/// ```
#[derive(Debug, Clone)]
pub struct Elsa {
    config: ElsaConfig,
}

impl Elsa {
    /// Creates an ELSA core with the given configuration.
    #[must_use]
    pub fn new(config: ElsaConfig) -> Self {
        Elsa { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ElsaConfig {
        &self.config
    }

    /// Equation 2: the SLA slack a query with execution estimate
    /// `t_estimated_new_ns` retains on the partition described by
    /// `snapshot`. Negative slack predicts an SLA violation.
    #[must_use]
    pub fn slack_ns(&self, snapshot: &PartitionSnapshot, t_estimated_new_ns: u64) -> f64 {
        let predicted = self.config.alpha
            * (snapshot.wait_ns() as f64 + self.config.beta * t_estimated_new_ns as f64);
        self.config.sla_ns as f64 - predicted
    }

    /// Algorithm 2: chooses the partition for a query of the given batch.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty or a snapshot's size was not
    /// profiled in `table`.
    #[must_use]
    pub fn place(
        &self,
        batch: usize,
        table: &ProfileTable,
        partitions: &[PartitionSnapshot],
    ) -> Decision {
        assert!(!partitions.is_empty(), "no partitions to schedule onto");

        // Step A: smallest partition whose predicted slack is positive.
        // Within one partition size, partitions are visited least-loaded
        // first so that same-size instances share work instead of stacking
        // the lowest-indexed queue.
        let mut order: Vec<usize> = (0..partitions.len()).collect();
        match self.config.order {
            ScanOrder::SmallestFirst => {
                order.sort_by_key(|&i| (partitions[i].size, partitions[i].wait_ns(), i));
            }
            ScanOrder::LargestFirst => {
                order.sort_by_key(|&i| {
                    (
                        std::cmp::Reverse(partitions[i].size),
                        partitions[i].wait_ns(),
                        i,
                    )
                });
            }
        }
        for &i in &order {
            let t_new = table.latency_ns(partitions[i].size, batch);
            let slack = self.slack_ns(&partitions[i], t_new);
            if slack > 0.0 {
                return Decision::WithinSla {
                    partition: i,
                    slack_ns: slack,
                };
            }
        }

        // Step B: SLA unattainable — bound the damage.
        let service = |i: usize| {
            let t_new = table.latency_ns(partitions[i].size, batch);
            partitions[i].wait_ns().saturating_add(t_new)
        };
        let pick = match self.config.fallback {
            FallbackPolicy::FastestService => (0..partitions.len())
                .min_by_key(|&i| (service(i), i))
                .expect("partitions is non-empty"),
            FallbackPolicy::SmallestPartition => order[0],
            FallbackPolicy::LargestPartition => *order.last().expect("non-empty"),
        };
        Decision::Fallback {
            partition: pick,
            expected_service_ns: service(pick),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table() -> ProfileTable {
        let model = ModelKind::ResNet50.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn elsa(table: &ProfileTable) -> Elsa {
        Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)))
    }

    #[test]
    fn slack_formula_matches_equation_2() {
        let t = table();
        let cfg = ElsaConfig::new(1_000_000).with_alpha(2.0).with_beta(3.0);
        let e = Elsa::new(cfg);
        let snap = PartitionSnapshot {
            size: ProfileSize::G1,
            queued_work_ns: 100_000,
            remaining_current_ns: 50_000,
        };
        // slack = SLA − α(Twait + β·Tnew) = 1e6 − 2(150e3 + 3·10e3).
        let slack = e.slack_ns(&snap, 10_000);
        assert!((slack - (1_000_000.0 - 2.0 * (150_000.0 + 30_000.0))).abs() < 1e-9);
        let _ = t;
    }

    #[test]
    fn prefers_smallest_partition_when_sla_allows() {
        let t = table();
        let e = elsa(&t);
        let snaps = [
            PartitionSnapshot::idle(ProfileSize::G7),
            PartitionSnapshot::idle(ProfileSize::G3),
            PartitionSnapshot::idle(ProfileSize::G1),
        ];
        let d = e.place(1, &t, &snaps);
        assert_eq!(d.partition(), 2, "idle G1 should win for a small batch");
        assert!(d.is_within_sla());
    }

    #[test]
    fn busy_small_partition_spills_to_larger() {
        // The Figure 10 scenario: the small partition is backed up enough
        // that only the large partition can meet SLA.
        let t = table();
        let e = elsa(&t);
        let sla = e.config().sla_ns;
        let snaps = [
            PartitionSnapshot {
                size: ProfileSize::G1,
                queued_work_ns: sla, // hopeless backlog
                remaining_current_ns: 0,
            },
            PartitionSnapshot::idle(ProfileSize::G7),
        ];
        let d = e.place(8, &t, &snaps);
        assert_eq!(d.partition(), 1);
        assert!(d.is_within_sla());
    }

    #[test]
    fn fallback_picks_fastest_service() {
        let t = table();
        let e = elsa(&t);
        let sla = e.config().sla_ns;
        // Both overloaded; the large partition finishes the query sooner.
        let snaps = [
            PartitionSnapshot {
                size: ProfileSize::G1,
                queued_work_ns: 3 * sla,
                remaining_current_ns: 0,
            },
            PartitionSnapshot {
                size: ProfileSize::G7,
                queued_work_ns: 3 * sla,
                remaining_current_ns: 0,
            },
        ];
        let d = e.place(32, &t, &snaps);
        assert!(!d.is_within_sla());
        assert_eq!(d.partition(), 1, "G7 executes the query faster");
    }

    #[test]
    fn fallback_ablations_differ() {
        let t = table();
        let sla = t.sla_target_ns(1.5);
        let overloaded = |size| PartitionSnapshot {
            size,
            queued_work_ns: 10 * sla,
            remaining_current_ns: 0,
        };
        let snaps = [overloaded(ProfileSize::G1), overloaded(ProfileSize::G7)];
        let small =
            Elsa::new(ElsaConfig::new(sla).with_fallback(FallbackPolicy::SmallestPartition));
        let large = Elsa::new(ElsaConfig::new(sla).with_fallback(FallbackPolicy::LargestPartition));
        assert_eq!(small.place(8, &t, &snaps).partition(), 0);
        assert_eq!(large.place(8, &t, &snaps).partition(), 1);
    }

    #[test]
    fn largest_first_order_flips_preference() {
        let t = table();
        let e =
            Elsa::new(ElsaConfig::new(t.sla_target_ns(1.5)).with_order(ScanOrder::LargestFirst));
        let snaps = [
            PartitionSnapshot::idle(ProfileSize::G1),
            PartitionSnapshot::idle(ProfileSize::G7),
        ];
        assert_eq!(e.place(1, &t, &snaps).partition(), 1);
    }

    #[test]
    fn alpha_makes_predictor_conservative() {
        // With a huge α the small partition's estimate blows past SLA and
        // the query lands on the large one.
        let t = table();
        let sla = t.sla_target_ns(1.5);
        let relaxed = Elsa::new(ElsaConfig::new(sla));
        let paranoid = Elsa::new(ElsaConfig::new(sla).with_alpha(1000.0));
        let snaps = [
            PartitionSnapshot::idle(ProfileSize::G1),
            PartitionSnapshot::idle(ProfileSize::G7),
        ];
        assert_eq!(relaxed.place(1, &t, &snaps).partition(), 0);
        let d = paranoid.place(1, &t, &snaps);
        assert!(
            !d.is_within_sla(),
            "nothing satisfies a 1000× inflated estimate"
        );
    }

    #[test]
    fn wait_accounts_for_queue_and_current() {
        let snap = PartitionSnapshot {
            size: ProfileSize::G2,
            queued_work_ns: 700,
            remaining_current_ns: 300,
        };
        assert_eq!(snap.wait_ns(), 1_000);
        assert_eq!(PartitionSnapshot::idle(ProfileSize::G2).wait_ns(), 0);
    }

    #[test]
    fn ties_break_deterministically_by_index() {
        let t = table();
        let e = elsa(&t);
        let snaps = [
            PartitionSnapshot::idle(ProfileSize::G2),
            PartitionSnapshot::idle(ProfileSize::G2),
        ];
        assert_eq!(e.place(4, &t, &snaps).partition(), 0);
    }

    #[test]
    #[should_panic(expected = "no partitions")]
    fn empty_partition_list_panics() {
        let t = table();
        let e = elsa(&t);
        let _ = e.place(1, &t, &[]);
    }

    #[test]
    fn decision_display() {
        let d = Decision::WithinSla {
            partition: 3,
            slack_ns: 2e6,
        };
        assert!(d.to_string().contains("partition 3"));
    }
}
