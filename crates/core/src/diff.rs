//! Diffing two partition layouts: what an online re-planner must destroy,
//! create, and may keep serving.
//!
//! PARIS emits a *target* set of instances; a running server holds a
//! *current* set. [`plan_diff`] computes the minimal multiset edit between
//! them per [`ProfileSize`]: instances whose size survives the transition
//! are **kept** (they keep serving, queues intact), the rest are
//! **removed** (quiesced: drained, then their slices reclaimed) or
//! **added** (created once the reslice completes). The reconfiguration
//! downtime this implies is priced by
//! `mig_gpu::ResliceCostModel::delay_ns(removed, added)`.

use std::collections::{BTreeMap, VecDeque};

use mig_gpu::{ProfileSize, ResliceCostModel, COMPUTE_SLICES};

/// The per-size multiset difference between a current and a target
/// partition layout.
///
/// # Examples
///
/// ```
/// use mig_gpu::ProfileSize;
/// use paris_core::plan_diff;
///
/// let current = [ProfileSize::G1, ProfileSize::G1, ProfileSize::G3];
/// let target = [ProfileSize::G1, ProfileSize::G7];
/// let diff = plan_diff(&current, &target);
/// assert_eq!(diff.kept_count(), 1); // one G1 survives
/// assert_eq!(diff.removed_count(), 2); // one G1 + the G3 go away
/// assert_eq!(diff.added_count(), 1); // the G7 is new
/// assert!(!diff.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanDiff {
    /// Instances per size present in both layouts (min of the two counts).
    pub kept: BTreeMap<ProfileSize, usize>,
    /// Instances per size only in the current layout (to be quiesced and
    /// destroyed).
    pub removed: BTreeMap<ProfileSize, usize>,
    /// Instances per size only in the target layout (to be created after
    /// the reslice).
    pub added: BTreeMap<ProfileSize, usize>,
}

impl PlanDiff {
    /// Total instances that keep serving across the transition.
    #[must_use]
    pub fn kept_count(&self) -> usize {
        self.kept.values().sum()
    }

    /// Total instances to destroy.
    #[must_use]
    pub fn removed_count(&self) -> usize {
        self.removed.values().sum()
    }

    /// Total instances to create.
    #[must_use]
    pub fn added_count(&self) -> usize {
        self.added.values().sum()
    }

    /// Whether the two layouts are identical (nothing to do).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Folds `other` into this diff per size — how a multi-group (or
    /// multi-shard) reconfiguration aggregates its per-group diffs into the
    /// one transition the driver executes.
    pub fn merge(&mut self, other: &PlanDiff) {
        for (&size, &n) in &other.kept {
            *self.kept.entry(size).or_insert(0) += n;
        }
        for (&size, &n) in &other.removed {
            *self.removed.entry(size).or_insert(0) += n;
        }
        for (&size, &n) in &other.added {
            *self.added.entry(size).or_insert(0) += n;
        }
    }

    /// The driver-side downtime this transition costs under `cost`.
    ///
    /// An **empty diff charges nothing** — identical layouts mean no driver
    /// call at all, so not even the fixed per-reconfiguration overhead
    /// applies. Non-empty diffs price the destroyed/added instance counts
    /// through [`ResliceCostModel::delay_ns`].
    ///
    /// # Examples
    ///
    /// ```
    /// use mig_gpu::{ProfileSize, ResliceCostModel};
    /// use paris_core::plan_diff;
    ///
    /// let cost = ResliceCostModel::a100_default();
    /// let same = [ProfileSize::G2, ProfileSize::G3];
    /// assert_eq!(plan_diff(&same, &same).downtime_ns(&cost), 0);
    /// let grown = [ProfileSize::G2, ProfileSize::G3, ProfileSize::G1];
    /// assert_eq!(
    ///     plan_diff(&same, &grown).downtime_ns(&cost),
    ///     cost.delay_ns(0, 1)
    /// );
    /// ```
    #[must_use]
    pub fn downtime_ns(&self, cost: &ResliceCostModel) -> u64 {
        if self.is_empty() {
            0
        } else {
            cost.delay_ns(self.removed_count(), self.added_count())
        }
    }
}

/// Computes the per-size multiset difference between `current` and
/// `target` instance lists (order is irrelevant).
#[must_use]
pub fn plan_diff(current: &[ProfileSize], target: &[ProfileSize]) -> PlanDiff {
    let mut cur: BTreeMap<ProfileSize, usize> = BTreeMap::new();
    for &s in current {
        *cur.entry(s).or_insert(0) += 1;
    }
    let mut tgt: BTreeMap<ProfileSize, usize> = BTreeMap::new();
    for &s in target {
        *tgt.entry(s).or_insert(0) += 1;
    }

    let mut diff = PlanDiff::default();
    for &size in ProfileSize::ALL.iter() {
        let c = cur.get(&size).copied().unwrap_or(0);
        let t = tgt.get(&size).copied().unwrap_or(0);
        let kept = c.min(t);
        if kept > 0 {
            diff.kept.insert(size, kept);
        }
        if c > t {
            diff.removed.insert(size, c - t);
        }
        if t > c {
            diff.added.insert(size, t - c);
        }
    }
    diff
}

/// How a reconfiguration's edits are staged in time.
///
/// The *content* of a transition is a set of per-group [`PlanDiff`]s; the
/// mode decides how those edits are cut into [`ReconfigStep`]s that execute
/// sequentially (each step: quiesce + drain its removals, charge its
/// downtime, bring its additions online).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconfigMode {
    /// Every removal quiesces at once and every addition comes online
    /// together after one combined reslice — the historical behavior, kept
    /// selectable for ablations and for the property suites that pin it
    /// explicitly.
    AllAtOnce,
    /// One GPU's worth of edits at a time (ParvaGPU-style decoupled
    /// per-GPU repartitioning): each step removes and adds at most
    /// [`COMPUTE_SLICES`] GPCs of instances, so the capacity offline at
    /// any instant is bounded by one GPU while the rest of the pool keeps
    /// serving. Each step is its own driver call and pays its own fixed
    /// reslice overhead — rolling trades a larger *total* downtime for a
    /// much smaller worst-instant capacity dip. The default: the
    /// `reconfig_dip` data in `BENCH_multimodel.json`/`BENCH_cluster.json`
    /// shows the bounded dip is worth the extra total downtime.
    #[default]
    Rolling,
}

/// One sequential stage of a reconfiguration: the per-group edits it
/// applies and the driver downtime it charges once its removals drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigStep {
    /// `(group index, sub-diff)` — what this step removes/adds for each
    /// affected group. `kept` is not meaningful on a step.
    pub diffs: Vec<(usize, PlanDiff)>,
    /// Driver-side downtime charged between this step's drain completing
    /// and its additions coming online, nanoseconds.
    pub downtime_ns: u64,
}

impl ReconfigStep {
    /// Instances this step destroys.
    #[must_use]
    pub fn removed_count(&self) -> usize {
        self.diffs.iter().map(|(_, d)| d.removed_count()).sum()
    }

    /// Instances this step creates.
    #[must_use]
    pub fn added_count(&self) -> usize {
        self.diffs.iter().map(|(_, d)| d.added_count()).sum()
    }
}

/// The execution plan of one reconfiguration: an iterator of
/// [`ReconfigStep`]s cut from per-group [`PlanDiff`]s by a
/// [`ReconfigMode`].
///
/// Both the drift re-planner (`ReplanPolicy`) and the cluster loan
/// controller (`LoanPolicy`) build one of these and feed it to the dispatch
/// core, which executes the steps strictly in order: a step's removals are
/// quiesced only after the previous step completed, so at most one step's
/// capacity is ever offline.
///
/// # Examples
///
/// ```
/// use mig_gpu::{ProfileSize, ResliceCostModel};
/// use paris_core::{plan_diff, ReconfigMode, ReconfigSchedule};
///
/// let cost = ResliceCostModel::a100_default();
/// let diff = plan_diff(&[ProfileSize::G7; 2], &[ProfileSize::G3; 4]);
/// let all = ReconfigSchedule::new(
///     std::slice::from_ref(&diff), ReconfigMode::AllAtOnce, &cost, 0);
/// assert_eq!(all.len(), 1);
/// let rolling = ReconfigSchedule::new(&[diff], ReconfigMode::Rolling, &cost, 0);
/// assert!(rolling.len() > 1, "a two-GPU edit rolls out in stages");
/// assert_eq!(rolling.destroyed(), all.destroyed());
/// assert_eq!(rolling.created(), all.created());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigSchedule {
    steps: VecDeque<ReconfigStep>,
    destroyed: usize,
    created: usize,
    total_downtime_ns: u64,
}

impl ReconfigSchedule {
    /// Cuts the per-group diffs (`diffs[g]` is group `g`'s transition) into
    /// sequential steps under `mode`. `extra_downtime_ns` (e.g. the
    /// whole-GPU handover charge of a capacity loan) is folded into the
    /// single step in all-at-once mode and spread evenly across the steps
    /// (remainder on the first) in rolling mode.
    ///
    /// Identical layouts produce an **empty schedule** — no step, no
    /// downtime, not even `extra_downtime_ns` (nothing moves, so there is
    /// no driver call to ride on).
    #[must_use]
    pub fn new(
        diffs: &[PlanDiff],
        mode: ReconfigMode,
        cost: &ResliceCostModel,
        extra_downtime_ns: u64,
    ) -> Self {
        let mut merged = PlanDiff::default();
        for d in diffs {
            merged.merge(d);
        }
        if merged.is_empty() {
            return ReconfigSchedule {
                steps: VecDeque::new(),
                destroyed: 0,
                created: 0,
                total_downtime_ns: 0,
            };
        }
        let mut steps: VecDeque<ReconfigStep> = match mode {
            ReconfigMode::AllAtOnce => {
                let per_group: Vec<(usize, PlanDiff)> = diffs
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| !d.is_empty())
                    .map(|(g, d)| {
                        (
                            g,
                            PlanDiff {
                                kept: BTreeMap::new(),
                                removed: d.removed.clone(),
                                added: d.added.clone(),
                            },
                        )
                    })
                    .collect();
                let downtime_ns = merged.downtime_ns(cost).saturating_add(extra_downtime_ns);
                VecDeque::from(vec![ReconfigStep {
                    diffs: per_group,
                    downtime_ns,
                }])
            }
            ReconfigMode::Rolling => {
                // Bins are paired *within* each group — group g's k-th
                // removal bin reslices alongside its own k-th addition bin
                // — and groups' step runs concatenate in group order, so a
                // step never spans two groups (model groups live on
                // disjoint GPUs) even when a group's removal and addition
                // bin counts differ.
                let mut steps: Vec<ReconfigStep> = Vec::new();
                for (g, diff) in diffs.iter().enumerate() {
                    let removed_bins = gpu_bins(&diff.removed);
                    let added_bins = gpu_bins(&diff.added);
                    for k in 0..removed_bins.len().max(added_bins.len()) {
                        let mut step = PlanDiff::default();
                        for &size in removed_bins.get(k).into_iter().flatten() {
                            *step.removed.entry(size).or_insert(0) += 1;
                        }
                        for &size in added_bins.get(k).into_iter().flatten() {
                            *step.added.entry(size).or_insert(0) += 1;
                        }
                        let downtime_ns = cost.delay_ns(step.removed_count(), step.added_count());
                        steps.push(ReconfigStep {
                            diffs: vec![(g, step)],
                            downtime_ns,
                        });
                    }
                }
                let n = steps.len() as u64;
                let extra_each = extra_downtime_ns / n;
                let extra_rem = extra_downtime_ns % n;
                for (k, step) in steps.iter_mut().enumerate() {
                    step.downtime_ns = step
                        .downtime_ns
                        .saturating_add(extra_each)
                        .saturating_add(if k == 0 { extra_rem } else { 0 });
                }
                steps.into()
            }
        };
        steps.retain(|s| !s.diffs.is_empty());
        let destroyed = steps.iter().map(ReconfigStep::removed_count).sum();
        let created = steps.iter().map(ReconfigStep::added_count).sum();
        let total_downtime_ns = steps
            .iter()
            .fold(0u64, |a, s| a.saturating_add(s.downtime_ns));
        ReconfigSchedule {
            steps,
            destroyed,
            created,
            total_downtime_ns,
        }
    }

    /// Whether there is nothing to execute (identical layouts).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Remaining steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Total instances the whole schedule destroys.
    #[must_use]
    pub fn destroyed(&self) -> usize {
        self.destroyed
    }

    /// Total instances the whole schedule creates.
    #[must_use]
    pub fn created(&self) -> usize {
        self.created
    }

    /// Summed driver downtime across every step, nanoseconds.
    #[must_use]
    pub fn total_downtime_ns(&self) -> u64 {
        self.total_downtime_ns
    }
}

impl Iterator for ReconfigSchedule {
    type Item = ReconfigStep;

    fn next(&mut self) -> Option<ReconfigStep> {
        self.steps.pop_front()
    }
}

/// Packs instance **indices** into deterministic GPU-sized bins: each bin
/// holds at most [`COMPUTE_SLICES`] GPCs of instances. First-fit-descending
/// — instances are taken largest size first (ties by ascending index, so
/// the packing is stable), and every open bin is scanned for room before a
/// new one is opened — which keeps the bin count at the packing minimum for
/// mixes like `{G4:2, G3:2}` → `[G4,G3] [G4,G3]`.
///
/// This is the one instance-to-physical-GPU identification the simulator
/// uses wherever a "per-GPU" boundary matters: a rolling
/// [`ReconfigSchedule`] cuts its steps with it, and the fault injector
/// kills the `g`-th bin of a shard's live layout when physical GPU `g`
/// fails.
///
/// # Examples
///
/// ```
/// use mig_gpu::ProfileSize;
/// use paris_core::pack_gpus;
///
/// let sizes = [ProfileSize::G3, ProfileSize::G4, ProfileSize::G3, ProfileSize::G4];
/// let bins = pack_gpus(&sizes);
/// assert_eq!(bins.len(), 2); // two full GPUs: [G4,G3] [G4,G3]
/// assert_eq!(bins[0], vec![1, 0]);
/// assert_eq!(bins[1], vec![3, 2]);
/// ```
#[must_use]
pub fn pack_gpus(sizes: &[ProfileSize]) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(sizes[i].gpcs()), i));
    let mut bins: Vec<(Vec<usize>, usize)> = Vec::new();
    for i in order {
        let gpcs = sizes[i].gpcs();
        match bins
            .iter_mut()
            .find(|(_, used)| used + gpcs <= COMPUTE_SLICES)
        {
            Some((bin, used)) => {
                bin.push(i);
                *used += gpcs;
            }
            None => bins.push((vec![i], gpcs)),
        }
    }
    bins.into_iter().map(|(bin, _)| bin).collect()
}

/// Packs one side of one group's diff (its removals or additions) into
/// GPU-sized bins via [`pack_gpus`]. The multiset expands largest size
/// first, which is already `pack_gpus`'s scan order, so the bins equal the
/// historical first-fit-descending packing exactly.
fn gpu_bins(side: &BTreeMap<ProfileSize, usize>) -> Vec<Vec<ProfileSize>> {
    let sizes: Vec<ProfileSize> = side
        .iter()
        .rev()
        .flat_map(|(&size, &count)| std::iter::repeat_n(size, count))
        .collect();
    pack_gpus(&sizes)
        .into_iter()
        .map(|bin| bin.into_iter().map(|i| sizes[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_layouts_diff_to_empty() {
        let p = [ProfileSize::G2, ProfileSize::G3, ProfileSize::G2];
        let d = plan_diff(&p, &[ProfileSize::G3, ProfileSize::G2, ProfileSize::G2]);
        assert!(d.is_empty());
        assert_eq!(d.kept_count(), 3);
    }

    #[test]
    fn counts_balance_with_the_inputs() {
        let cur = [ProfileSize::G1; 4];
        let tgt = [ProfileSize::G1, ProfileSize::G2, ProfileSize::G2];
        let d = plan_diff(&cur, &tgt);
        assert_eq!(d.kept_count() + d.removed_count(), cur.len());
        assert_eq!(d.kept_count() + d.added_count(), tgt.len());
        assert_eq!(d.removed.get(&ProfileSize::G1), Some(&3));
        assert_eq!(d.added.get(&ProfileSize::G2), Some(&2));
    }

    #[test]
    fn identical_plans_cost_zero_downtime() {
        // The reconfiguration edge case the online loop depends on: when
        // drift moved the traffic but PARIS lands on the very same layout,
        // the diff is empty and *no* downtime — not even the fixed driver
        // overhead — may be charged.
        let cost = ResliceCostModel::a100_default();
        let p = [ProfileSize::G1, ProfileSize::G2, ProfileSize::G7];
        let d = plan_diff(&p, &p);
        assert!(d.is_empty());
        assert_eq!(d.downtime_ns(&cost), 0);
        // A non-empty diff pays the full affine charge.
        let d = plan_diff(&p, &[ProfileSize::G7, ProfileSize::G7]);
        assert_eq!(d.downtime_ns(&cost), cost.delay_ns(2, 1));
    }

    #[test]
    fn merge_accumulates_per_size_counts() {
        let mut a = plan_diff(&[ProfileSize::G1, ProfileSize::G2], &[ProfileSize::G2]);
        let b = plan_diff(&[ProfileSize::G1], &[ProfileSize::G3]);
        a.merge(&b);
        assert_eq!(a.removed.get(&ProfileSize::G1), Some(&2));
        assert_eq!(a.added.get(&ProfileSize::G3), Some(&1));
        assert_eq!(a.kept_count(), 1);
        // Merging an empty diff changes nothing.
        let snapshot = a.clone();
        a.merge(&PlanDiff::default());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn empty_layouts() {
        let d = plan_diff(&[], &[]);
        assert!(d.is_empty());
        let d = plan_diff(&[], &[ProfileSize::G7]);
        assert_eq!(d.added_count(), 1);
        assert_eq!(d.kept_count(), 0);
    }

    #[test]
    fn all_at_once_schedule_is_one_step_matching_downtime_ns() {
        let cost = ResliceCostModel::a100_default();
        let a = plan_diff(&[ProfileSize::G1, ProfileSize::G2], &[ProfileSize::G3]);
        let b = plan_diff(&[ProfileSize::G7], &[ProfileSize::G7, ProfileSize::G1]);
        let mut merged = a.clone();
        merged.merge(&b);
        let sched = ReconfigSchedule::new(
            &[a.clone(), b.clone()],
            ReconfigMode::AllAtOnce,
            &cost,
            1_234,
        );
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.destroyed(), merged.removed_count());
        assert_eq!(sched.created(), merged.added_count());
        assert_eq!(sched.total_downtime_ns(), merged.downtime_ns(&cost) + 1_234);
        let steps: Vec<_> = sched.collect();
        assert_eq!(steps[0].diffs.len(), 2, "both groups edited in the step");
        assert_eq!(steps[0].diffs[0].0, 0);
        assert_eq!(steps[0].diffs[1].0, 1);
    }

    #[test]
    fn rolling_schedule_bounds_each_step_to_one_gpu() {
        let cost = ResliceCostModel::a100_default();
        let diff = plan_diff(
            &[ProfileSize::G7, ProfileSize::G7, ProfileSize::G3],
            &[ProfileSize::G2; 8],
        );
        let sched =
            ReconfigSchedule::new(std::slice::from_ref(&diff), ReconfigMode::Rolling, &cost, 0);
        assert!(sched.len() > 1);
        assert_eq!(sched.destroyed(), diff.removed_count());
        assert_eq!(sched.created(), diff.added_count());
        let mut removed = 0usize;
        let mut added = 0usize;
        for step in sched {
            let step_removed_gpcs: usize = step
                .diffs
                .iter()
                .flat_map(|(_, d)| d.removed.iter().map(|(s, n)| s.gpcs() * n))
                .sum();
            let step_added_gpcs: usize = step
                .diffs
                .iter()
                .flat_map(|(_, d)| d.added.iter().map(|(s, n)| s.gpcs() * n))
                .sum();
            assert!(step_removed_gpcs <= COMPUTE_SLICES, "{step_removed_gpcs}");
            assert!(step_added_gpcs <= COMPUTE_SLICES, "{step_added_gpcs}");
            assert!(
                step.downtime_ns >= cost.fixed_ns,
                "each step is a driver call"
            );
            removed += step.removed_count();
            added += step.added_count();
        }
        assert_eq!(removed, diff.removed_count());
        assert_eq!(added, diff.added_count());
    }

    #[test]
    fn rolling_steps_never_mix_groups() {
        let cost = ResliceCostModel::free();
        let a = plan_diff(&[ProfileSize::G1], &[ProfileSize::G2]);
        let b = plan_diff(&[ProfileSize::G1], &[ProfileSize::G2]);
        let sched = ReconfigSchedule::new(&[a, b], ReconfigMode::Rolling, &cost, 0);
        for step in sched {
            assert_eq!(step.diffs.len(), 1, "one group per GPU-sized step");
        }
    }

    #[test]
    fn rolling_steps_never_mix_groups_with_asymmetric_bin_counts() {
        // Group 0 needs 2 removal bins but 1 addition bin; group 1 needs
        // 1 of each. Positional bin pairing would splice group 1's
        // addition into group 0's second removal step — bins must pair
        // within their own group instead.
        let cost = ResliceCostModel::free();
        let a = plan_diff(
            &[ProfileSize::G7, ProfileSize::G7],
            &[ProfileSize::G3, ProfileSize::G3],
        );
        let b = plan_diff(&[ProfileSize::G3], &[ProfileSize::G7]);
        let sched = ReconfigSchedule::new(&[a.clone(), b.clone()], ReconfigMode::Rolling, &cost, 0);
        assert_eq!(sched.destroyed(), a.removed_count() + b.removed_count());
        assert_eq!(sched.created(), a.added_count() + b.added_count());
        let steps: Vec<_> = sched.collect();
        for step in &steps {
            assert_eq!(step.diffs.len(), 1, "one group per step: {step:?}");
        }
        // Group order is preserved: group 0's steps strictly before
        // group 1's.
        let groups: Vec<usize> = steps.iter().map(|s| s.diffs[0].0).collect();
        assert!(groups.windows(2).all(|w| w[0] <= w[1]), "{groups:?}");
    }

    #[test]
    fn rolling_bins_pack_first_fit_descending() {
        // {G4:2, G3:2} is exactly two GPUs' worth; next-fit would open a
        // third bin ([G4] [G4,G3] [G3]), first-fit-descending must not.
        let cost = ResliceCostModel::free();
        let diff = plan_diff(
            &[
                ProfileSize::G4,
                ProfileSize::G4,
                ProfileSize::G3,
                ProfileSize::G3,
            ],
            &[],
        );
        let sched =
            ReconfigSchedule::new(std::slice::from_ref(&diff), ReconfigMode::Rolling, &cost, 0);
        assert_eq!(sched.len(), 2, "two full GPUs pack into two steps");
        assert_eq!(sched.destroyed(), 4);
    }

    #[test]
    fn rolling_spreads_extra_downtime_exactly() {
        let cost = ResliceCostModel::free();
        let diff = plan_diff(&[ProfileSize::G7; 3], &[]);
        let extra = 1_000_003;
        let sched = ReconfigSchedule::new(
            std::slice::from_ref(&diff),
            ReconfigMode::Rolling,
            &cost,
            extra,
        );
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.total_downtime_ns(), extra, "nothing lost to rounding");
    }

    #[test]
    fn pack_gpus_is_first_fit_descending_and_stable() {
        // Mixed order in, deterministic descending-size bins out.
        let sizes = [
            ProfileSize::G1,
            ProfileSize::G7,
            ProfileSize::G3,
            ProfileSize::G3,
            ProfileSize::G1,
        ];
        let bins = pack_gpus(&sizes);
        // G7 anchors its own bin; G3+G3+G1 fill the second exactly
        // (3+3+1 = 7); the last G1 opens a third.
        assert_eq!(bins, vec![vec![1], vec![2, 3, 0], vec![4]]);
        // Every bin respects the GPC cap and every index appears once.
        let mut seen: Vec<usize> = bins.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        for bin in &bins {
            assert!(bin.iter().map(|&i| sizes[i].gpcs()).sum::<usize>() <= COMPUTE_SLICES);
        }
        assert!(pack_gpus(&[]).is_empty());
    }

    #[test]
    fn pack_gpus_agrees_with_the_rolling_bin_cutter() {
        // gpu_bins is now a thin wrapper: the multiset expansion must pack
        // exactly like the index packer.
        let diff = plan_diff(
            &[
                ProfileSize::G4,
                ProfileSize::G4,
                ProfileSize::G3,
                ProfileSize::G3,
            ],
            &[],
        );
        let bins = gpu_bins(&diff.removed);
        assert_eq!(
            bins,
            vec![
                vec![ProfileSize::G4, ProfileSize::G3],
                vec![ProfileSize::G4, ProfileSize::G3]
            ]
        );
    }

    #[test]
    fn empty_diffs_make_an_empty_schedule_even_with_extra_downtime() {
        let cost = ResliceCostModel::a100_default();
        let same = [ProfileSize::G2, ProfileSize::G3];
        let diff = plan_diff(&same, &same);
        for mode in [ReconfigMode::AllAtOnce, ReconfigMode::Rolling] {
            let sched = ReconfigSchedule::new(std::slice::from_ref(&diff), mode, &cost, 777);
            assert!(sched.is_empty());
            assert_eq!(sched.total_downtime_ns(), 0);
        }
    }
}
