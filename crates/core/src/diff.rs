//! Diffing two partition layouts: what an online re-planner must destroy,
//! create, and may keep serving.
//!
//! PARIS emits a *target* set of instances; a running server holds a
//! *current* set. [`plan_diff`] computes the minimal multiset edit between
//! them per [`ProfileSize`]: instances whose size survives the transition
//! are **kept** (they keep serving, queues intact), the rest are
//! **removed** (quiesced: drained, then their slices reclaimed) or
//! **added** (created once the reslice completes). The reconfiguration
//! downtime this implies is priced by
//! `mig_gpu::ResliceCostModel::delay_ns(removed, added)`.

use std::collections::BTreeMap;

use mig_gpu::{ProfileSize, ResliceCostModel};

/// The per-size multiset difference between a current and a target
/// partition layout.
///
/// # Examples
///
/// ```
/// use mig_gpu::ProfileSize;
/// use paris_core::plan_diff;
///
/// let current = [ProfileSize::G1, ProfileSize::G1, ProfileSize::G3];
/// let target = [ProfileSize::G1, ProfileSize::G7];
/// let diff = plan_diff(&current, &target);
/// assert_eq!(diff.kept_count(), 1); // one G1 survives
/// assert_eq!(diff.removed_count(), 2); // one G1 + the G3 go away
/// assert_eq!(diff.added_count(), 1); // the G7 is new
/// assert!(!diff.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanDiff {
    /// Instances per size present in both layouts (min of the two counts).
    pub kept: BTreeMap<ProfileSize, usize>,
    /// Instances per size only in the current layout (to be quiesced and
    /// destroyed).
    pub removed: BTreeMap<ProfileSize, usize>,
    /// Instances per size only in the target layout (to be created after
    /// the reslice).
    pub added: BTreeMap<ProfileSize, usize>,
}

impl PlanDiff {
    /// Total instances that keep serving across the transition.
    #[must_use]
    pub fn kept_count(&self) -> usize {
        self.kept.values().sum()
    }

    /// Total instances to destroy.
    #[must_use]
    pub fn removed_count(&self) -> usize {
        self.removed.values().sum()
    }

    /// Total instances to create.
    #[must_use]
    pub fn added_count(&self) -> usize {
        self.added.values().sum()
    }

    /// Whether the two layouts are identical (nothing to do).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Folds `other` into this diff per size — how a multi-group (or
    /// multi-shard) reconfiguration aggregates its per-group diffs into the
    /// one transition the driver executes.
    pub fn merge(&mut self, other: &PlanDiff) {
        for (&size, &n) in &other.kept {
            *self.kept.entry(size).or_insert(0) += n;
        }
        for (&size, &n) in &other.removed {
            *self.removed.entry(size).or_insert(0) += n;
        }
        for (&size, &n) in &other.added {
            *self.added.entry(size).or_insert(0) += n;
        }
    }

    /// The driver-side downtime this transition costs under `cost`.
    ///
    /// An **empty diff charges nothing** — identical layouts mean no driver
    /// call at all, so not even the fixed per-reconfiguration overhead
    /// applies. Non-empty diffs price the destroyed/added instance counts
    /// through [`ResliceCostModel::delay_ns`].
    ///
    /// # Examples
    ///
    /// ```
    /// use mig_gpu::{ProfileSize, ResliceCostModel};
    /// use paris_core::plan_diff;
    ///
    /// let cost = ResliceCostModel::a100_default();
    /// let same = [ProfileSize::G2, ProfileSize::G3];
    /// assert_eq!(plan_diff(&same, &same).downtime_ns(&cost), 0);
    /// let grown = [ProfileSize::G2, ProfileSize::G3, ProfileSize::G1];
    /// assert_eq!(
    ///     plan_diff(&same, &grown).downtime_ns(&cost),
    ///     cost.delay_ns(0, 1)
    /// );
    /// ```
    #[must_use]
    pub fn downtime_ns(&self, cost: &ResliceCostModel) -> u64 {
        if self.is_empty() {
            0
        } else {
            cost.delay_ns(self.removed_count(), self.added_count())
        }
    }
}

/// Computes the per-size multiset difference between `current` and
/// `target` instance lists (order is irrelevant).
#[must_use]
pub fn plan_diff(current: &[ProfileSize], target: &[ProfileSize]) -> PlanDiff {
    let mut cur: BTreeMap<ProfileSize, usize> = BTreeMap::new();
    for &s in current {
        *cur.entry(s).or_insert(0) += 1;
    }
    let mut tgt: BTreeMap<ProfileSize, usize> = BTreeMap::new();
    for &s in target {
        *tgt.entry(s).or_insert(0) += 1;
    }

    let mut diff = PlanDiff::default();
    for &size in ProfileSize::ALL.iter() {
        let c = cur.get(&size).copied().unwrap_or(0);
        let t = tgt.get(&size).copied().unwrap_or(0);
        let kept = c.min(t);
        if kept > 0 {
            diff.kept.insert(size, kept);
        }
        if c > t {
            diff.removed.insert(size, c - t);
        }
        if t > c {
            diff.added.insert(size, t - c);
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_layouts_diff_to_empty() {
        let p = [ProfileSize::G2, ProfileSize::G3, ProfileSize::G2];
        let d = plan_diff(&p, &[ProfileSize::G3, ProfileSize::G2, ProfileSize::G2]);
        assert!(d.is_empty());
        assert_eq!(d.kept_count(), 3);
    }

    #[test]
    fn counts_balance_with_the_inputs() {
        let cur = [ProfileSize::G1; 4];
        let tgt = [ProfileSize::G1, ProfileSize::G2, ProfileSize::G2];
        let d = plan_diff(&cur, &tgt);
        assert_eq!(d.kept_count() + d.removed_count(), cur.len());
        assert_eq!(d.kept_count() + d.added_count(), tgt.len());
        assert_eq!(d.removed.get(&ProfileSize::G1), Some(&3));
        assert_eq!(d.added.get(&ProfileSize::G2), Some(&2));
    }

    #[test]
    fn identical_plans_cost_zero_downtime() {
        // The reconfiguration edge case the online loop depends on: when
        // drift moved the traffic but PARIS lands on the very same layout,
        // the diff is empty and *no* downtime — not even the fixed driver
        // overhead — may be charged.
        let cost = ResliceCostModel::a100_default();
        let p = [ProfileSize::G1, ProfileSize::G2, ProfileSize::G7];
        let d = plan_diff(&p, &p);
        assert!(d.is_empty());
        assert_eq!(d.downtime_ns(&cost), 0);
        // A non-empty diff pays the full affine charge.
        let d = plan_diff(&p, &[ProfileSize::G7, ProfileSize::G7]);
        assert_eq!(d.downtime_ns(&cost), cost.delay_ns(2, 1));
    }

    #[test]
    fn merge_accumulates_per_size_counts() {
        let mut a = plan_diff(&[ProfileSize::G1, ProfileSize::G2], &[ProfileSize::G2]);
        let b = plan_diff(&[ProfileSize::G1], &[ProfileSize::G3]);
        a.merge(&b);
        assert_eq!(a.removed.get(&ProfileSize::G1), Some(&2));
        assert_eq!(a.added.get(&ProfileSize::G3), Some(&1));
        assert_eq!(a.kept_count(), 1);
        // Merging an empty diff changes nothing.
        let snapshot = a.clone();
        a.merge(&PlanDiff::default());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn empty_layouts() {
        let d = plan_diff(&[], &[]);
        assert!(d.is_empty());
        let d = plan_diff(&[], &[ProfileSize::G7]);
        assert_eq!(d.added_count(), 1);
        assert_eq!(d.kept_count(), 0);
    }
}
