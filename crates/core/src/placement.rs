//! Persistent, incrementally-maintained placement state for ELSA's hot
//! path.
//!
//! The pure [`Elsa::place`] entry point rebuilds its view of the server on
//! every query: the caller snapshots all `P` partitions, `place` allocates
//! and sorts an order vector, and every decision costs O(P log P) plus two
//! heap allocations. That is fine for a handful of decisions and is kept as
//! the *reference implementation*, but a load sweep pushes millions of
//! queries through the scheduler and pays that cost per query.
//!
//! [`ElsaState`] maintains the same information *incrementally*: partitions
//! are grouped into per-size buckets, and each bucket keeps its idle
//! members in an [`IndexSet`] (all have zero wait; only the index
//! tie-break matters) and its busy members in a [`LoadSet`] ordered by
//! `(drain_time, index)`, where `drain_time = queued_work + busy_until` is
//! the absolute instant the partition would go idle. Because every
//! partition of one size shares the same profiled execution estimate,
//! Equation 2's slack is monotonically decreasing in the wait within a
//! bucket — so only each bucket's *least-loaded* member can ever be Step
//! A's answer, and [`Elsa::place_mut`] needs one O(log P) bucket query per
//! size instead of a full sort.
//!
//! # Equivalence contract
//!
//! `place_mut` over an `ElsaState` returns **bit-for-bit** the same
//! [`Decision`] as `place` over snapshots taken at the same instant,
//! including tie-breaks, for every scan order and fallback policy —
//! property tests in `tests/properties.rs` check this against randomized
//! operation sequences. The contract holds under the server's
//! work-conserving discipline:
//!
//! * `enqueue` is only called on an executing partition (an idle partition
//!   accepts the query directly via `begin`);
//! * `dequeue` + `begin` immediately follow `finish` when the local queue
//!   is non-empty, with no placement in between;
//! * the simulation clock passed as `now_ns` never exceeds any executing
//!   partition's `busy_until`.

use mig_gpu::ProfileSize;

use crate::elsa::{Decision, Elsa, FallbackPolicy, PartitionSnapshot, ScanOrder};
use crate::ordset::{IndexSet, LoadSet};
use crate::profile::ProfileTable;

#[derive(Debug, Clone, Copy)]
struct Slot {
    queued_ns: u64,
    busy_until_ns: u64,
    busy: bool,
}

impl Slot {
    fn drain_key(&self) -> u64 {
        self.queued_ns.saturating_add(self.busy_until_ns)
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    size: ProfileSize,
    idle: IndexSet,
    busy: LoadSet,
}

impl Bucket {
    /// The bucket member a smallest-wait-first scan visits first, with its
    /// wait at `now_ns`: minimum `(wait, index)` over the bucket.
    fn least_loaded(&self, now_ns: u64) -> Option<(u32, u64)> {
        let idle = self.idle.min();
        let busy = self.busy.first();
        match (idle, busy) {
            (None, None) => None,
            (Some(i), None) => Some((i, 0)),
            (None, Some((drain, j))) => Some((j, drain.saturating_sub(now_ns))),
            (Some(i), Some((drain, j))) => {
                let wait = drain.saturating_sub(now_ns);
                if wait == 0 {
                    // A partition finishing exactly now ties with the idle
                    // ones; the global index decides, as in the reference
                    // sort key (size, wait, index).
                    Some((i.min(j), 0))
                } else {
                    Some((i, 0))
                }
            }
        }
    }

    /// The bucket member a smallest-wait-first scan visits last: maximum
    /// `(wait, index)` over the bucket.
    fn most_loaded(&self, now_ns: u64) -> Option<(u32, u64)> {
        let idle = self.idle.max();
        let busy = self.busy.last();
        match (idle, busy) {
            (None, None) => None,
            (Some(i), None) => Some((i, 0)),
            (None, Some((drain, j))) => Some((j, drain.saturating_sub(now_ns))),
            (Some(i), Some((drain, j))) => {
                let wait = drain.saturating_sub(now_ns);
                if wait == 0 {
                    // All busy members drain exactly now: everyone ties at
                    // zero wait and the largest index wins.
                    Some((i.max(j), 0))
                } else {
                    Some((j, wait))
                }
            }
        }
    }
}

/// Incrementally-maintained per-partition load state consumed by
/// [`Elsa::place_mut`].
///
/// Create it once per simulation run and keep it in lock-step with the
/// partition workers by calling [`begin`](Self::begin),
/// [`enqueue`](Self::enqueue), [`dequeue`](Self::dequeue) and
/// [`finish`](Self::finish) as queries move through the server. All four
/// updates are O(log P); none allocate once the internal arenas have
/// reached the partition count.
///
/// # Examples
///
/// ```
/// use mig_gpu::ProfileSize;
/// use paris_core::ElsaState;
///
/// let mut state = ElsaState::new(&[ProfileSize::G1, ProfileSize::G7]);
/// state.begin(0, 1_000_000); // partition 0 executes until t = 1 ms
/// state.enqueue(0, 500_000); // and has 0.5 ms of queued work behind it
/// assert_eq!(state.snapshot(0, 400_000).wait_ns(), 1_100_000);
/// assert_eq!(state.snapshot(1, 400_000).wait_ns(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ElsaState {
    sizes: Vec<ProfileSize>,
    slots: Vec<Slot>,
    bucket_of: Vec<u32>,
    buckets: Vec<Bucket>,
    /// Per-partition service-time multipliers (thermal throttling, ECC
    /// retirement — see `inference_faults`). 1.0 = healthy.
    factors: Vec<f64>,
    /// How many entries of `factors` differ from 1.0 — the fast bucket
    /// path is only valid when this is zero.
    degraded: usize,
}

/// Scales a profiled latency by a degrade factor, rounding to the nearest
/// nanosecond. The single rounding rule shared by placement and dispatch:
/// both must inflate estimates identically or ELSA's incremental queue
/// accounting drifts from the workers'.
#[must_use]
pub fn scale_ns(ns: u64, factor: f64) -> u64 {
    if factor == 1.0 {
        ns
    } else {
        (ns as f64 * factor).round() as u64
    }
}

impl ElsaState {
    /// Creates the state for the given partitions (all idle), grouping
    /// them into per-size buckets.
    #[must_use]
    pub fn new(partitions: &[ProfileSize]) -> Self {
        let mut distinct: Vec<ProfileSize> = partitions.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut buckets: Vec<Bucket> = distinct
            .iter()
            .map(|&size| Bucket {
                size,
                idle: IndexSet::new(partitions.len()),
                busy: LoadSet::with_capacity(partitions.len()),
            })
            .collect();
        let bucket_of: Vec<u32> = partitions
            .iter()
            .map(|size| {
                distinct
                    .iter()
                    .position(|s| s == size)
                    .expect("every size is in the distinct list") as u32
            })
            .collect();
        for (p, &b) in bucket_of.iter().enumerate() {
            buckets[b as usize].idle.insert(p as u32);
        }
        ElsaState {
            sizes: partitions.to_vec(),
            slots: vec![
                Slot {
                    queued_ns: 0,
                    busy_until_ns: 0,
                    busy: false,
                };
                partitions.len()
            ],
            bucket_of,
            buckets,
            factors: vec![1.0; partitions.len()],
            degraded: 0,
        }
    }

    /// Sets partition `p`'s service-time multiplier. 1.0 restores the
    /// clean profile; factors > 1.0 inflate the execution estimate ELSA
    /// predicts for new queries on `p`, steering placement around sick
    /// hardware. Queued-work totals are unaffected — estimates are
    /// inflated at enqueue time by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and ≥ 1.0.
    pub fn set_factor(&mut self, p: usize, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "degrade factor must be finite and ≥ 1.0"
        );
        let was_unit = self.factors[p] == 1.0;
        let is_unit = factor == 1.0;
        self.factors[p] = factor;
        match (was_unit, is_unit) {
            (true, false) => self.degraded += 1,
            (false, true) => self.degraded -= 1,
            _ => {}
        }
    }

    /// Partition `p`'s current service-time multiplier.
    #[must_use]
    pub fn factor(&self, p: usize) -> f64 {
        self.factors[p]
    }

    /// Number of partitions tracked.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.sizes.len()
    }

    /// The partitions' profiles, in index order.
    #[must_use]
    pub fn sizes(&self) -> &[ProfileSize] {
        &self.sizes
    }

    fn bucket_mut(&mut self, p: usize) -> &mut Bucket {
        &mut self.buckets[self.bucket_of[p] as usize]
    }

    /// Partition `p` starts executing a query that will finish at
    /// `busy_until_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is already executing.
    pub fn begin(&mut self, p: usize, busy_until_ns: u64) {
        let slot = self.slots[p];
        assert!(!slot.busy, "partition {p} already executing");
        self.slots[p].busy = true;
        self.slots[p].busy_until_ns = busy_until_ns;
        let drain = self.slots[p].drain_key();
        let bucket = self.bucket_mut(p);
        bucket.idle.remove(p as u32);
        bucket.busy.insert((drain, p as u32));
    }

    /// A query with execution estimate `est_ns` joins partition `p`'s
    /// local queue.
    ///
    /// # Panics
    ///
    /// Panics if `p` is idle — a work-conserving server starts the query
    /// immediately instead of queueing it.
    pub fn enqueue(&mut self, p: usize, est_ns: u64) {
        let slot = self.slots[p];
        assert!(slot.busy, "enqueue on idle partition {p}");
        let old_drain = slot.drain_key();
        self.slots[p].queued_ns = slot.queued_ns.saturating_add(est_ns);
        let new_drain = self.slots[p].drain_key();
        let bucket = self.bucket_mut(p);
        bucket.busy.remove((old_drain, p as u32));
        bucket.busy.insert((new_drain, p as u32));
    }

    /// A query with execution estimate `est_ns` leaves partition `p`'s
    /// local queue (immediately before the matching [`begin`](Self::begin)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is executing: dequeue happens in the idle gap between
    /// `finish` and `begin`.
    pub fn dequeue(&mut self, p: usize, est_ns: u64) {
        let slot = self.slots[p];
        assert!(!slot.busy, "dequeue while partition {p} is executing");
        self.slots[p].queued_ns = slot.queued_ns.saturating_sub(est_ns);
    }

    /// Partition `p` finished its current query.
    ///
    /// # Panics
    ///
    /// Panics if `p` is idle.
    pub fn finish(&mut self, p: usize) {
        let slot = self.slots[p];
        assert!(slot.busy, "finish on idle partition {p}");
        let drain = slot.drain_key();
        self.slots[p].busy = false;
        self.slots[p].busy_until_ns = 0;
        let bucket = self.bucket_mut(p);
        let removed = bucket.busy.remove((drain, p as u32));
        debug_assert!(removed, "busy set out of sync for partition {p}");
        bucket.idle.insert(p as u32);
    }

    /// The Equation-1 view of partition `p` at `now_ns` — identical to the
    /// snapshot a [`crate::elsa::PartitionSnapshot`]-based caller would
    /// build from the worker.
    #[must_use]
    pub fn snapshot(&self, p: usize, now_ns: u64) -> PartitionSnapshot {
        let slot = self.slots[p];
        PartitionSnapshot {
            size: self.sizes[p],
            queued_work_ns: slot.queued_ns,
            remaining_current_ns: if slot.busy {
                slot.busy_until_ns.saturating_sub(now_ns)
            } else {
                0
            },
        }
    }

    /// Snapshots of every partition at `now_ns`, in index order. Intended
    /// for validation and tests — the hot path never materializes this.
    #[must_use]
    pub fn snapshots(&self, now_ns: u64) -> Vec<PartitionSnapshot> {
        (0..self.sizes.len())
            .map(|p| self.snapshot(p, now_ns))
            .collect()
    }
}

impl Elsa {
    /// Algorithm 2 over incrementally-maintained state: the allocation-free
    /// O(S log P) twin of [`place`](Elsa::place) (S = number of distinct
    /// partition sizes, ≤ 5 on an A100).
    ///
    /// Returns bit-for-bit the same [`Decision`] as `place` applied to
    /// `state.snapshots(now_ns)` — see the module docs for the equivalence
    /// contract. The `&mut` borrow reserves the right to keep scratch
    /// space inside the state; the current implementation only reads.
    ///
    /// # Panics
    ///
    /// Panics if `state` tracks no partitions or one of its sizes was not
    /// profiled in `table`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnn_zoo::ModelKind;
    /// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    /// use paris_core::{Elsa, ElsaConfig, ElsaState, ProfileTable};
    ///
    /// let model = ModelKind::ResNet50.build();
    /// let perf = PerfModel::new(DeviceSpec::a100());
    /// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    /// let elsa = Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)));
    ///
    /// let mut state = ElsaState::new(&[ProfileSize::G1, ProfileSize::G7]);
    /// // The small partition is busy until t = 5 ms with 2 ms queued...
    /// state.begin(0, 5_000_000);
    /// state.enqueue(0, 2_000_000);
    /// // ...so at t = 1 ms a batch-8 query lands on the idle G7.
    /// let decision = elsa.place_mut(8, &table, &mut state, 1_000_000);
    /// assert_eq!(decision.partition(), 1);
    /// // The decision equals the pure reference over fresh snapshots.
    /// let reference = elsa.place(8, &table, &state.snapshots(1_000_000));
    /// assert_eq!(decision, reference);
    /// ```
    #[must_use]
    pub fn place_mut(
        &self,
        batch: usize,
        table: &ProfileTable,
        state: &mut ElsaState,
        now_ns: u64,
    ) -> Decision {
        assert!(
            state.partition_count() > 0,
            "no partitions to schedule onto"
        );
        // Per-partition degrade factors break the bucket invariant (every
        // member of a size bucket no longer shares one execution
        // estimate), so a degraded state falls back to the reference scan
        // with scaled estimates. The fast path below is untouched when all
        // factors are 1.0, which is what keeps factor-1.0 degrade plans
        // bit-for-bit identical to fault-free runs.
        if state.degraded > 0 {
            return self.place_degraded(batch, table, state, now_ns);
        }
        let ascending = self.config().order == ScanOrder::SmallestFirst;
        let nb = state.buckets.len();
        let bucket_at = |rank: usize| {
            if ascending {
                &state.buckets[rank]
            } else {
                &state.buckets[nb - 1 - rank]
            }
        };

        // Step A: per size (in scan order), only the least-loaded instance
        // can have the maximum slack; test it and move on.
        for rank in 0..nb {
            let bucket = bucket_at(rank);
            let Some((idx, wait)) = bucket.least_loaded(now_ns) else {
                continue;
            };
            let t_new = table.latency_ns(bucket.size, batch);
            let probe = PartitionSnapshot {
                size: bucket.size,
                queued_work_ns: wait,
                remaining_current_ns: 0,
            };
            let slack = self.slack_ns(&probe, t_new);
            if slack > 0.0 {
                return Decision::WithinSla {
                    partition: idx as usize,
                    slack_ns: slack,
                };
            }
        }

        // Step B: SLA unattainable — bound the damage.
        let (partition, expected_service_ns) = match self.config().fallback {
            FallbackPolicy::FastestService => {
                let mut best: Option<(u64, u32)> = None;
                for bucket in &state.buckets {
                    let Some((idx, wait)) = bucket.least_loaded(now_ns) else {
                        continue;
                    };
                    let t_new = table.latency_ns(bucket.size, batch);
                    let service = wait.saturating_add(t_new);
                    if best.is_none_or(|b| (service, idx) < b) {
                        best = Some((service, idx));
                    }
                }
                let (service, idx) = best.expect("partitions is non-empty");
                (idx as usize, service)
            }
            FallbackPolicy::SmallestPartition => {
                let (idx, wait) = (0..nb)
                    .find_map(|rank| bucket_at(rank).least_loaded(now_ns))
                    .expect("partitions is non-empty");
                let size = state.sizes[idx as usize];
                (
                    idx as usize,
                    wait.saturating_add(table.latency_ns(size, batch)),
                )
            }
            FallbackPolicy::LargestPartition => {
                let (idx, wait) = (0..nb)
                    .rev()
                    .find_map(|rank| bucket_at(rank).most_loaded(now_ns))
                    .expect("partitions is non-empty");
                let size = state.sizes[idx as usize];
                (
                    idx as usize,
                    wait.saturating_add(table.latency_ns(size, batch)),
                )
            }
        };
        Decision::Fallback {
            partition,
            expected_service_ns,
        }
    }

    /// [`place`](Elsa::place) semantics over a state with non-unit degrade
    /// factors: the reference O(P log P) scan, with each partition's new-
    /// query estimate scaled by its factor (queued work was already
    /// inflated at enqueue time). Equivalent to `place` whenever every
    /// factor is 1.0.
    fn place_degraded(
        &self,
        batch: usize,
        table: &ProfileTable,
        state: &ElsaState,
        now_ns: u64,
    ) -> Decision {
        let snaps = state.snapshots(now_ns);
        let t_for = |p: usize| scale_ns(table.latency_ns(state.sizes[p], batch), state.factors[p]);
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        match self.config().order {
            ScanOrder::SmallestFirst => {
                order.sort_by_key(|&p| (snaps[p].size, snaps[p].wait_ns(), p));
            }
            ScanOrder::LargestFirst => {
                order.sort_by_key(|&p| (std::cmp::Reverse(snaps[p].size), snaps[p].wait_ns(), p));
            }
        }
        for &p in &order {
            let slack = self.slack_ns(&snaps[p], t_for(p));
            if slack > 0.0 {
                return Decision::WithinSla {
                    partition: p,
                    slack_ns: slack,
                };
            }
        }
        let service = |p: usize| snaps[p].wait_ns().saturating_add(t_for(p));
        let partition = match self.config().fallback {
            FallbackPolicy::FastestService => (0..snaps.len())
                .min_by_key(|&p| (service(p), p))
                .expect("partitions is non-empty"),
            FallbackPolicy::SmallestPartition => order[0],
            FallbackPolicy::LargestPartition => *order.last().expect("non-empty"),
        };
        Decision::Fallback {
            partition,
            expected_service_ns: service(partition),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elsa::ElsaConfig;
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table() -> ProfileTable {
        let model = ModelKind::ResNet50.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn assert_matches_reference(
        elsa: &Elsa,
        state: &mut ElsaState,
        t: &ProfileTable,
        now_ns: u64,
        batch: usize,
    ) {
        let snaps = state.snapshots(now_ns);
        let reference = elsa.place(batch, t, &snaps);
        let fast = elsa.place_mut(batch, t, state, now_ns);
        assert_eq!(fast, reference, "batch {batch} at t={now_ns}");
    }

    #[test]
    fn idle_state_matches_reference_for_all_batches() {
        let t = table();
        let elsa = Elsa::new(ElsaConfig::new(t.sla_target_ns(1.5)));
        let mut state = ElsaState::new(&[
            ProfileSize::G7,
            ProfileSize::G1,
            ProfileSize::G2,
            ProfileSize::G1,
        ]);
        for batch in [1usize, 4, 8, 16, 32] {
            assert_matches_reference(&elsa, &mut state, &t, 0, batch);
        }
    }

    #[test]
    fn loaded_state_matches_reference_across_policies() {
        let t = table();
        let sla = t.sla_target_ns(1.5);
        let configs = [
            ElsaConfig::new(sla),
            ElsaConfig::new(sla).with_order(ScanOrder::LargestFirst),
            ElsaConfig::new(sla).with_fallback(FallbackPolicy::SmallestPartition),
            ElsaConfig::new(sla).with_fallback(FallbackPolicy::LargestPartition),
            ElsaConfig::new(sla / 1000), // hopeless SLA → always fallback
            ElsaConfig::new(sla / 1000).with_order(ScanOrder::LargestFirst),
            ElsaConfig::new(sla / 1000).with_fallback(FallbackPolicy::SmallestPartition),
            ElsaConfig::new(sla / 1000).with_fallback(FallbackPolicy::LargestPartition),
            // Scan order × fallback interactions: Step B's bucket-scan
            // reversal is the subtlest branch, so cover both fallbacks
            // under the reversed order too (hopeless SLA forces Step B).
            ElsaConfig::new(sla / 1000)
                .with_order(ScanOrder::LargestFirst)
                .with_fallback(FallbackPolicy::SmallestPartition),
            ElsaConfig::new(sla / 1000)
                .with_order(ScanOrder::LargestFirst)
                .with_fallback(FallbackPolicy::LargestPartition),
        ];
        for cfg in configs {
            let elsa = Elsa::new(cfg);
            let mut state = ElsaState::new(&[
                ProfileSize::G1,
                ProfileSize::G1,
                ProfileSize::G3,
                ProfileSize::G7,
            ]);
            state.begin(0, 2_000_000);
            state.enqueue(0, 1_000_000);
            state.begin(2, 5_000_000);
            state.begin(3, 1_500_000);
            state.enqueue(3, 750_000);
            for (now, batch) in [(0u64, 1usize), (100_000, 8), (1_499_999, 16)] {
                assert_matches_reference(&elsa, &mut state, &t, now, batch);
            }
            // Retire work that ends before the later probes so the
            // simulation-clock invariant (busy_until ≥ now) holds.
            state.finish(3);
            state.dequeue(3, 750_000);
            state.begin(3, 2_600_000);
            assert_matches_reference(&elsa, &mut state, &t, 1_600_000, 16);
            state.finish(0);
            state.dequeue(0, 1_000_000);
            state.begin(0, 3_500_000);
            assert_matches_reference(&elsa, &mut state, &t, 2_500_000, 32);
        }
    }

    #[test]
    fn zero_wait_busy_partition_ties_with_idle_by_index() {
        // A partition whose current query ends exactly now has zero wait
        // and must tie-break against idle same-size partitions by index,
        // exactly like the reference sort.
        let t = table();
        let elsa = Elsa::new(ElsaConfig::new(t.sla_target_ns(1.5)));
        for (busy_idx, expected) in [(0usize, 0usize), (1, 0)] {
            let mut state = ElsaState::new(&[ProfileSize::G2, ProfileSize::G2]);
            state.begin(busy_idx, 1_000);
            // now == busy_until → wait 0 for the executing partition.
            assert_matches_reference(&elsa, &mut state, &t, 1_000, 4);
            let d = elsa.place_mut(4, &t, &mut state, 1_000);
            assert_eq!(d.partition(), expected);
        }
    }

    #[test]
    fn state_updates_keep_buckets_in_sync() {
        let mut state = ElsaState::new(&[ProfileSize::G1, ProfileSize::G1, ProfileSize::G7]);
        state.begin(0, 1_000);
        state.enqueue(0, 500);
        assert_eq!(state.snapshot(0, 400).wait_ns(), 1_100);
        state.finish(0);
        state.dequeue(0, 500);
        state.begin(0, 2_000);
        assert_eq!(state.snapshot(0, 1_000).wait_ns(), 1_000);
        state.finish(0);
        assert_eq!(state.snapshot(0, 1_000).wait_ns(), 0);
        assert_eq!(state.partition_count(), 3);
    }

    #[test]
    fn unit_factors_keep_reference_equivalence() {
        // Setting factors to exactly 1.0 must leave the fast path (and its
        // bit-for-bit reference equivalence) in force.
        let t = table();
        let elsa = Elsa::new(ElsaConfig::new(t.sla_target_ns(1.5)));
        let mut state = ElsaState::new(&[ProfileSize::G1, ProfileSize::G2, ProfileSize::G7]);
        state.set_factor(0, 1.0);
        state.set_factor(2, 1.0);
        state.begin(1, 2_000_000);
        for batch in [1usize, 8, 32] {
            assert_matches_reference(&elsa, &mut state, &t, 100_000, batch);
        }
    }

    #[test]
    fn degraded_partition_is_steered_around() {
        // Two idle G1s: the scan normally picks index 0. A large factor on
        // 0 inflates its estimate past the SLA so placement lands on 1.
        let t = table();
        let elsa = Elsa::new(ElsaConfig::new(t.sla_target_ns(1.5)));
        let mut state = ElsaState::new(&[ProfileSize::G1, ProfileSize::G1]);
        assert_eq!(elsa.place_mut(8, &t, &mut state, 0).partition(), 0);
        state.set_factor(0, 1000.0);
        let d = elsa.place_mut(8, &t, &mut state, 0);
        assert_eq!(d.partition(), 1, "sick partition must be avoided");
        assert!(d.is_within_sla());
        // Restoring the clean profile restores the original choice.
        state.set_factor(0, 1.0);
        assert_eq!(elsa.place_mut(8, &t, &mut state, 0).partition(), 0);
    }

    #[test]
    fn degraded_fallback_accounts_for_inflated_service() {
        // Hopeless SLA forces Step B: fastest-service must use the scaled
        // estimate, so the degraded small partition loses to the large one.
        let t = table();
        let elsa = Elsa::new(ElsaConfig::new(1));
        let mut state = ElsaState::new(&[ProfileSize::G1, ProfileSize::G7]);
        // Healthy: the G1 serves a batch-1 query with less wait+exec? The
        // reference decides; just check degrade flips toward the G7.
        let healthy = elsa.place_mut(1, &t, &mut state, 0);
        state.set_factor(0, 1000.0);
        let degraded = elsa.place_mut(1, &t, &mut state, 0);
        assert_eq!(degraded.partition(), 1);
        assert!(!degraded.is_within_sla());
        let _ = healthy;
    }

    #[test]
    fn scale_ns_rounds_to_nearest() {
        assert_eq!(scale_ns(1_000, 1.0), 1_000);
        assert_eq!(scale_ns(1_000, 1.5), 1_500);
        assert_eq!(scale_ns(3, 1.5), 5); // 4.5 rounds up
        assert_eq!(scale_ns(0, 7.0), 0);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn sub_unit_factor_panics() {
        let mut state = ElsaState::new(&[ProfileSize::G1]);
        state.set_factor(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "already executing")]
    fn double_begin_panics() {
        let mut state = ElsaState::new(&[ProfileSize::G1]);
        state.begin(0, 100);
        state.begin(0, 200);
    }

    #[test]
    #[should_panic(expected = "enqueue on idle")]
    fn enqueue_on_idle_panics() {
        let mut state = ElsaState::new(&[ProfileSize::G1]);
        state.enqueue(0, 100);
    }

    #[test]
    #[should_panic(expected = "no partitions")]
    fn empty_state_panics_on_place() {
        let t = table();
        let elsa = Elsa::new(ElsaConfig::new(t.sla_target_ns(1.5)));
        let mut state = ElsaState::new(&[]);
        let _ = elsa.place_mut(1, &t, &mut state, 0);
    }
}
