//! `MaxBatch_knee` derivation (Algorithm 1, Step A).
//!
//! §III-B defines the knee as "the max batch size at the knee of the
//! latency curve": the point where utilization plateaus and latency starts
//! growing linearly with batch size. The paper operationalizes it as the
//! first batch whose profiled utilization reaches 80% (Algorithm 1,
//! line 8); this module implements both that rule and an equivalent
//! latency-takeoff rule (the first batch where latency exceeds the batch-1
//! latency by a configurable factor), which is robust on overhead-bound
//! models whose SM utilization never reaches the threshold. The
//! latency-takeoff rule is the default; the choice is ablation D1 in
//! DESIGN.md.

use mig_gpu::ProfileSize;

use crate::profile::ProfileTable;

/// The utilization threshold of Algorithm 1, line 8.
pub const DEFAULT_KNEE_THRESHOLD: f64 = 0.8;

/// The default latency-takeoff factor: the knee is where latency has grown
/// 25% beyond its flat region.
pub const DEFAULT_TAKEOFF_FACTOR: f64 = 1.25;

/// How `MaxBatch_knee` is detected on the profiled curves.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KneeRule {
    /// Algorithm 1's literal rule: first batch with utilization ≥ the
    /// threshold.
    UtilizationThreshold(f64),
    /// First batch whose latency exceeds `factor ×` the batch-1 latency
    /// (the §III-B "knee of the latency curve").
    LatencyTakeoff(f64),
}

impl Default for KneeRule {
    fn default() -> Self {
        KneeRule::LatencyTakeoff(DEFAULT_TAKEOFF_FACTOR)
    }
}

impl KneeRule {
    fn validate(self) {
        match self {
            KneeRule::UtilizationThreshold(t) => {
                assert!(t > 0.0 && t <= 1.0, "knee threshold must be within (0, 1]");
            }
            KneeRule::LatencyTakeoff(f) => {
                assert!(f.is_finite() && f > 1.0, "takeoff factor must exceed 1");
            }
        }
    }
}

/// The knee batch size of one partition size, with the utilization observed
/// there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxBatchKnee {
    /// The partition size this knee belongs to.
    pub size: ProfileSize,
    /// The knee batch size `B_k`.
    pub batch: usize,
    /// Profiled utilization at the knee.
    pub utilization: f64,
}

/// Finds `B_k` for one partition size under the given rule, falling back to
/// the largest profiled batch when the partition never reaches the knee
/// (the paper's big-partition case, where the whole distribution range
/// belongs to the last segment).
///
/// # Panics
///
/// Panics if the rule's parameter is out of range or `size` was not
/// profiled.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{find_knee, KneeRule, ProfileTable};
///
/// let model = ModelKind::ResNet50.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
/// let rule = KneeRule::default();
/// let small = find_knee(&table, ProfileSize::G1, rule);
/// let large = find_knee(&table, ProfileSize::G7, rule);
/// // Small partitions saturate at smaller batches (§IV-B, key observation).
/// assert!(small.batch <= large.batch);
/// ```
#[must_use]
pub fn find_knee(table: &ProfileTable, size: ProfileSize, rule: KneeRule) -> MaxBatchKnee {
    rule.validate();
    let hit = |b: usize| -> bool {
        match rule {
            KneeRule::UtilizationThreshold(t) => table.utilization(size, b) >= t,
            KneeRule::LatencyTakeoff(f) => {
                table.latency_ns(size, b) as f64 >= f * table.latency_ns(size, 1) as f64
            }
        }
    };
    for b in 1..=table.max_batch() {
        if hit(b) {
            return MaxBatchKnee {
                size,
                batch: b,
                utilization: table.utilization(size, b),
            };
        }
    }
    MaxBatchKnee {
        size,
        batch: table.max_batch(),
        utilization: table.utilization(size, table.max_batch()),
    }
}

/// Finds the knees of every profiled partition size, clamped to be
/// non-decreasing in partition size (larger partitions never get a smaller
/// knee, so the batch segments of Algorithm 1 Step B stay well-formed even
/// if profiled curves wobble).
///
/// # Panics
///
/// Panics if the rule's parameter is out of range.
#[must_use]
pub fn find_knees(table: &ProfileTable, rule: KneeRule) -> Vec<MaxBatchKnee> {
    let mut knees: Vec<MaxBatchKnee> = table
        .sizes()
        .iter()
        .map(|&size| find_knee(table, size, rule))
        .collect();
    for i in 1..knees.len() {
        if knees[i].batch < knees[i - 1].batch {
            knees[i].batch = knees[i - 1].batch;
        }
    }
    knees
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    #[test]
    fn knees_non_decreasing_in_partition_size_under_both_rules() {
        for rule in [
            KneeRule::default(),
            KneeRule::UtilizationThreshold(DEFAULT_KNEE_THRESHOLD),
        ] {
            for kind in ModelKind::ALL {
                let t = table(kind);
                let knees = find_knees(&t, rule);
                for pair in knees.windows(2) {
                    assert!(
                        pair[1].batch >= pair[0].batch,
                        "{kind} under {rule:?}: knee({}) < knee({})",
                        pair[1].size,
                        pair[0].size
                    );
                }
            }
        }
    }

    #[test]
    fn compute_hungry_models_have_earlier_small_partition_knees() {
        // BERT saturates GPU(1) long before the lightweight models do.
        let rule = KneeRule::default();
        let bert = find_knee(&table(ModelKind::BertBase), ProfileSize::G1, rule);
        let mobilenet = find_knee(&table(ModelKind::MobileNet), ProfileSize::G1, rule);
        let shuffle = find_knee(&table(ModelKind::ShuffleNet), ProfileSize::G1, rule);
        assert!(
            bert.batch < mobilenet.batch,
            "BERT knee {} !< MobileNet knee {}",
            bert.batch,
            mobilenet.batch
        );
        assert!(
            mobilenet.batch <= shuffle.batch,
            "MobileNet knee {} !<= ShuffleNet knee {}",
            mobilenet.batch,
            shuffle.batch
        );
    }

    #[test]
    fn flat_latency_models_never_take_off() {
        // ShuffleNet is kernel-floor-bound: its latency curve stays flat, so
        // every partition's knee falls back to the max profiled batch.
        let t = table(ModelKind::ShuffleNet);
        let knee = find_knee(&t, ProfileSize::G7, KneeRule::default());
        assert_eq!(knee.batch, t.max_batch());
    }

    #[test]
    fn utilization_rule_respects_threshold_when_found_early() {
        let t = table(ModelKind::BertBase);
        let knee = find_knee(&t, ProfileSize::G1, KneeRule::UtilizationThreshold(0.5));
        if knee.batch < t.max_batch() {
            assert!(knee.utilization >= 0.5);
        }
    }

    #[test]
    fn stricter_takeoff_means_later_knee() {
        let t = table(ModelKind::ResNet50);
        let early = find_knee(&t, ProfileSize::G3, KneeRule::LatencyTakeoff(1.1));
        let late = find_knee(&t, ProfileSize::G3, KneeRule::LatencyTakeoff(2.0));
        assert!(early.batch <= late.batch);
    }

    #[test]
    fn lower_threshold_means_earlier_knee() {
        let t = table(ModelKind::ResNet50);
        let strict = find_knee(&t, ProfileSize::G3, KneeRule::UtilizationThreshold(0.9));
        let lax = find_knee(&t, ProfileSize::G3, KneeRule::UtilizationThreshold(0.2));
        assert!(lax.batch <= strict.batch);
    }

    #[test]
    #[should_panic(expected = "knee threshold")]
    fn zero_threshold_panics() {
        let t = table(ModelKind::MobileNet);
        let _ = find_knee(&t, ProfileSize::G1, KneeRule::UtilizationThreshold(0.0));
    }

    #[test]
    #[should_panic(expected = "takeoff factor")]
    fn unit_takeoff_panics() {
        let t = table(ModelKind::MobileNet);
        let _ = find_knee(&t, ProfileSize::G1, KneeRule::LatencyTakeoff(1.0));
    }
}
