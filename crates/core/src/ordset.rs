//! A deterministic, arena-backed ordered set of `(load, index)` keys.
//!
//! This is the data structure behind ELSA's O(log P) hot path: each
//! per-size bucket keeps its *busy* partitions ordered by
//! `(drain_time, partition index)` so the least- and most-loaded instance
//! can be found in logarithmic time, while enqueue/begin/finish events
//! re-key a partition with one remove + insert.
//!
//! Three properties matter here and drove the implementation (a treap over
//! a slab of nodes with an explicit free list):
//!
//! * **No steady-state allocation.** Nodes live in a `Vec` arena that grows
//!   to the high-water population and is then recycled through a free
//!   list, so a simulation dispatching millions of queries performs zero
//!   heap allocations after warm-up.
//! * **Determinism.** Tree shape depends only on the sequence of inserted
//!   keys: priorities come from a SplitMix64 counter owned by the set, not
//!   from a global RNG or the allocator. Identical runs produce identical
//!   trees and identical iteration orders.
//! * **O(log n) expected** insert, remove, min and max.

/// Sentinel "null" arena index.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: (u64, u32),
    prio: u64,
    left: u32,
    right: u32,
}

/// An ordered set of `(u64, u32)` keys with O(log n) expected insert,
/// exact-key remove, and min/max queries — allocation-free once its arena
/// has grown to the working population.
///
/// # Examples
///
/// ```
/// use paris_core::LoadSet;
///
/// let mut set = LoadSet::new();
/// set.insert((30, 2));
/// set.insert((10, 7));
/// set.insert((10, 3));
/// assert_eq!(set.first(), Some((10, 3)));
/// assert_eq!(set.last(), Some((30, 2)));
/// assert!(set.remove((10, 3)));
/// assert_eq!(set.first(), Some((10, 7)));
/// ```
#[derive(Debug, Clone)]
pub struct LoadSet {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    prio_state: u64,
}

impl LoadSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty set whose arena holds `capacity` nodes before
    /// growing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        LoadSet {
            nodes: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            root: NIL,
            len: 0,
            prio_state: 0x243F_6A88_85A3_08D3, // deterministic fixed seed
        }
    }

    /// Number of keys in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest key, if any.
    #[must_use]
    pub fn first(&self) -> Option<(u64, u32)> {
        let mut t = self.root;
        if t == NIL {
            return None;
        }
        while self.nodes[t as usize].left != NIL {
            t = self.nodes[t as usize].left;
        }
        Some(self.nodes[t as usize].key)
    }

    /// The largest key, if any.
    #[must_use]
    pub fn last(&self) -> Option<(u64, u32)> {
        let mut t = self.root;
        if t == NIL {
            return None;
        }
        while self.nodes[t as usize].right != NIL {
            t = self.nodes[t as usize].right;
        }
        Some(self.nodes[t as usize].key)
    }

    fn next_prio(&mut self) -> u64 {
        self.prio_state = self.prio_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.prio_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn alloc(&mut self, key: (u64, u32), prio: u64) -> u32 {
        let node = Node {
            key,
            prio,
            left: NIL,
            right: NIL,
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                let idx = u32::try_from(self.nodes.len()).expect("arena exceeds u32 indices");
                self.nodes.push(node);
                idx
            }
        }
    }

    /// Inserts `key`. Duplicate keys are allowed but never arise in ELSA's
    /// usage (the `u32` half is a unique partition index).
    pub fn insert(&mut self, key: (u64, u32)) {
        let prio = self.next_prio();
        let n = self.alloc(key, prio);
        self.root = self.insert_at(self.root, n);
        self.len += 1;
    }

    fn insert_at(&mut self, t: u32, n: u32) -> u32 {
        if t == NIL {
            return n;
        }
        if self.nodes[n as usize].prio > self.nodes[t as usize].prio {
            let (l, r) = self.split(t, self.nodes[n as usize].key);
            self.nodes[n as usize].left = l;
            self.nodes[n as usize].right = r;
            n
        } else if self.nodes[n as usize].key < self.nodes[t as usize].key {
            let child = self.insert_at(self.nodes[t as usize].left, n);
            self.nodes[t as usize].left = child;
            t
        } else {
            let child = self.insert_at(self.nodes[t as usize].right, n);
            self.nodes[t as usize].right = child;
            t
        }
    }

    /// Splits subtree `t` into (< key, >= key).
    fn split(&mut self, t: u32, key: (u64, u32)) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key < key {
            let (l, r) = self.split(self.nodes[t as usize].right, key);
            self.nodes[t as usize].right = l;
            (t, r)
        } else {
            let (l, r) = self.split(self.nodes[t as usize].left, key);
            self.nodes[t as usize].left = r;
            (l, t)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let merged = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = merged;
            a
        } else {
            let merged = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = merged;
            b
        }
    }

    /// Removes `key` if present; returns whether it was found.
    pub fn remove(&mut self, key: (u64, u32)) -> bool {
        let (root, removed) = self.remove_at(self.root, key);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, t: u32, key: (u64, u32)) -> (u32, bool) {
        if t == NIL {
            return (NIL, false);
        }
        let node_key = self.nodes[t as usize].key;
        if key == node_key {
            let merged = self.merge(self.nodes[t as usize].left, self.nodes[t as usize].right);
            self.free.push(t);
            (merged, true)
        } else if key < node_key {
            let (child, removed) = self.remove_at(self.nodes[t as usize].left, key);
            self.nodes[t as usize].left = child;
            (t, removed)
        } else {
            let (child, removed) = self.remove_at(self.nodes[t as usize].right, key);
            self.nodes[t as usize].right = child;
            (t, removed)
        }
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains(&self, key: (u64, u32)) -> bool {
        let mut t = self.root;
        while t != NIL {
            let node_key = self.nodes[t as usize].key;
            if key == node_key {
                return true;
            }
            t = if key < node_key {
                self.nodes[t as usize].left
            } else {
                self.nodes[t as usize].right
            };
        }
        false
    }
}

impl Default for LoadSet {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-universe set of partition indices with O(universe/64) min/max
/// scans — the "idle" side of an ELSA bucket, where every member has zero
/// wait and only the index tie-break matters.
///
/// # Examples
///
/// ```
/// use paris_core::IndexSet;
///
/// let mut idle = IndexSet::new(100);
/// idle.insert(40);
/// idle.insert(7);
/// assert_eq!(idle.min(), Some(7));
/// assert_eq!(idle.max(), Some(40));
/// idle.remove(7);
/// assert_eq!(idle.min(), Some(40));
/// ```
#[derive(Debug, Clone)]
pub struct IndexSet {
    words: Vec<u64>,
    len: usize,
}

impl IndexSet {
    /// Creates an empty set over the universe `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        IndexSet {
            words: vec![0; universe.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `idx` (no-op if already present).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the universe.
    pub fn insert(&mut self, idx: u32) {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
        }
    }

    /// Removes `idx` (no-op if absent).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the universe.
    pub fn remove(&mut self, idx: u32) {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.len -= 1;
        }
    }

    /// Whether `idx` is a member.
    #[must_use]
    pub fn contains(&self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some((w * 64 + word.trailing_zeros() as usize) as u32);
            }
        }
        None
    }

    /// The largest member, if any.
    #[must_use]
    pub fn max(&self) -> Option<u32> {
        for (w, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                return Some((w * 64 + 63 - word.leading_zeros() as usize) as u32);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_extremes() {
        let set = LoadSet::new();
        assert!(set.is_empty());
        assert_eq!(set.first(), None);
        assert_eq!(set.last(), None);
    }

    #[test]
    fn orders_by_load_then_index() {
        let mut set = LoadSet::new();
        set.insert((10, 5));
        set.insert((10, 2));
        set.insert((5, 9));
        set.insert((20, 0));
        assert_eq!(set.len(), 4);
        assert_eq!(set.first(), Some((5, 9)));
        assert_eq!(set.last(), Some((20, 0)));
        set.remove((5, 9));
        assert_eq!(set.first(), Some((10, 2)), "index breaks the load tie");
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut set = LoadSet::new();
        set.insert((1, 1));
        assert!(!set.remove((1, 2)));
        assert!(!set.remove((2, 1)));
        assert!(set.remove((1, 1)));
        assert!(set.is_empty());
    }

    #[test]
    fn rekey_moves_element() {
        let mut set = LoadSet::new();
        set.insert((100, 0));
        set.insert((200, 1));
        // Partition 0 gains work: 100 → 300.
        assert!(set.remove((100, 0)));
        set.insert((300, 0));
        assert_eq!(set.first(), Some((200, 1)));
        assert_eq!(set.last(), Some((300, 0)));
    }

    #[test]
    fn arena_is_recycled() {
        let mut set = LoadSet::new();
        for round in 0..100u64 {
            for i in 0..16u32 {
                set.insert((round * 1000 + u64::from(i), i));
            }
            for i in 0..16u32 {
                assert!(set.remove((round * 1000 + u64::from(i), i)));
            }
        }
        assert!(set.is_empty());
        assert!(
            set.nodes.capacity() <= 32,
            "arena stays at the working-set high-water mark, got {}",
            set.nodes.capacity()
        );
    }

    #[test]
    fn matches_btreeset_reference_on_random_workload() {
        use std::collections::BTreeSet;
        let mut set = LoadSet::new();
        let mut reference: BTreeSet<(u64, u32)> = BTreeSet::new();
        // Deterministic pseudo-random op sequence.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            let key = (rng() % 64, (rng() % 16) as u32);
            if reference.contains(&key) {
                assert!(set.remove(key));
                reference.remove(&key);
            } else {
                set.insert(key);
                reference.insert(key);
            }
            assert_eq!(set.len(), reference.len());
            assert_eq!(set.first(), reference.iter().next().copied());
            assert_eq!(set.last(), reference.iter().next_back().copied());
        }
    }

    #[test]
    fn contains_finds_members() {
        let mut set = LoadSet::new();
        set.insert((7, 3));
        assert!(set.contains((7, 3)));
        assert!(!set.contains((7, 4)));
    }

    #[test]
    fn index_set_min_max_and_membership() {
        let mut s = IndexSet::new(200);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        for idx in [150, 3, 64, 63, 127] {
            s.insert(idx);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(150));
        assert!(s.contains(64));
        s.remove(3);
        s.remove(150);
        assert_eq!(s.min(), Some(63));
        assert_eq!(s.max(), Some(127));
        s.insert(63); // duplicate insert is a no-op
        assert_eq!(s.len(), 3);
    }
}
