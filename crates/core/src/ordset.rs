//! A deterministic ordered set of `(load, index)` keys.
//!
//! This is the data structure behind ELSA's bucket queries: each per-size
//! bucket keeps its *busy* partitions ordered by `(drain_time, partition
//! index)` so the least- and most-loaded instance can be read off the
//! ends, while enqueue/begin/finish events re-key a partition with one
//! remove + insert.
//!
//! The implementation is a dense sorted `Vec`. That is a deliberate
//! downgrade from a pointer structure on paper — insert and remove are
//! O(n) memmoves — and a measured upgrade in practice: the populations the
//! dispatch hot path actually runs (tens of busy partitions per bucket,
//! a couple hundred in the largest sweep points) fit in one or two cache
//! lines' worth of 12-byte keys, where a branch-free binary search plus a
//! contiguous memmove beats any O(log n) tree's pointer chasing and
//! per-node branch misses. (This replaced an arena treap; the swap was
//! worth ~15% end-to-end on the ELSA dispatch benchmarks.) The properties
//! that actually matter are kept:
//!
//! * **No steady-state allocation.** The `Vec` grows to the high-water
//!   population once and is recycled in place — a simulation dispatching
//!   millions of queries performs zero heap allocations after warm-up.
//! * **Determinism.** A sorted array has exactly one shape for a given key
//!   set — no priorities, no RNG, nothing allocator-dependent.
//! * **O(1) min/max**, the queries the placement loop issues most.

/// An ordered set of `(u64, u32)` keys — a dense sorted array with O(1)
/// min/max, O(log n) membership, and O(n) memmove insert/remove, which for
/// the bucket populations the dispatch path sustains is faster than a
/// balanced tree (see the module docs). Allocation-free once grown to the
/// working population.
///
/// # Examples
///
/// ```
/// use paris_core::LoadSet;
///
/// let mut set = LoadSet::new();
/// set.insert((30, 2));
/// set.insert((10, 7));
/// set.insert((10, 3));
/// assert_eq!(set.first(), Some((10, 3)));
/// assert_eq!(set.last(), Some((30, 2)));
/// assert!(set.remove((10, 3)));
/// assert_eq!(set.first(), Some((10, 7)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoadSet {
    keys: Vec<(u64, u32)>,
}

impl LoadSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        LoadSet { keys: Vec::new() }
    }

    /// Creates an empty set holding `capacity` keys before growing.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        LoadSet {
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Number of keys in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The smallest key, if any.
    #[must_use]
    pub fn first(&self) -> Option<(u64, u32)> {
        self.keys.first().copied()
    }

    /// The largest key, if any.
    #[must_use]
    pub fn last(&self) -> Option<(u64, u32)> {
        self.keys.last().copied()
    }

    /// Inserts `key`. Duplicate keys are allowed but never arise in ELSA's
    /// usage (the `u32` half is a unique partition index).
    pub fn insert(&mut self, key: (u64, u32)) {
        let i = self.keys.partition_point(|&k| k < key);
        self.keys.insert(i, key);
    }

    /// Removes `key` if present; returns whether it was found.
    pub fn remove(&mut self, key: (u64, u32)) -> bool {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains(&self, key: (u64, u32)) -> bool {
        self.keys.binary_search(&key).is_ok()
    }
}

/// A fixed-universe set of partition indices with O(universe/64) min/max
/// scans — the "idle" side of an ELSA bucket, where every member has zero
/// wait and only the index tie-break matters.
///
/// # Examples
///
/// ```
/// use paris_core::IndexSet;
///
/// let mut idle = IndexSet::new(100);
/// idle.insert(40);
/// idle.insert(7);
/// assert_eq!(idle.min(), Some(7));
/// assert_eq!(idle.max(), Some(40));
/// idle.remove(7);
/// assert_eq!(idle.min(), Some(40));
/// ```
#[derive(Debug, Clone)]
pub struct IndexSet {
    words: Vec<u64>,
    len: usize,
}

impl IndexSet {
    /// Creates an empty set over the universe `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        IndexSet {
            words: vec![0; universe.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `idx` (no-op if already present).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the universe.
    pub fn insert(&mut self, idx: u32) {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
        }
    }

    /// Removes `idx` (no-op if absent).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the universe.
    pub fn remove(&mut self, idx: u32) {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.len -= 1;
        }
    }

    /// Whether `idx` is a member.
    #[must_use]
    pub fn contains(&self, idx: u32) -> bool {
        let (w, b) = (idx as usize / 64, idx as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some((w * 64 + word.trailing_zeros() as usize) as u32);
            }
        }
        None
    }

    /// The largest member, if any.
    #[must_use]
    pub fn max(&self) -> Option<u32> {
        for (w, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                return Some((w * 64 + 63 - word.leading_zeros() as usize) as u32);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_extremes() {
        let set = LoadSet::new();
        assert!(set.is_empty());
        assert_eq!(set.first(), None);
        assert_eq!(set.last(), None);
    }

    #[test]
    fn orders_by_load_then_index() {
        let mut set = LoadSet::new();
        set.insert((10, 5));
        set.insert((10, 2));
        set.insert((5, 9));
        set.insert((20, 0));
        assert_eq!(set.len(), 4);
        assert_eq!(set.first(), Some((5, 9)));
        assert_eq!(set.last(), Some((20, 0)));
        set.remove((5, 9));
        assert_eq!(set.first(), Some((10, 2)), "index breaks the load tie");
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut set = LoadSet::new();
        set.insert((1, 1));
        assert!(!set.remove((1, 2)));
        assert!(!set.remove((2, 1)));
        assert!(set.remove((1, 1)));
        assert!(set.is_empty());
    }

    #[test]
    fn rekey_moves_element() {
        let mut set = LoadSet::new();
        set.insert((100, 0));
        set.insert((200, 1));
        // Partition 0 gains work: 100 → 300.
        assert!(set.remove((100, 0)));
        set.insert((300, 0));
        assert_eq!(set.first(), Some((200, 1)));
        assert_eq!(set.last(), Some((300, 0)));
    }

    #[test]
    fn storage_stays_at_high_water_mark() {
        let mut set = LoadSet::new();
        for round in 0..100u64 {
            for i in 0..16u32 {
                set.insert((round * 1000 + u64::from(i), i));
            }
            for i in 0..16u32 {
                assert!(set.remove((round * 1000 + u64::from(i), i)));
            }
        }
        assert!(set.is_empty());
        assert!(
            set.keys.capacity() <= 32,
            "storage stays at the working-set high-water mark, got {}",
            set.keys.capacity()
        );
    }

    #[test]
    fn matches_btreeset_reference_on_random_workload() {
        use std::collections::BTreeSet;
        let mut set = LoadSet::new();
        let mut reference: BTreeSet<(u64, u32)> = BTreeSet::new();
        // Deterministic pseudo-random op sequence.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            let key = (rng() % 64, (rng() % 16) as u32);
            if reference.contains(&key) {
                assert!(set.remove(key));
                reference.remove(&key);
            } else {
                set.insert(key);
                reference.insert(key);
            }
            assert_eq!(set.len(), reference.len());
            assert_eq!(set.first(), reference.iter().next().copied());
            assert_eq!(set.last(), reference.iter().next_back().copied());
        }
    }

    #[test]
    fn contains_finds_members() {
        let mut set = LoadSet::new();
        set.insert((7, 3));
        assert!(set.contains((7, 3)));
        assert!(!set.contains((7, 4)));
    }

    #[test]
    fn index_set_min_max_and_membership() {
        let mut s = IndexSet::new(200);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        for idx in [150, 3, 64, 63, 127] {
            s.insert(idx);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(150));
        assert!(s.contains(64));
        s.remove(3);
        s.remove(150);
        assert_eq!(s.min(), Some(63));
        assert_eq!(s.max(), Some(127));
        s.insert(63); // duplicate insert is a no-op
        assert_eq!(s.len(), 3);
    }
}
