//! **PARIS** — the Partitioning Algorithm for Reconfigurable multi-GPU
//! Inference Servers (paper §IV-B, Algorithm 1).
//!
//! Given the profiled utilization/latency tables and the batch-size
//! distribution, PARIS:
//!
//! * **Step A** derives each partition size's `MaxBatch_knee`,
//! * **Step B** splits the batch distribution into per-size segments and
//!   computes the relative instance ratio
//!   `R_k = Σ_b Dist(b)/Throughput_{k,b}` over each segment,
//! * **Step C** scales the ratios into absolute instance counts under the
//!   server's GPC budget,
//!
//! and finally (an implementation necessity the paper leaves implicit)
//! **packs** the chosen instances onto physical GPUs honouring the real MIG
//! placement rules. Rounding is largest-remainder under the GPC budget and
//! leftover GPCs are backfilled with `GPU(1)` instances (design decision D5
//! in DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

use inference_workload::BatchDistribution;
use mig_gpu::{GpuLayout, ProfileSize, COMPUTE_SLICES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::knee::{find_knees, KneeRule, MaxBatchKnee};
use crate::profile::ProfileTable;

/// The resource pool a plan may use: a total GPC budget spread over a number
/// of physical GPUs (paper Table I caps both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpcBudget {
    /// Total GPCs the plan may consume across all GPUs.
    pub total_gpcs: usize,
    /// Physical GPUs available for packing.
    pub num_gpus: usize,
}

impl GpcBudget {
    /// Creates a budget of `total_gpcs` across `num_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if the budget exceeds `num_gpus × 7` GPCs or either value is
    /// zero.
    #[must_use]
    pub fn new(total_gpcs: usize, num_gpus: usize) -> Self {
        assert!(total_gpcs >= 1 && num_gpus >= 1, "budget must be non-empty");
        assert!(
            total_gpcs <= num_gpus * COMPUTE_SLICES,
            "budget of {total_gpcs} GPCs exceeds {num_gpus} GPUs × {COMPUTE_SLICES}"
        );
        GpcBudget {
            total_gpcs,
            num_gpus,
        }
    }
}

impl fmt::Display for GpcBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} GPCs over {} GPUs", self.total_gpcs, self.num_gpus)
    }
}

/// The batch range `lo..=hi` a partition size is dedicated to (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchSegment {
    /// The partition size covering this range.
    pub size: ProfileSize,
    /// Smallest batch size in the segment (inclusive).
    pub lo: usize,
    /// Largest batch size in the segment (inclusive).
    pub hi: usize,
}

impl BatchSegment {
    /// Whether `batch` falls in this segment.
    #[must_use]
    pub fn contains(&self, batch: usize) -> bool {
        (self.lo..=self.hi).contains(&batch)
    }
}

impl fmt::Display for BatchSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: batches {}..={}", self.size, self.lo, self.hi)
    }
}

/// Error returned when a plan cannot be produced.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The batch distribution carries no mass inside the profiled range.
    EmptyDistribution,
    /// The budget cannot host a single instance of any profiled size.
    BudgetTooSmall {
        /// The offending budget.
        budget: GpcBudget,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyDistribution => {
                f.write_str("batch distribution has no mass over the profiled batch range")
            }
            PlanError::BudgetTooSmall { budget } => {
                write!(f, "budget ({budget}) cannot host any partition instance")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The output of PARIS (or of a baseline partitioner): which instances to
/// create, where they sit on the physical GPUs, and which batch segment each
/// size is responsible for.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_workload::BatchDistribution;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{GpcBudget, Paris, ProfileTable};
///
/// let model = ModelKind::MobileNet.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
/// let dist = BatchDistribution::paper_default();
///
/// let plan = Paris::new(&table, &dist).plan(GpcBudget::new(24, 4))?;
/// assert!(plan.total_gpcs_used() <= 24);
/// // MobileNet is light → PARIS favours a heterogeneous mix with small
/// // partitions present.
/// assert!(plan.count(ProfileSize::G1) + plan.count(ProfileSize::G2) > 0);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    counts: BTreeMap<ProfileSize, usize>,
    layouts: Vec<GpuLayout>,
    segments: Vec<BatchSegment>,
    ratios: Vec<(ProfileSize, f64)>,
    knees: Vec<MaxBatchKnee>,
}

impl PartitionPlan {
    /// Instances per partition size.
    #[must_use]
    pub fn counts(&self) -> &BTreeMap<ProfileSize, usize> {
        &self.counts
    }

    /// Number of instances of one size.
    #[must_use]
    pub fn count(&self, size: ProfileSize) -> usize {
        self.counts.get(&size).copied().unwrap_or(0)
    }

    /// Every instance in the plan, smallest size first — the order ELSA
    /// iterates partitions in.
    #[must_use]
    pub fn partitions(&self) -> Vec<ProfileSize> {
        let mut out = Vec::new();
        for (&size, &n) in &self.counts {
            out.extend(std::iter::repeat_n(size, n));
        }
        out
    }

    /// Total number of instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.counts.values().sum()
    }

    /// GPCs consumed by all instances.
    #[must_use]
    pub fn total_gpcs_used(&self) -> usize {
        self.counts.iter().map(|(s, n)| s.gpcs() * n).sum()
    }

    /// Per-GPU placements.
    #[must_use]
    pub fn layouts(&self) -> &[GpuLayout] {
        &self.layouts
    }

    /// The batch segment each size is dedicated to (empty for baselines
    /// that do not segment the distribution).
    #[must_use]
    pub fn segments(&self) -> &[BatchSegment] {
        &self.segments
    }

    /// The relative instance ratios `R_k` PARIS derived (empty for
    /// baselines).
    #[must_use]
    pub fn ratios(&self) -> &[(ProfileSize, f64)] {
        &self.ratios
    }

    /// The knees PARIS derived (empty for baselines).
    #[must_use]
    pub fn knees(&self) -> &[MaxBatchKnee] {
        &self.knees
    }

    /// Whether the plan mixes more than one partition size.
    #[must_use]
    pub fn is_heterogeneous(&self) -> bool {
        self.counts.values().filter(|&&n| n > 0).count() > 1
    }

    fn from_counts(
        counts: BTreeMap<ProfileSize, usize>,
        num_gpus: usize,
        segments: Vec<BatchSegment>,
        ratios: Vec<(ProfileSize, f64)>,
        knees: Vec<MaxBatchKnee>,
    ) -> Self {
        let (layouts, packed) = pack_instances(&counts, num_gpus);
        PartitionPlan {
            counts: packed,
            layouts,
            segments,
            ratios,
            knees,
        }
    }
}

impl fmt::Display for PartitionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&size, &n) in &self.counts {
            if n == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{n}\u{d7}{size}")?;
            first = false;
        }
        write!(f, " ({} GPCs)", self.total_gpcs_used())
    }
}

/// Packs the requested instances onto physical GPUs with first-fit
/// decreasing under MIG placement rules. Instances that cannot be placed
/// are split into `GPU(1)`s where possible, or dropped. Returns the layouts
/// and the counts that were actually placed.
fn pack_instances(
    counts: &BTreeMap<ProfileSize, usize>,
    num_gpus: usize,
) -> (Vec<GpuLayout>, BTreeMap<ProfileSize, usize>) {
    let mut instances: Vec<ProfileSize> = Vec::new();
    for (&size, &n) in counts {
        instances.extend(std::iter::repeat_n(size, n));
    }
    instances.sort_by(|a, b| b.cmp(a)); // biggest first

    let mut gpu_profiles: Vec<Vec<ProfileSize>> = vec![Vec::new(); num_gpus];
    let mut overflow: Vec<ProfileSize> = Vec::new();
    for &inst in &instances {
        let mut placed = false;
        for gpu in &mut gpu_profiles {
            gpu.push(inst);
            if GpuLayout::fits(gpu) {
                placed = true;
                break;
            }
            gpu.pop();
        }
        if !placed {
            overflow.push(inst);
        }
    }
    // Second chance: split unplaceable instances into 1-GPC pieces.
    for inst in overflow {
        for _ in 0..inst.gpcs() {
            for gpu in &mut gpu_profiles {
                gpu.push(ProfileSize::G1);
                if GpuLayout::fits(gpu) {
                    break;
                }
                gpu.pop();
            }
        }
    }

    let mut packed: BTreeMap<ProfileSize, usize> = BTreeMap::new();
    let layouts: Vec<GpuLayout> = gpu_profiles
        .iter()
        .map(|profiles| {
            for &p in profiles {
                *packed.entry(p).or_insert(0) += 1;
            }
            GpuLayout::place(profiles).expect("pack_instances only builds feasible layouts")
        })
        .collect();
    (layouts, packed)
}

/// The PARIS planner.
///
/// See [`PartitionPlan`] for a usage example; ablation knobs are the knee
/// threshold (D1 in DESIGN.md).
#[derive(Debug, Clone)]
pub struct Paris<'a> {
    table: &'a ProfileTable,
    dist: &'a BatchDistribution,
    knee_rule: KneeRule,
}

impl<'a> Paris<'a> {
    /// Creates a planner over a profile table and batch distribution with
    /// the default latency-takeoff knee rule.
    #[must_use]
    pub fn new(table: &'a ProfileTable, dist: &'a BatchDistribution) -> Self {
        Paris {
            table,
            dist,
            knee_rule: KneeRule::default(),
        }
    }

    /// Overrides the knee-detection rule (ablation D1).
    ///
    /// # Panics
    ///
    /// Panics if the rule's parameter is out of range.
    #[must_use]
    pub fn with_knee_rule(mut self, rule: KneeRule) -> Self {
        match rule {
            KneeRule::UtilizationThreshold(t) => {
                assert!(t > 0.0 && t <= 1.0, "knee threshold must be within (0, 1]");
            }
            KneeRule::LatencyTakeoff(f) => {
                assert!(f.is_finite() && f > 1.0, "takeoff factor must exceed 1");
            }
        }
        self.knee_rule = rule;
        self
    }

    /// Runs Algorithm 1 and packs the result onto the budgeted GPUs.
    ///
    /// # Errors
    ///
    /// * [`PlanError::EmptyDistribution`] if the batch distribution has no
    ///   mass in the profiled range,
    /// * [`PlanError::BudgetTooSmall`] if not even one `GPU(1)` instance
    ///   fits the budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnn_zoo::ModelKind;
    /// use inference_workload::BatchDistribution;
    /// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    /// use paris_core::{GpcBudget, Paris, ProfileTable};
    ///
    /// let model = ModelKind::ResNet50.build();
    /// let perf = PerfModel::new(DeviceSpec::a100());
    /// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    /// let dist = BatchDistribution::paper_default();
    ///
    /// // Partition 48 GPCs over 8 A100s for a log-normal batch mix.
    /// let plan = Paris::new(&table, &dist).plan(GpcBudget::new(48, 8))?;
    /// assert!(plan.total_gpcs_used() <= 48);
    /// assert!(plan.is_heterogeneous(), "PARIS mixes partition sizes");
    /// // Every batch size is owned by exactly one segment.
    /// assert!(plan.segments().iter().any(|s| s.contains(1)));
    /// # Ok::<(), paris_core::PlanError>(())
    /// ```
    pub fn plan(&self, budget: GpcBudget) -> Result<PartitionPlan, PlanError> {
        if budget.total_gpcs < 1 {
            return Err(PlanError::BudgetTooSmall { budget });
        }

        // Step A: knees per partition size (profiled once, reused).
        let knees = find_knees(self.table, self.knee_rule);

        // Split the distribution into per-size batch segments. The largest
        // size absorbs everything beyond its knee.
        let max_batch = self.dist.max_batch().max(self.table.max_batch());
        let mut segments = Vec::new();
        let mut prev_hi = 0usize;
        for (i, knee) in knees.iter().enumerate() {
            let hi = if i + 1 == knees.len() {
                max_batch
            } else {
                knee.batch
            };
            if hi > prev_hi {
                segments.push(BatchSegment {
                    size: knee.size,
                    lo: prev_hi + 1,
                    hi,
                });
                prev_hi = hi;
            }
        }

        // Step B: relative ratios R_k = Σ Dist(b) / Throughput_{k,b}.
        let mut ratios: Vec<(ProfileSize, f64)> = Vec::new();
        for seg in &segments {
            let mut r = 0.0;
            for b in seg.lo..=seg.hi {
                let p = self.dist.pmf(b);
                if p > 0.0 {
                    r += p / self.table.throughput_qps(seg.size, b);
                }
            }
            ratios.push((seg.size, r));
        }
        let weighted: f64 = ratios.iter().map(|&(s, r)| s.gpcs() as f64 * r).sum();
        if weighted <= 0.0 {
            return Err(PlanError::EmptyDistribution);
        }

        // Step C: absolute instance counts under the GPC budget.
        let scale = budget.total_gpcs as f64 / weighted;
        let mut counts: BTreeMap<ProfileSize, usize> = BTreeMap::new();
        let mut remainders: Vec<(ProfileSize, f64)> = Vec::new();
        let mut used = 0usize;
        for &(size, r) in &ratios {
            let raw = scale * r;
            let whole = raw.floor() as usize;
            counts.insert(size, whole);
            used += whole * size.gpcs();
            remainders.push((size, raw - whole as f64));
        }
        // Guarantee representation: any size with demand but zero instances
        // gets one if the budget allows (smallest first — cheapest).
        for &(size, r) in &ratios {
            if r > 0.0 && counts[&size] == 0 && used + size.gpcs() <= budget.total_gpcs {
                *counts.get_mut(&size).expect("size inserted above") += 1;
                used += size.gpcs();
            }
        }
        // Largest-remainder rounding over the residual budget.
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("remainders are finite"));
        loop {
            let mut progressed = false;
            for &(size, _) in &remainders {
                if used + size.gpcs() <= budget.total_gpcs {
                    *counts.get_mut(&size).expect("size inserted above") += 1;
                    used += size.gpcs();
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        if used == 0 {
            return Err(PlanError::BudgetTooSmall { budget });
        }

        Ok(PartitionPlan::from_counts(
            counts,
            budget.num_gpus,
            segments,
            ratios,
            knees,
        ))
    }
}

/// Builds a homogeneous plan: as many instances of `size` as the budget and
/// MIG geometry allow (the paper's GPU(N) baselines, Table I).
///
/// # Errors
///
/// Returns [`PlanError::BudgetTooSmall`] if not even one instance fits.
///
/// # Examples
///
/// ```
/// use mig_gpu::ProfileSize;
/// use paris_core::{homogeneous_plan, GpcBudget};
///
/// // Table I, ResNet row: GPU(3) with 48 GPCs on 8 A100s → 16 instances.
/// let plan = homogeneous_plan(ProfileSize::G3, GpcBudget::new(48, 8))?;
/// assert_eq!(plan.count(ProfileSize::G3), 16);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
pub fn homogeneous_plan(size: ProfileSize, budget: GpcBudget) -> Result<PartitionPlan, PlanError> {
    // Max instances of `size` on one GPU under placement rules.
    let mut per_gpu = 0usize;
    let mut probe = Vec::new();
    loop {
        probe.push(size);
        if GpuLayout::fits(&probe) {
            per_gpu += 1;
        } else {
            break;
        }
    }
    let by_budget = budget.total_gpcs / size.gpcs();
    let n = by_budget.min(per_gpu * budget.num_gpus);
    if n == 0 {
        return Err(PlanError::BudgetTooSmall { budget });
    }
    let mut counts = BTreeMap::new();
    counts.insert(size, n);
    Ok(PartitionPlan::from_counts(
        counts,
        budget.num_gpus,
        Vec::new(),
        Vec::new(),
        Vec::new(),
    ))
}

/// Builds a random heterogeneous plan: repeatedly picks a uniformly random
/// profile that still fits the budget and the GPUs (the paper's "Random"
/// baseline, §VI).
///
/// # Errors
///
/// Returns [`PlanError::BudgetTooSmall`] if not even one instance fits.
pub fn random_plan(budget: GpcBudget, seed: u64) -> Result<PartitionPlan, PlanError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gpu_profiles: Vec<Vec<ProfileSize>> = vec![Vec::new(); budget.num_gpus];
    let mut used = 0usize;
    loop {
        // Candidate sizes that fit the remaining budget on some GPU.
        let mut feasible: Vec<(usize, ProfileSize)> = Vec::new();
        for &size in &ProfileSize::ALL {
            if used + size.gpcs() > budget.total_gpcs {
                continue;
            }
            for (gpu_idx, gpu) in gpu_profiles.iter_mut().enumerate() {
                gpu.push(size);
                let fits = GpuLayout::fits(gpu);
                gpu.pop();
                if fits {
                    feasible.push((gpu_idx, size));
                    break;
                }
            }
        }
        if feasible.is_empty() {
            break;
        }
        let &(gpu_idx, size) = &feasible[rng.gen_range(0..feasible.len())];
        gpu_profiles[gpu_idx].push(size);
        used += size.gpcs();
    }
    if used == 0 {
        return Err(PlanError::BudgetTooSmall { budget });
    }
    let mut counts: BTreeMap<ProfileSize, usize> = BTreeMap::new();
    for gpu in &gpu_profiles {
        for &p in gpu {
            *counts.entry(p).or_insert(0) += 1;
        }
    }
    Ok(PartitionPlan::from_counts(
        counts,
        budget.num_gpus,
        Vec::new(),
        Vec::new(),
        Vec::new(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use mig_gpu::{DeviceSpec, PerfModel};

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    #[test]
    fn figure8_worked_example() {
        // The paper's Figure 8: two sizes with knees B1=2, B2=4; batch
        // frequencies 20/20/40/20 %; small-GPU throughput 40 and 20 q/s,
        // large-GPU throughput 30 and 20 q/s. Expected need: 1.5 small vs
        // 2.3 large GPUs → ratio ≈ 0.652.
        let dist = [0.2, 0.2, 0.4, 0.2];
        let small_tp = [40.0, 20.0];
        let large_tp = [30.0, 20.0];
        let r_small: f64 = dist[0] / small_tp[0] + dist[1] / small_tp[1];
        let r_large: f64 = dist[2] / large_tp[0] + dist[3] / large_tp[1];
        assert!((r_small * 100.0 - 1.5).abs() < 1e-9, "0.5 + 1.0 small GPUs");
        assert!(
            (r_large * 100.0 - 2.333).abs() < 0.01,
            "40/30 + 20/20 ≈ 2.33 large GPUs"
        );
    }

    #[test]
    fn plan_respects_budget_for_all_models() {
        let dist = BatchDistribution::paper_default();
        for (kind, gpcs, gpus) in [
            (ModelKind::ShuffleNet, 24, 4),
            (ModelKind::MobileNet, 24, 4),
            (ModelKind::ResNet50, 48, 8),
            (ModelKind::BertBase, 42, 6),
            (ModelKind::Conformer, 48, 8),
        ] {
            let t = table(kind);
            let plan = Paris::new(&t, &dist)
                .plan(GpcBudget::new(gpcs, gpus))
                .unwrap();
            assert!(
                plan.total_gpcs_used() <= gpcs,
                "{kind}: used {} > budget {gpcs}",
                plan.total_gpcs_used()
            );
            assert!(plan.instance_count() > 0);
            // Packing uses exactly num_gpus layouts and they agree with counts.
            assert_eq!(plan.layouts().len(), gpus);
            let from_layouts: usize = plan.layouts().iter().map(|l| l.used_gpcs()).sum();
            assert_eq!(from_layouts, plan.total_gpcs_used());
        }
    }

    #[test]
    fn light_models_get_small_partitions_heavy_models_large() {
        let dist = BatchDistribution::paper_default();
        let mobilenet = Paris::new(&table(ModelKind::MobileNet), &dist)
            .plan(GpcBudget::new(24, 4))
            .unwrap();
        let bert = Paris::new(&table(ModelKind::BertBase), &dist)
            .plan(GpcBudget::new(42, 6))
            .unwrap();
        // MobileNet plans must carry small partitions; BERT plans must carry
        // large ones (paper §VI-A/B: MobileNet → 1g/2g-heavy mix, BERT →
        // 3g/4g/7g-heavy mix).
        let small = |p: &PartitionPlan| p.count(ProfileSize::G1) + p.count(ProfileSize::G2);
        let large = |p: &PartitionPlan| p.count(ProfileSize::G4) + p.count(ProfileSize::G7);
        assert!(small(&mobilenet) > 0, "mobilenet: {mobilenet}");
        assert!(large(&bert) > 0, "bert: {bert}");
        // And MobileNet leans smaller than BERT in average GPCs/instance.
        let avg = |p: &PartitionPlan| p.total_gpcs_used() as f64 / p.instance_count() as f64;
        assert!(avg(&mobilenet) < avg(&bert));
    }

    #[test]
    fn segments_partition_the_batch_range() {
        let dist = BatchDistribution::paper_default();
        let t = table(ModelKind::ResNet50);
        let plan = Paris::new(&t, &dist).plan(GpcBudget::new(48, 8)).unwrap();
        let segs = plan.segments();
        assert!(!segs.is_empty());
        assert_eq!(segs[0].lo, 1);
        assert_eq!(segs.last().unwrap().hi, 32);
        for pair in segs.windows(2) {
            assert_eq!(pair[1].lo, pair[0].hi + 1, "segments must be contiguous");
        }
        for b in 1..=32 {
            assert_eq!(segs.iter().filter(|s| s.contains(b)).count(), 1);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let dist = BatchDistribution::paper_default();
        let t = table(ModelKind::Conformer);
        let a = Paris::new(&t, &dist).plan(GpcBudget::new(48, 8)).unwrap();
        let b = Paris::new(&t, &dist).plan(GpcBudget::new(48, 8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_distribution_concentrates_instances() {
        // With all queries at batch 1, every GPC should go to the smallest
        // useful partitions — the plan must not buy 7g instances.
        let dist = BatchDistribution::constant(1);
        let t = table(ModelKind::MobileNet);
        let plan = Paris::new(&t, &dist).plan(GpcBudget::new(24, 4)).unwrap();
        assert_eq!(plan.count(ProfileSize::G7), 0, "{plan}");
    }

    #[test]
    fn homogeneous_plans_match_table1() {
        // Table I: instances for ShuffleNet/MobileNet (24 GPCs, 4 GPUs) and
        // ResNet/Conformer (48 GPCs, 8 GPUs), BERT (42 GPCs, 6 GPUs).
        let cases = [
            (ProfileSize::G1, 24, 4, 24),
            (ProfileSize::G2, 24, 4, 12),
            (ProfileSize::G3, 24, 4, 8),
            (ProfileSize::G1, 48, 8, 48),
            (ProfileSize::G2, 48, 8, 24),
            (ProfileSize::G3, 48, 8, 16),
            (ProfileSize::G7, 56, 8, 8),
            (ProfileSize::G1, 42, 6, 42),
            (ProfileSize::G2, 42, 6, 18), // 3 per GPU × 6 (placement cap; paper lists 21)
            (ProfileSize::G3, 42, 6, 12), // 2 per GPU × 6 GPUs (geometry cap)
            (ProfileSize::G7, 42, 6, 6),
            (ProfileSize::G7, 28, 4, 4),
        ];
        for (size, gpcs, gpus, expected) in cases {
            let plan = homogeneous_plan(size, GpcBudget::new(gpcs, gpus)).unwrap();
            assert_eq!(
                plan.count(size),
                expected,
                "{size} with {gpcs} GPCs on {gpus} GPUs"
            );
        }
    }

    #[test]
    fn table1_bert_geometry_notes() {
        // Paper lists 14×GPU(3) and 21×GPU(2) for BERT (42 GPCs, 6 A100s).
        // Real MIG placement caps 3g at 2/GPU and 2g at 3/GPU, so 6 GPUs
        // host at most 12 and 18 respectively. Our geometry-faithful build
        // reflects that; recorded in EXPERIMENTS.md as deliberate
        // deviations.
        let g3 = homogeneous_plan(ProfileSize::G3, GpcBudget::new(42, 6)).unwrap();
        assert_eq!(g3.count(ProfileSize::G3), 12);
        let g2 = homogeneous_plan(ProfileSize::G2, GpcBudget::new(42, 6)).unwrap();
        assert_eq!(g2.count(ProfileSize::G2), 18);
    }

    #[test]
    fn homogeneous_plan_is_not_heterogeneous() {
        let plan = homogeneous_plan(ProfileSize::G2, GpcBudget::new(24, 4)).unwrap();
        assert!(!plan.is_heterogeneous());
        assert_eq!(plan.partitions(), vec![ProfileSize::G2; 12]);
    }

    #[test]
    fn random_plan_is_seeded_and_within_budget() {
        let a = random_plan(GpcBudget::new(48, 8), 7).unwrap();
        let b = random_plan(GpcBudget::new(48, 8), 7).unwrap();
        let c = random_plan(GpcBudget::new(48, 8), 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.total_gpcs_used() <= 48);
        // Random packing exhausts the budget (1g always fits while budget
        // remains and a GPU has a free slot).
        assert_eq!(a.total_gpcs_used(), 48);
    }

    #[test]
    fn plan_display_lists_instances() {
        let dist = BatchDistribution::paper_default();
        let t = table(ModelKind::ResNet50);
        let plan = Paris::new(&t, &dist).plan(GpcBudget::new(48, 8)).unwrap();
        let s = plan.to_string();
        assert!(s.contains("GPU(") && s.contains("GPCs"));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_budget_panics() {
        let _ = GpcBudget::new(57, 8);
    }
}
