//! The one-time profiling tables PARIS and ELSA both consume.
//!
//! §IV-C: "we conduct an exhaustive, one-time profiling of a target DNN
//! model's execution time over a target GPU partition size and all possible
//! batch sizes … stored as a two-dimensional lookup table that is indexed
//! using (GPU partition size, batch size)".
//!
//! On the paper's testbed this table is measured on real A100 partitions;
//! here it is filled by the analytical [`PerfModel`] (see DESIGN.md). The
//! algorithms never look past this table, so swapping in NVML-measured
//! numbers would not change a line of PARIS or ELSA.

use std::fmt;

use dnn_zoo::ModelGraph;
use inference_workload::BatchDistribution;
use mig_gpu::{PerfModel, ProfileSize};

/// The `(partition size, batch size) → {latency, utilization}` lookup table.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::ProfileTable;
///
/// let model = ModelKind::MobileNet.build();
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
///
/// // Larger partitions are faster at a given batch size…
/// assert!(table.latency_ns(ProfileSize::G7, 8) < table.latency_ns(ProfileSize::G1, 8));
/// // …but less utilized.
/// assert!(table.utilization(ProfileSize::G7, 8) < table.utilization(ProfileSize::G1, 8));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileTable {
    model_name: String,
    sizes: Vec<ProfileSize>,
    max_batch: usize,
    /// Dense `ProfileSize → row` map: `row_of[size as usize]` is the row
    /// index of that size, or [`UNPROFILED`] if the size was not profiled.
    /// Keeps every latency lookup a couple of array indexings instead of a
    /// linear scan over `sizes` — this sits on the per-query dispatch path.
    row_of: [u32; ProfileSize::ALL.len()],
    /// Row-major `latency_ns[row * max_batch + (batch - 1)]`.
    latency_ns: Vec<u64>,
    /// Row-major `utilization[row * max_batch + (batch - 1)]`.
    utilization: Vec<f64>,
}

/// Sentinel in [`ProfileTable::row_of`] for sizes absent from the table.
const UNPROFILED: u32 = u32::MAX;

impl ProfileTable {
    /// Profiles `model` over every `(size, batch)` pair up to `max_batch`.
    ///
    /// This is the reproduction's stand-in for the paper's ~5-minute
    /// hardware profiling pass; with the analytical model it takes
    /// milliseconds but produces the same *kind* of table.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or `max_batch` is 0.
    #[must_use]
    pub fn profile(
        model: &ModelGraph,
        perf: &PerfModel,
        sizes: &[ProfileSize],
        max_batch: usize,
    ) -> Self {
        assert!(!sizes.is_empty(), "at least one partition size required");
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let mut sizes = sizes.to_vec();
        sizes.sort();
        sizes.dedup();
        let mut row_of = [UNPROFILED; ProfileSize::ALL.len()];
        let mut latency_ns = Vec::with_capacity(sizes.len() * max_batch);
        let mut utilization = Vec::with_capacity(sizes.len() * max_batch);
        for (row, &size) in sizes.iter().enumerate() {
            row_of[size as usize] = row as u32;
            for b in 1..=max_batch {
                let est = perf.inference(model, b, size);
                latency_ns.push((est.latency_s * 1e9).round() as u64);
                utilization.push(est.utilization);
            }
        }
        ProfileTable {
            model_name: model.name().to_owned(),
            sizes,
            max_batch,
            row_of,
            latency_ns,
            utilization,
        }
    }

    /// The profiled model's name.
    #[must_use]
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The profiled partition sizes, ascending.
    #[must_use]
    pub fn sizes(&self) -> &[ProfileSize] {
        &self.sizes
    }

    /// Largest profiled batch size.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The largest profiled partition size.
    ///
    /// # Panics
    ///
    /// Never panics: the table always holds at least one size.
    #[must_use]
    pub fn largest_size(&self) -> ProfileSize {
        *self.sizes.last().expect("table is never empty")
    }

    #[inline]
    fn size_idx(&self, size: ProfileSize) -> usize {
        let row = self.row_of[size as usize];
        if row == UNPROFILED {
            panic!("partition size {size} was not profiled");
        }
        row as usize
    }

    /// The full per-batch latency row for `size`, in nanoseconds:
    /// `row[b - 1]` is the profiled latency at batch `b`. Borrowing the row
    /// once lets per-query hot paths resolve latencies by direct slice
    /// indexing with no per-lookup size resolution at all.
    ///
    /// # Panics
    ///
    /// Panics if `size` was not profiled.
    #[must_use]
    #[inline]
    pub fn latency_row(&self, size: ProfileSize) -> &[u64] {
        let row = self.size_idx(size);
        &self.latency_ns[row * self.max_batch..(row + 1) * self.max_batch]
    }

    /// Profiled latency (`T_estimated`) in nanoseconds.
    ///
    /// Batch sizes above [`max_batch`](Self::max_batch) clamp to the largest
    /// profiled entry; batch 0 clamps to 1.
    ///
    /// # Panics
    ///
    /// Panics if `size` was not profiled.
    #[must_use]
    #[inline]
    pub fn latency_ns(&self, size: ProfileSize, batch: usize) -> u64 {
        let row = self.size_idx(size);
        self.latency_ns[row * self.max_batch + batch.clamp(1, self.max_batch) - 1]
    }

    /// Profiled latency in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `size` was not profiled.
    #[must_use]
    pub fn latency_s(&self, size: ProfileSize, batch: usize) -> f64 {
        self.latency_ns(size, batch) as f64 / 1e9
    }

    /// Effective inference throughput `Throughput_{k,b}` in queries/second
    /// (Algorithm 1, line 5): the rate at which one partition of `size`
    /// retires back-to-back queries of this batch size.
    ///
    /// # Panics
    ///
    /// Panics if `size` was not profiled.
    #[must_use]
    pub fn throughput_qps(&self, size: ProfileSize, batch: usize) -> f64 {
        1e9 / self.latency_ns(size, batch) as f64
    }

    /// Profiled GPU utilization (`Util_k[b]`, Algorithm 1 line 4) in [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `size` was not profiled.
    #[must_use]
    #[inline]
    pub fn utilization(&self, size: ProfileSize, batch: usize) -> f64 {
        let row = self.size_idx(size);
        self.utilization[row * self.max_batch + batch.clamp(1, self.max_batch) - 1]
    }

    /// Back-of-envelope serving capacity of a set of instances of this
    /// model: the summed reciprocal profiled latency at `dist`'s rounded
    /// mean batch, queries/second.
    ///
    /// This is the shared estimate behind throughput-search seeds
    /// (`capacity_hint_qps`), cluster router weights and the loan
    /// controller's demand normalization — one formula, so the sites can
    /// never silently diverge.
    ///
    /// # Panics
    ///
    /// Panics if any size in `sizes` was not profiled.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnn_zoo::ModelKind;
    /// use inference_workload::BatchDistribution;
    /// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    /// use paris_core::ProfileTable;
    ///
    /// let perf = PerfModel::new(DeviceSpec::a100());
    /// let table = ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
    /// let dist = BatchDistribution::paper_default();
    /// let one = table.capacity_qps(&[ProfileSize::G2], &dist);
    /// let two = table.capacity_qps(&[ProfileSize::G2, ProfileSize::G2], &dist);
    /// assert!((two / one - 2.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn capacity_qps(&self, sizes: &[ProfileSize], dist: &BatchDistribution) -> f64 {
        let mean_batch = dist.mean().round().max(1.0) as usize;
        sizes
            .iter()
            .map(|&size| 1.0 / self.latency_s(size, mean_batch))
            .sum()
    }

    /// The paper's SLA target construction (§V): `n_times` × the latency of
    /// the distribution's max batch on the largest profiled partition.
    ///
    /// # Panics
    ///
    /// Panics if `n_times` is not positive and finite.
    #[must_use]
    pub fn sla_target_ns(&self, n_times: f64) -> u64 {
        assert!(
            n_times.is_finite() && n_times > 0.0,
            "SLA multiplier must be positive and finite"
        );
        let base = self.latency_ns(self.largest_size(), self.max_batch);
        (base as f64 * n_times).round() as u64
    }
}

impl fmt::Display for ProfileTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile table for {} ({} sizes × {} batches)",
            self.model_name,
            self.sizes.len(),
            self.max_batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use mig_gpu::DeviceSpec;

    fn table(kind: ModelKind) -> ProfileTable {
        let model = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    #[test]
    fn latency_monotone_in_batch_for_every_size() {
        let t = table(ModelKind::ResNet50);
        for &size in t.sizes() {
            for b in 2..=32 {
                assert!(t.latency_ns(size, b) >= t.latency_ns(size, b - 1));
            }
        }
    }

    #[test]
    fn larger_partitions_are_never_slower() {
        let t = table(ModelKind::BertBase);
        for b in [1usize, 4, 16, 32] {
            for pair in t.sizes().windows(2) {
                assert!(
                    t.latency_ns(pair[1], b) <= t.latency_ns(pair[0], b),
                    "{} slower than {} at b={b}",
                    pair[1],
                    pair[0]
                );
            }
        }
    }

    #[test]
    fn batch_clamps_at_table_edges() {
        let t = table(ModelKind::MobileNet);
        assert_eq!(
            t.latency_ns(ProfileSize::G1, 0),
            t.latency_ns(ProfileSize::G1, 1)
        );
        assert_eq!(
            t.latency_ns(ProfileSize::G1, 1000),
            t.latency_ns(ProfileSize::G1, 32)
        );
    }

    #[test]
    fn throughput_is_reciprocal_latency() {
        let t = table(ModelKind::ShuffleNet);
        let qps = t.throughput_qps(ProfileSize::G2, 4);
        let lat_s = t.latency_s(ProfileSize::G2, 4);
        assert!((qps * lat_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sla_target_scales_with_multiplier() {
        let t = table(ModelKind::ResNet50);
        let base = t.sla_target_ns(1.0);
        assert_eq!(t.sla_target_ns(2.0), base * 2);
        assert_eq!(base, t.latency_ns(ProfileSize::G7, 32));
    }

    #[test]
    fn sizes_are_sorted_and_deduped() {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let t = ProfileTable::profile(
            &model,
            &perf,
            &[ProfileSize::G7, ProfileSize::G1, ProfileSize::G7],
            4,
        );
        assert_eq!(t.sizes(), &[ProfileSize::G1, ProfileSize::G7]);
        assert_eq!(t.largest_size(), ProfileSize::G7);
    }

    #[test]
    fn latency_row_matches_pointwise_lookups() {
        let t = table(ModelKind::BertBase);
        for &size in t.sizes() {
            let row = t.latency_row(size);
            assert_eq!(row.len(), t.max_batch());
            for b in 1..=t.max_batch() {
                assert_eq!(row[b - 1], t.latency_ns(size, b));
            }
        }
    }

    #[test]
    fn partial_tables_index_correctly() {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let t = ProfileTable::profile(&model, &perf, &[ProfileSize::G2, ProfileSize::G7], 8);
        assert_eq!(t.latency_row(ProfileSize::G2).len(), 8);
        assert!(t.latency_ns(ProfileSize::G7, 4) <= t.latency_ns(ProfileSize::G2, 4));
    }

    #[test]
    #[should_panic(expected = "was not profiled")]
    fn unprofiled_latency_row_panics() {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let t = ProfileTable::profile(&model, &perf, &[ProfileSize::G1], 4);
        let _ = t.latency_row(ProfileSize::G3);
    }

    #[test]
    #[should_panic(expected = "was not profiled")]
    fn unprofiled_size_panics() {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let t = ProfileTable::profile(&model, &perf, &[ProfileSize::G1], 4);
        let _ = t.latency_ns(ProfileSize::G7, 1);
    }
}
