//! Integer-nanosecond simulated time.
//!
//! [`SimTime`] is an *instant* on the simulated clock; [`SimDuration`] is a
//! *span* between instants. Keeping them distinct prevents the classic bug of
//! adding two instants, and using integers keeps event ordering exact and
//! reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Arithmetic
/// with [`SimDuration`] is provided via `+`/`-`; subtracting two instants
/// yields a duration.
///
/// # Examples
///
/// ```
/// use des_engine::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(250);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(250_000));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use des_engine::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 3_500_000);
/// assert!((d.as_millis_f64() - 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) microseconds — the
    /// unit Chrome `trace_event` timestamps use.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// The duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (possibly fractional) microseconds — the unit Chrome
    /// `trace_event` durations use.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that stops at zero instead of wrapping.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if the duration exceeds the instant.
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] for a non-panicking variant.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] for a non-panicking variant.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_nanos(100);
        assert_eq!((t + SimDuration::from_nanos(23)).as_nanos(), 123);
    }

    #[test]
    fn instant_difference_is_duration() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(1_700);
        assert_eq!(b - a, SimDuration::from_nanos(1_200));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(1_700);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(1_200));
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn float_round_trips() {
        let d = SimDuration::from_secs_f64(0.001_234_567);
        assert_eq!(d.as_nanos(), 1_234_567);
        assert!((d.as_millis_f64() - 1.234_567).abs() < 1e-12);
        let m = SimDuration::from_millis_f64(2.5);
        assert_eq!(m.as_nanos(), 2_500_000);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(4);
        assert_eq!(a + b, SimDuration::from_nanos(14));
        assert_eq!(a - b, SimDuration::from_nanos(6));
        assert_eq!(a * 3, SimDuration::from_nanos(30));
        assert_eq!(a / 2, SimDuration::from_nanos(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let t = SimTime::MAX + SimDuration::from_nanos(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_is_nonempty_and_in_ms() {
        assert_eq!(SimTime::from_nanos(1_500_000).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.250ms");
    }
}
